//! The per-core dirty tracker (Figures 6–7).
//!
//! The tracker sits next to the L1D, compares every demand store
//! against the stack range programmed in the MSRs (the *stores of
//! interest*, SOI), and records modifications in the dirty bitmap
//! through the coalescing lookup table — all off the critical path of
//! the store itself. It maintains outstanding-operation counters so
//! the OS can ensure quiescence before consuming the bitmap, and it
//! tracks the lowest SOI address seen in the interval (the maximum
//! active stack region).

use prosper_memsim::addr::{VirtAddr, VirtRange};
use serde::{Deserialize, Serialize};

use crate::bitmap::{BitmapGeometry, DirtyBitmap};
use crate::lookup::{AllocPolicy, BitmapOp, FlushReason, LookupStats, LookupTable};
use crate::msr::{MsrBank, MsrId, CTRL_ENABLE};

/// Tracker configuration (paper defaults: 16 entries, HWM 24, LWM 8,
/// 8-byte granularity).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Lookup-table entries.
    pub lookup_entries: usize,
    /// High-water-mark: set-bit count that triggers a flush.
    pub hwm: u32,
    /// Low-water-mark: eviction prefers entries below this count.
    pub lwm: u32,
    /// Tracking granularity in bytes (multiple of 8).
    pub granularity: u64,
    /// Allocation policy (Accumulate-and-Apply in the paper).
    pub policy: AllocPolicy,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        Self {
            lookup_entries: 16,
            hwm: 24,
            lwm: 8,
            granularity: 8,
            policy: AllocPolicy::AccumulateAndApply,
        }
    }
}

impl TrackerConfig {
    /// Returns a copy with a different granularity (the Figure 10/12
    /// sweep knob).
    pub fn with_granularity(mut self, granularity: u64) -> Self {
        self.granularity = granularity;
        self
    }

    /// Returns a copy with different watermarks (the Figure 13 knobs).
    pub fn with_watermarks(mut self, hwm: u32, lwm: u32) -> Self {
        self.hwm = hwm;
        self.lwm = lwm;
        self
    }

    /// The straw-man design of Section III-B: no coalescing — every
    /// stack modification immediately turns into bitmap traffic. Built
    /// as a single-entry table with HWM 1, so each recorded bit
    /// flushes at once. Used only for the coalescing ablation.
    pub fn strawman() -> Self {
        Self {
            lookup_entries: 1,
            hwm: 1,
            lwm: 1,
            granularity: 8,
            policy: AllocPolicy::AccumulateAndApply,
        }
    }
}

/// The per-core dirty tracker.
#[derive(Debug)]
pub struct DirtyTracker {
    cfg: TrackerConfig,
    msrs: MsrBank,
    table: LookupTable,
    bitmap: DirtyBitmap,
    /// Lowest SOI address observed since the last watermark reset.
    min_soi_addr: Option<u64>,
    /// One past the highest SOI byte observed since the last reset.
    max_soi_end: Option<u64>,
    /// SOIs filtered so far (for diagnostics and energy accounting).
    pub soi_count: u64,
}

impl DirtyTracker {
    /// Builds a tracker; call [`Self::configure`] before tracking.
    pub fn new(cfg: TrackerConfig) -> Self {
        Self {
            table: LookupTable::new(cfg.lookup_entries, cfg.hwm, cfg.lwm, cfg.policy),
            msrs: MsrBank::default(),
            bitmap: DirtyBitmap::new(),
            min_soi_addr: None,
            max_soi_end: None,
            soi_count: 0,
            cfg,
        }
    }

    /// Programs the tracked range and bitmap base (the OS writing the
    /// configuration MSRs) and enables tracking.
    pub fn configure(&mut self, range: VirtRange, bitmap_base: VirtAddr) {
        self.msrs.write(MsrId::StackRangeLo, range.start().raw());
        self.msrs.write(MsrId::StackRangeHi, range.end().raw());
        self.msrs.write(MsrId::Granularity, self.cfg.granularity);
        self.msrs.write(MsrId::BitmapBase, bitmap_base.raw());
        self.msrs.write(MsrId::Control, CTRL_ENABLE);
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &TrackerConfig {
        &self.cfg
    }

    /// The MSR bank (OS-visible state).
    pub fn msrs(&self) -> &MsrBank {
        &self.msrs
    }

    /// The bitmap geometry implied by the current MSR programming.
    pub fn geometry(&self) -> BitmapGeometry {
        BitmapGeometry {
            range_start: VirtAddr::new(self.msrs.stack_lo),
            bitmap_base: VirtAddr::new(self.msrs.bitmap_base),
            granularity: self.msrs.granularity,
        }
    }

    /// Lookup-table counters (Figure 13's bitmap loads/stores).
    pub fn lookup_stats(&self) -> LookupStats {
        self.table.stats()
    }

    /// Reprograms the tracking granularity between intervals (the
    /// dynamic-granularity extension). Only legal while the table is
    /// flushed and the bitmap has been cleared by inspection, since
    /// bit positions are granularity-relative.
    ///
    /// # Panics
    ///
    /// Panics if lookup-table entries are still resident, or if the
    /// granularity is invalid (see [`crate::msr::MsrBank::write`]).
    pub fn set_granularity(&mut self, granularity: u64) {
        assert_eq!(
            self.table.valid_entries(),
            0,
            "granularity may only change on a flushed table"
        );
        self.cfg.granularity = granularity;
        self.msrs.write(MsrId::Granularity, granularity);
    }

    /// Reprograms the HWM/LWM thresholds between intervals (the
    /// dynamic-watermark extension).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`crate::lookup::LookupTable::set_watermarks`].
    pub fn set_watermarks(&mut self, hwm: u32, lwm: u32) {
        self.table.set_watermarks(hwm, lwm);
        self.cfg.hwm = hwm;
        self.cfg.lwm = lwm;
    }

    /// The functional dirty bitmap (the OS component inspects it).
    pub fn bitmap_mut(&mut self) -> &mut DirtyBitmap {
        &mut self.bitmap
    }

    /// Read-only bitmap view.
    pub fn bitmap(&self) -> &DirtyBitmap {
        &self.bitmap
    }

    /// Lowest SOI address since the last reset — the maximum active
    /// stack region boundary shared with the OS at interval end.
    pub fn min_soi_watermark(&self) -> Option<VirtAddr> {
        self.min_soi_addr.map(VirtAddr::new)
    }

    /// The exact dirty window of the interval: `[lowest SOI byte, one
    /// past the highest SOI byte)`. Every set bitmap bit falls inside
    /// it, so the OS never needs to walk beyond — essential when the
    /// tracked range is a large heap region.
    pub fn dirty_window(&self) -> Option<VirtRange> {
        match (self.min_soi_addr, self.max_soi_end) {
            (Some(lo), Some(hi)) => Some(VirtRange::new(VirtAddr::new(lo), VirtAddr::new(hi))),
            _ => None,
        }
    }

    /// Resets the active-region watermarks (interval start).
    pub fn reset_watermark(&mut self) {
        self.min_soi_addr = None;
        self.max_soi_end = None;
    }

    /// Applies bitmap operations emitted by the lookup table to the
    /// functional bitmap and updates the outstanding counters. The
    /// returned slice is what the caller injects into the machine as
    /// background memory traffic.
    fn apply_ops(&mut self, ops: &[BitmapOp]) {
        for op in ops {
            match op {
                BitmapOp::Load(_) => {
                    // Loads complete immediately in the functional
                    // model; counters pulse to exercise the handshake.
                    self.msrs.outstanding_loads += 1;
                    self.msrs.outstanding_loads -= 1;
                }
                BitmapOp::Store(addr, value) => {
                    self.msrs.outstanding_stores += 1;
                    self.bitmap.merge_word(*addr, *value);
                    self.msrs.outstanding_stores -= 1;
                }
            }
        }
    }

    /// Observes a demand store of `size` bytes at `vaddr` (called for
    /// every store issued by the core; the tracker filters SOIs
    /// itself). Returns the bitmap memory operations to inject as
    /// background traffic.
    pub fn observe_store(&mut self, vaddr: VirtAddr, size: u64) -> Vec<BitmapOp> {
        if !self.msrs.tracking_enabled() {
            return Vec::new();
        }
        let range = self.msrs.tracked_range();
        if !range.overlaps_access(vaddr, size.max(1)) {
            return Vec::new();
        }
        self.soi_count += 1;
        let geom = self.geometry();
        let start = vaddr.max(range.start());
        let end = (vaddr + size.max(1)).min(range.end());
        self.min_soi_addr = Some(match self.min_soi_addr {
            Some(m) => m.min(start.raw()),
            None => start.raw(),
        });
        self.max_soi_end = Some(match self.max_soi_end {
            Some(m) => m.max(end.raw()),
            None => end.raw(),
        });
        let first = (start - geom.range_start) / geom.granularity;
        let last = (end - 1u64 - geom.range_start.raw()).raw() / geom.granularity;

        let mut all_ops = Vec::new();
        let bitmap = &mut self.bitmap;
        for granule in first..=last {
            let word_addr = geom.bitmap_base.raw() + (granule / 32) * 4;
            let bit = (granule % 32) as u32;
            let ops = self
                .table
                .record(word_addr, bit, &mut |addr| bitmap.read_word(addr));
            for op in &ops {
                match op {
                    BitmapOp::Load(_) => {}
                    BitmapOp::Store(addr, value) => bitmap.merge_word(*addr, *value),
                }
            }
            all_ops.extend(ops);
        }
        all_ops
    }

    /// OS-requested end-of-interval flush of the lookup table: drains
    /// every entry into the bitmap. Returns the bitmap traffic to
    /// inject.
    pub fn flush(&mut self) -> Vec<BitmapOp> {
        self.flush_with_reason(FlushReason::Interval)
    }

    /// Like [`Self::flush`], but attributes the drain to `reason` in
    /// the lookup-table flush counters (interval vs context switch).
    pub fn flush_with_reason(&mut self, reason: FlushReason) -> Vec<BitmapOp> {
        let bitmap = &mut self.bitmap;
        let ops = self
            .table
            .flush_all_with_reason(reason, &mut |addr| bitmap.read_word(addr));
        self.apply_ops(&ops);
        ops
    }

    /// `true` once all tracker-issued operations have completed — the
    /// condition the OS polls after requesting a flush.
    pub fn quiescent(&self) -> bool {
        self.msrs.quiescent()
    }

    /// Number of valid lookup-table entries (context-switch cost is
    /// proportional to this).
    pub fn resident_entries(&self) -> usize {
        self.table.valid_entries()
    }

    /// Saves the tracker's architectural state on a context switch-out
    /// (after a flush). The bitmap itself stays in memory; only the
    /// MSR programming travels with the context.
    pub fn save_state(&self) -> MsrBank {
        self.msrs
    }

    /// Restores saved state on switch-in.
    pub fn restore_state(&mut self, saved: MsrBank) {
        self.msrs = saved;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracked() -> (DirtyTracker, VirtRange) {
        let range = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7010_0000));
        let mut t = DirtyTracker::new(TrackerConfig::default());
        t.configure(range, VirtAddr::new(0x1000_0000));
        (t, range)
    }

    #[test]
    fn filters_stores_outside_range() {
        let (mut t, _) = tracked();
        assert!(t.observe_store(VirtAddr::new(0x100), 8).is_empty());
        assert_eq!(t.soi_count, 0);
        t.observe_store(VirtAddr::new(0x7000_0008), 8);
        assert_eq!(t.soi_count, 1);
    }

    #[test]
    fn disabled_tracker_ignores_everything() {
        let range = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7010_0000));
        let mut t = DirtyTracker::new(TrackerConfig::default());
        // Not configured: control is 0.
        assert!(t.observe_store(range.start(), 8).is_empty());
        assert_eq!(t.soi_count, 0);
        t.configure(range, VirtAddr::new(0x1000_0000));
        t.observe_store(range.start(), 8);
        assert_eq!(t.soi_count, 1);
    }

    #[test]
    fn flush_materialises_bits_in_bitmap() {
        let (mut t, range) = tracked();
        for i in 0..10u64 {
            t.observe_store(range.start() + i * 8, 8);
        }
        assert_eq!(t.bitmap().total_set_bits(), 0, "bits coalesce in table");
        t.flush();
        assert_eq!(t.bitmap().total_set_bits(), 10);
        assert!(t.quiescent());
        assert_eq!(t.resident_entries(), 0);
    }

    #[test]
    fn watermark_tracks_lowest_store() {
        let (mut t, range) = tracked();
        assert_eq!(t.min_soi_watermark(), None);
        t.observe_store(range.start() + 0x5000, 8);
        t.observe_store(range.start() + 0x100, 8);
        t.observe_store(range.start() + 0x9000, 8);
        assert_eq!(t.min_soi_watermark(), Some(range.start() + 0x100));
        t.reset_watermark();
        assert_eq!(t.min_soi_watermark(), None);
    }

    #[test]
    fn wide_store_sets_multiple_granules() {
        let (mut t, range) = tracked();
        // A 64-byte store at 8-byte granularity dirties 8 granules.
        t.observe_store(range.start(), 64);
        t.flush();
        assert_eq!(t.bitmap().total_set_bits(), 8);
    }

    #[test]
    fn store_straddling_range_end_is_clipped() {
        let (mut t, range) = tracked();
        t.observe_store(range.end() - 8u64, 64);
        t.flush();
        assert_eq!(t.bitmap().total_set_bits(), 1, "only the in-range granule");
    }

    #[test]
    fn granularity_changes_bit_density() {
        let range = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7010_0000));
        let mut fine = DirtyTracker::new(TrackerConfig::default().with_granularity(8));
        let mut coarse = DirtyTracker::new(TrackerConfig::default().with_granularity(128));
        fine.configure(range, VirtAddr::new(0x1000_0000));
        coarse.configure(range, VirtAddr::new(0x1000_0000));
        for i in 0..16u64 {
            fine.observe_store(range.start() + i * 8, 8);
            coarse.observe_store(range.start() + i * 8, 8);
        }
        fine.flush();
        coarse.flush();
        assert_eq!(fine.bitmap().total_set_bits(), 16);
        assert_eq!(coarse.bitmap().total_set_bits(), 1, "128 B covers all 16");
    }

    #[test]
    fn save_restore_roundtrips_msrs() {
        let (t, range) = tracked();
        let saved = t.save_state();
        let mut t2 = DirtyTracker::new(TrackerConfig::default());
        t2.restore_state(saved);
        assert_eq!(t2.msrs().tracked_range(), range);
        assert!(t2.msrs().tracking_enabled());
    }

    #[test]
    fn repeated_stores_to_same_granule_emit_no_extra_traffic() {
        let (mut t, range) = tracked();
        let mut ops = 0;
        for _ in 0..1000 {
            ops += t.observe_store(range.start() + 16, 8).len();
        }
        assert_eq!(ops, 0, "fully coalesced in the lookup table");
        assert_eq!(t.lookup_stats().hits, 999);
    }
}
