//! The Prosper OS component (Section III-A, Figure 5).
//!
//! Implements the [`MemoryPersistence`] plug-in for the GemOS
//! checkpoint manager. Per interval the component:
//!
//! 1. programs the tracker MSRs (range, granularity, bitmap base) and
//!    resets the active-region watermark;
//! 2. lets the tracker record SOIs off the critical path (the bitmap
//!    loads/stores the lookup table emits are injected into the
//!    machine as background traffic);
//! 3. at the interval end runs the **two-step quiescence** protocol —
//!    request a flush, overlap preparation work, poll the outstanding
//!    counters;
//! 4. inspects the dirty bitmap **only over the maximum active stack
//!    region** reported by the tracker, coalescing contiguous bits
//!    into copy runs;
//! 5. copies the runs DRAM → NVM staging buffer, then applies the
//!    staging buffer to the per-thread persistent stack (two-step
//!    commit);
//! 6. clears the inspected bitmap words for the next interval.
//!
//! # Spine mode
//!
//! [`ProsperMechanism::with_spine`] switches step 5's second copy to
//! the staged-delta spine discipline (see [`crate::persist`]): the
//! sealed staging buffer is *appended* to the spine as an immutable
//! delta batch — only a per-run descriptor record is written — and the
//! full apply copy is deferred to a policy-gated **merge** that folds
//! the resident batches' deduplicated coverage in one pass. Because
//! consecutive intervals re-dirty the same hot bytes, the merge writes
//! far fewer NVM bytes than the eager per-interval applies it
//! replaces, which is exactly the write-amplification win the
//! per-phase `prosper.ckpt.nvm_bytes_*` accounting measures.

use prosper_gemos::checkpoint::{CheckpointOutcome, IntervalInfo, MemoryPersistence};
use prosper_memsim::addr::{VirtAddr, VirtRange};
use prosper_memsim::machine::{CkptPhase, Machine};
use prosper_memsim::Cycles;
use prosper_trace::record::MemAccess;

use prosper_telemetry as telemetry;

use crate::adaptive::{GranularityAdapter, WatermarkTuner};
use crate::bitmap::{BitmapGeometry, CopyRun, PAGE_SPAN_BYTES};
use crate::lookup::{partition_ops, BitmapOp, LookupStats};
use crate::msr::{MSR_READ_CYCLES, MSR_WRITE_CYCLES};
use crate::persist::SpineConfig;
use crate::tracker::{DirtyTracker, TrackerConfig};

/// Fixed per-run overhead of the copy loop (loop control, address
/// arithmetic, issuing the copy) in cycles.
const PER_RUN_OVERHEAD: Cycles = 60;

/// Bytes of the durability-point record sealed per interval (the
/// commit sequence write).
const SEAL_RECORD_BYTES: u64 = 8;

/// Bytes of the fixed header a spine delta-batch append persists
/// (sequence number and run count — the staged data itself is
/// already in NVM).
const BATCH_HEADER_BYTES: u64 = 16;

/// Bytes per *coalesced* run descriptor in a spine delta-batch
/// append. Seal-time coalescing leaves each batch's runs sorted,
/// disjoint, and granule-aligned, so the descriptor table
/// delta-encodes them as (granule gap from the previous run's end,
/// granule length) — one u16 pair per run instead of the 16 B
/// (start, length) pair an unsorted table would need. This is what
/// flipped the sparse many-tiny-runs pattern from losing on write
/// amplification to winning.
const PACKED_DESC_BYTES: u64 = 4;

/// Cycles for the OS to poll the status MSR until quiescent. The
/// functional tracker quiesces immediately, so a single poll suffices;
/// the paper overlaps preparation work here.
const QUIESCE_POLL_CYCLES: Cycles = MSR_READ_CYCLES;

/// Virtual address where the OS places the per-thread bitmap area.
const DEFAULT_BITMAP_BASE: u64 = 0x1000_0000;

/// Bitmap word addresses containing at least one set bit, derived from
/// the inspection's coalesced runs (ascending, deduplicated). With the
/// summary-indexed bitmap the OS touches exactly these words — clean
/// words in the window are never loaded or written back.
fn dirty_word_addrs(geom: &BitmapGeometry, runs: &[CopyRun], out: &mut Vec<u64>) {
    out.clear();
    for run in runs {
        debug_assert!(run.len > 0, "runs are never empty");
        let (first, _) = geom.locate(run.start);
        let (last, _) = geom.locate(run.start + (run.len - 1));
        let mut w = first;
        // Adjacent runs can share a word; runs are address-ordered, so
        // resuming past the previous word deduplicates.
        if let Some(&prev) = out.last() {
            if w <= prev {
                w = prev + 4;
            }
        }
        while w <= last {
            out.push(w);
            w += 4;
        }
    }
}

/// Collapses word addresses into the eight-byte-aligned addresses the
/// OS actually issues (the paper reads the bitmap eight bytes — two
/// 32-bit words — at a time), deduplicated.
fn paired_addrs(words: &[u64], out: &mut Vec<u64>) {
    out.clear();
    for &w in words {
        let pair = w & !7;
        if out.last() != Some(&pair) {
            out.push(pair);
        }
    }
}

/// Per-interval telemetry for the Figure 10/11 analyses.
#[derive(Clone, Copy, Default, Debug)]
pub struct ProsperIntervalStats {
    /// Copy runs produced by inspection.
    pub runs: u64,
    /// Bytes copied to NVM.
    pub bytes: u64,
    /// Bitmap words read during inspection (dirty words only — the
    /// summary index skips clean spans).
    pub words_read: u64,
    /// Bitmap words cleared.
    pub words_cleared: u64,
    /// Bitmap pages probed to cover the inspection window.
    pub pages_probed: u64,
    /// Spine merges performed (0 or 1 per interval; spine mode only).
    pub merges: u64,
    /// Deduplicated bytes written by spine merges (spine mode only).
    pub merged_bytes: u64,
}

/// Cycle timestamps bracketing the checkpoint phases of one interval,
/// recorded into per-phase telemetry histograms.
#[derive(Clone, Copy, Default, Debug)]
struct PhaseCycles {
    /// Bitmap walk + dirty-word loads.
    inspect: Cycles,
    /// Cleared-word write-back stores.
    clear: Cycles,
    /// DRAM → NVM staging-buffer copy.
    stage: Cycles,
    /// Staging buffer → persistent stack copy (eager mode) or
    /// delta-batch descriptor append (spine mode).
    apply: Cycles,
    /// Deferred spine compaction (spine mode only).
    merge: Cycles,
}

/// OS-level model of the staged-delta spine: sealed delta batches
/// accumulate as run-span lists; the merge policy mirrors
/// [`crate::persist::PersistentStack::should_merge`] so the OS cost
/// model and the data-plane store trigger on the same schedule.
#[derive(Debug)]
struct SpineModel {
    cfg: SpineConfig,
    /// Resident batches, oldest first: each interval's (start, end)
    /// run spans.
    batches: Vec<Vec<(u64, u64)>>,
    /// Total bytes across all resident batches (overlap counted per
    /// batch).
    total_bytes: u64,
    /// Scratch: flattened spans for the coverage fold.
    span_scratch: Vec<(u64, u64)>,
}

impl SpineModel {
    fn new(cfg: SpineConfig) -> Self {
        Self {
            cfg,
            batches: Vec::new(),
            total_bytes: 0,
            span_scratch: Vec::new(),
        }
    }

    /// Appends the interval's sealed runs as one delta batch,
    /// coalescing adjacent and overlapping spans exactly like the
    /// data plane's `seal_to_spine`, and returns the number of run
    /// descriptors the batch actually persists. An empty interval
    /// seals nothing and leaves the spine unchanged.
    fn push_batch(&mut self, runs: &[CopyRun]) -> usize {
        if runs.is_empty() {
            return 0;
        }
        self.total_bytes += runs.iter().map(|r| r.len).sum::<u64>();
        let mut spans: Vec<(u64, u64)> = runs
            .iter()
            .map(|r| (r.start.raw(), r.start.raw() + r.len))
            .collect();
        spans.sort_unstable();
        let mut coalesced: Vec<(u64, u64)> = Vec::with_capacity(spans.len());
        for (s, e) in spans {
            match coalesced.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => coalesced.push((s, e)),
            }
        }
        let descs = coalesced.len();
        self.batches.push(coalesced);
        descs
    }

    /// Distinct bytes the resident batches cover — what a merge
    /// writes (each byte once, however many batches touch it).
    fn distinct_bytes(&mut self) -> u64 {
        self.span_scratch.clear();
        self.span_scratch
            .extend(self.batches.iter().flatten().copied());
        self.span_scratch.sort_unstable();
        let mut distinct = 0u64;
        let mut cursor = 0u64;
        for &(s, e) in &self.span_scratch {
            let s = s.max(cursor);
            if e > s {
                distinct += e - s;
                cursor = e;
            }
        }
        distinct
    }

    /// `1000 * overlapped_bytes / total_batch_bytes`, mirroring
    /// [`crate::persist::PersistentStack::spine_overlap_permille`].
    fn overlap_permille(&mut self) -> u32 {
        let total = self.total_bytes;
        if total == 0 {
            return 0;
        }
        let overlap = total - self.distinct_bytes();
        u32::try_from(overlap * 1000 / total).unwrap_or(1000)
    }

    /// Whether the merge policy triggers right now.
    fn should_merge(&mut self) -> bool {
        self.batches.len() >= 2
            && (self.batches.len() >= self.cfg.max_batches
                || self.overlap_permille() >= self.cfg.overlap_permille)
    }

    /// Retires every resident batch; returns how many were folded.
    fn retire(&mut self) -> u64 {
        let folded = self.batches.len() as u64;
        self.batches.clear();
        self.total_bytes = 0;
        folded
    }
}

/// Prosper as a pluggable memory-persistence mechanism.
#[derive(Debug)]
pub struct ProsperMechanism {
    tracker: DirtyTracker,
    bitmap_base: VirtAddr,
    /// Aggregate of all interval stats.
    pub totals: ProsperIntervalStats,
    /// Stats of the most recent interval.
    pub last_interval: ProsperIntervalStats,
    /// Runs of the most recent interval (for data-plane consumers).
    last_runs: Vec<CopyRun>,
    /// Optional dynamic-granularity policy (future-work extension).
    granularity_adapter: Option<GranularityAdapter>,
    /// Optional dynamic HWM/LWM policy (future-work extension).
    watermark_tuner: Option<WatermarkTuner>,
    /// Lookup-table counters already reported to telemetry, so each
    /// interval reports only its own delta.
    reported_lookup: LookupStats,
    /// Scratch: load addresses of the current injected-op batch.
    op_loads: Vec<u64>,
    /// Scratch: store addresses of the current injected-op batch.
    op_stores: Vec<u64>,
    /// Scratch: dirty bitmap word addresses of the current interval.
    word_scratch: Vec<u64>,
    /// Scratch: paired eight-byte access addresses.
    pair_scratch: Vec<u64>,
    /// Stall attribution sink plus the tid charged for checkpoint
    /// stalls, if wired (the stack-only manager runs one thread).
    attribution: Option<(std::sync::Arc<prosper_telemetry::StallAccountant>, u32)>,
    /// Monotone interval counter, used as the attribution sequence.
    interval_seq: u64,
    /// Staged-delta spine model; `None` keeps the eager apply copy.
    spine: Option<SpineModel>,
}

impl ProsperMechanism {
    /// Builds the mechanism with the given tracker configuration.
    pub fn new(cfg: TrackerConfig) -> Self {
        Self {
            tracker: DirtyTracker::new(cfg),
            bitmap_base: VirtAddr::new(DEFAULT_BITMAP_BASE),
            totals: ProsperIntervalStats::default(),
            last_interval: ProsperIntervalStats::default(),
            last_runs: Vec::new(),
            granularity_adapter: None,
            watermark_tuner: None,
            reported_lookup: LookupStats::default(),
            op_loads: Vec::new(),
            op_stores: Vec::new(),
            word_scratch: Vec::new(),
            pair_scratch: Vec::new(),
            attribution: None,
            interval_seq: 0,
            spine: None,
        }
    }

    /// Wires a stall accountant into the checkpoint path: every
    /// interval's quiesce/inspect/stage/apply phases are charged to
    /// `tid` as cause-tagged segments under one stall window,
    /// advancing the accountant's virtual clock by the simulated
    /// cycle cost of each phase (1 cycle = 1 virtual ns), so the
    /// micro-workload tax report is fully deterministic.
    pub fn set_attribution(
        &mut self,
        acct: std::sync::Arc<prosper_telemetry::StallAccountant>,
        tid: u32,
    ) {
        self.attribution = Some((acct, tid));
    }

    /// Builds the mechanism with the paper's default configuration
    /// (16-entry table, HWM 24, LWM 8, 8-byte granularity).
    pub fn with_defaults() -> Self {
        Self::new(TrackerConfig::default())
    }

    /// Switches the interval commit to the staged-delta spine: the
    /// sealed staging buffer is appended as a delta batch (descriptor
    /// write only) and the apply copy is deferred to a policy-gated
    /// merge of the deduplicated coverage.
    pub fn with_spine(mut self, cfg: SpineConfig) -> Self {
        self.spine = Some(SpineModel::new(cfg));
        self
    }

    /// The spine policy, if spine mode is enabled.
    pub fn spine_config(&self) -> Option<SpineConfig> {
        self.spine.as_ref().map(|s| s.cfg)
    }

    /// Delta batches currently resident on the spine.
    pub fn spine_batches(&self) -> usize {
        self.spine.as_ref().map_or(0, |s| s.batches.len())
    }

    /// Enables the OS-layer dynamic-granularity policy (the extension
    /// the paper suggests for Stream-like workloads).
    pub fn with_adaptive_granularity(mut self) -> Self {
        self.granularity_adapter = Some(GranularityAdapter::starting_at(
            self.tracker.config().granularity,
        ));
        self
    }

    /// Enables the OS-layer dynamic HWM/LWM tuner (the extension the
    /// paper leaves as future work after Figure 13).
    pub fn with_adaptive_watermarks(mut self) -> Self {
        self.watermark_tuner = Some(WatermarkTuner::new(
            self.tracker.config().hwm,
            self.tracker.config().lwm,
        ));
        self
    }

    /// Current tracking granularity (changes over time under the
    /// adaptive policy).
    pub fn current_granularity(&self) -> u64 {
        self.tracker.config().granularity
    }

    /// The underlying tracker (for Figure 12/13 counters).
    pub fn tracker(&self) -> &DirtyTracker {
        &self.tracker
    }

    /// Copy runs produced by the most recent checkpoint (data-plane
    /// consumers mirror these into a persistent stack store).
    pub fn last_runs(&self) -> &[CopyRun] {
        &self.last_runs
    }

    /// Injects tracker-emitted bitmap traffic into the machine as
    /// background (off-critical-path) operations, batched into one
    /// load group and one store group per drain.
    fn inject_ops(&mut self, machine: &mut Machine, ops: &[BitmapOp]) {
        if ops.is_empty() {
            return;
        }
        partition_ops(ops, &mut self.op_loads, &mut self.op_stores);
        machine.inject_load_batch(&self.op_loads, 4);
        machine.inject_store_batch(&self.op_stores, 4);
    }

    /// Reports the just-finished interval into the installed telemetry
    /// context: interval stats as counters plus the lookup-table flush
    /// reasons as deltas since the previous report. Runs only at
    /// interval boundaries, never on the per-store path.
    fn report_interval_metrics(
        &mut self,
        stats: ProsperIntervalStats,
        total_cycles: Cycles,
        metadata_cycles: Cycles,
        phases: PhaseCycles,
    ) {
        let cur = self.tracker.lookup_stats();
        let prev = self.reported_lookup;
        telemetry::with(|t| {
            let r = t.registry();
            r.counter("prosper.ckpt.intervals").inc();
            r.counter("prosper.ckpt.runs").add(stats.runs);
            r.counter("prosper.ckpt.bytes").add(stats.bytes);
            r.counter("prosper.ckpt.bitmap_words_read")
                .add(stats.words_read);
            r.counter("prosper.ckpt.bitmap_words_cleared")
                .add(stats.words_cleared);
            r.counter("prosper.ckpt.bitmap_pages_probed")
                .add(stats.pages_probed);
            r.histogram("prosper.ckpt.interval_cycles")
                .record(total_cycles);
            r.histogram("prosper.ckpt.metadata_cycles")
                .record(metadata_cycles);
            r.histogram("prosper.ckpt.phase.inspect_cycles")
                .record(phases.inspect);
            r.histogram("prosper.ckpt.phase.clear_cycles")
                .record(phases.clear);
            r.histogram("prosper.ckpt.phase.stage_cycles")
                .record(phases.stage);
            r.histogram("prosper.ckpt.phase.apply_cycles")
                .record(phases.apply);
            if let Some(spine) = self.spine.as_ref() {
                r.histogram("prosper.ckpt.phase.merge_cycles")
                    .record(phases.merge);
                r.gauge("prosper.spine.batches")
                    .set(spine.batches.len() as i64);
                if stats.merges > 0 {
                    r.counter("prosper.spine.merges").add(stats.merges);
                    r.counter("prosper.spine.merged_bytes")
                        .add(stats.merged_bytes);
                }
            }
            let d = |a: u64, b: u64| a.saturating_sub(b);
            r.counter("prosper.table.searches")
                .add(d(cur.searches, prev.searches));
            r.counter("prosper.table.hits").add(d(cur.hits, prev.hits));
            r.counter("prosper.table.flush.hwm")
                .add(d(cur.hwm_flushes, prev.hwm_flushes));
            r.counter("prosper.table.flush.lwm_eviction")
                .add(d(cur.lwm_evictions, prev.lwm_evictions));
            r.counter("prosper.table.flush.random_eviction")
                .add(d(cur.random_evictions, prev.random_evictions));
            r.counter("prosper.table.flush.interval")
                .add(d(cur.interval_flushes, prev.interval_flushes));
            r.counter("prosper.table.flush.context_switch")
                .add(d(cur.ctx_switch_flushes, prev.ctx_switch_flushes));
            r.counter("prosper.table.bitmap_loads")
                .add(d(cur.bitmap_loads, prev.bitmap_loads));
            r.counter("prosper.table.bitmap_stores")
                .add(d(cur.bitmap_stores, prev.bitmap_stores));
            r.gauge("prosper.tracker.granularity")
                .set(self.tracker.config().granularity as i64);
        });
        self.reported_lookup = cur;
    }
}

impl MemoryPersistence for ProsperMechanism {
    fn name(&self) -> &'static str {
        "Prosper"
    }

    fn begin_interval(&mut self, machine: &mut Machine, region: VirtRange) {
        // Program the four configuration MSRs + control.
        self.tracker.configure(region, self.bitmap_base);
        self.tracker.reset_watermark();
        machine.advance(5 * MSR_WRITE_CYCLES);
    }

    fn on_store(&mut self, machine: &mut Machine, access: &MemAccess) {
        // The tracker snoops the store without stalling it; only the
        // coalesced bitmap traffic reaches the memory system.
        let ops = self
            .tracker
            .observe_store(access.vaddr, u64::from(access.size));
        self.inject_ops(machine, &ops);
    }

    fn end_interval(&mut self, machine: &mut Machine, info: IntervalInfo) -> CheckpointOutcome {
        let ckpt_start = machine.now();
        let tel = telemetry::enabled();

        // Step 1: request the flush (control MSR write); inject the
        // drained lookup-table entries.
        if tel {
            telemetry::span_begin(
                telemetry::names::SPAN_CKPT_QUIESCE,
                "prosper",
                machine.now(),
            );
        }
        machine.advance(MSR_WRITE_CYCLES);
        let ops = self.tracker.flush();
        self.inject_ops(machine, &ops);

        // Step 2: the OS overlaps preparation, then polls quiescence.
        machine.advance(QUIESCE_POLL_CYCLES);
        debug_assert!(self.tracker.quiescent());
        if tel {
            telemetry::span_end(telemetry::names::SPAN_CKPT_QUIESCE, machine.now());
        }

        // Inspection window: the tracker's watermark bounds the active
        // region; nothing dirty ⇒ nothing to walk.
        let meta_start = machine.now();
        let mut phases = PhaseCycles::default();
        if tel {
            telemetry::span_begin(telemetry::names::SPAN_CKPT_SCAN, "prosper", meta_start);
        }
        let mut stats = ProsperIntervalStats::default();
        self.last_runs.clear();
        if let Some(dirty) = self.tracker.dirty_window() {
            // The tracker's watermarks bound every set bit exactly, so
            // inspection never walks past the dirty window — crucial
            // when tracking a large heap range.
            let lo = dirty.start().max(info.region.start());
            let hi = dirty.end().min(info.region.end()).max(lo);
            let window = VirtRange::new(lo, hi);
            let geom = self.tracker.geometry();
            let ins = self.tracker.bitmap_mut().inspect_and_clear_into(
                &geom,
                window,
                &mut self.last_runs,
            );
            stats.words_read = ins.words_read;
            stats.words_cleared = ins.words_cleared;
            stats.pages_probed = ins.pages_probed;
            if !window.is_empty() {
                // The OS consults the per-page summary index first (one
                // touch per bitmap page covering the window)...
                let first_word = geom.locate(window.start()).0;
                let last_word = geom.locate(window.end() - 1u64).0;
                let mut page = first_word & !(PAGE_SPAN_BYTES - 1);
                while page <= last_word {
                    machine.load(VirtAddr::new(page.max(first_word)), 8);
                    page += PAGE_SPAN_BYTES;
                }
            }
            // ...then loads only the dirty words it steers to, eight
            // bytes (two 32-bit words) at a time.
            dirty_word_addrs(&geom, &self.last_runs, &mut self.word_scratch);
            debug_assert_eq!(
                self.word_scratch.len() as u64,
                ins.words_read,
                "runs and word accounting agree"
            );
            paired_addrs(&self.word_scratch, &mut self.pair_scratch);
            for &addr in &self.pair_scratch {
                machine.load(VirtAddr::new(addr), 8);
            }
            phases.inspect = machine.now() - meta_start;
            if tel {
                telemetry::span_end(telemetry::names::SPAN_CKPT_SCAN, machine.now());
                telemetry::span_begin(telemetry::names::SPAN_CKPT_CLEAR, "prosper", machine.now());
            }
            // Write back the cleared words at the same paired
            // addresses — the clear traffic spreads across the dirty
            // words' cache lines exactly like the read traffic.
            let clear_start = machine.now();
            for &addr in &self.pair_scratch {
                machine.store(VirtAddr::new(addr), 8);
            }
            phases.clear = machine.now() - clear_start;
            if tel {
                telemetry::span_end(telemetry::names::SPAN_CKPT_CLEAR, machine.now());
            }
        } else if tel {
            telemetry::span_end(telemetry::names::SPAN_CKPT_SCAN, machine.now());
        }
        let metadata_cycles = machine.now() - meta_start;

        // Two-step copy: DRAM → NVM staging buffer, then staging →
        // per-thread persistent stack (both in NVM).
        if tel {
            telemetry::span_begin(telemetry::names::SPAN_CKPT_COPY, "prosper", machine.now());
        }
        let stage_start = machine.now();
        let mut bytes = 0u64;
        for run in &self.last_runs {
            machine.advance(PER_RUN_OVERHEAD);
            machine.bulk_copy_dram_to_nvm_phase(run.len, CkptPhase::Stage);
            bytes += run.len;
        }
        phases.stage = machine.now() - stage_start;
        if tel {
            telemetry::span_end(telemetry::names::SPAN_CKPT_COPY, machine.now());
            telemetry::span_begin(telemetry::names::SPAN_CKPT_APPLY, "prosper", machine.now());
        }
        // Seal: the durability-point sequence record, written via the
        // posted persist path (bus traffic, no core stall).
        let seal_paddr = machine.translate(VirtAddr::new(DEFAULT_BITMAP_BASE));
        machine.persist_seal_record(seal_paddr, SEAL_RECORD_BYTES);
        let apply_start = machine.now();
        if let Some(spine) = self.spine.as_mut() {
            // Spine mode: append the sealed batch — only the run
            // descriptors hit NVM; the staged payload stays where the
            // stage copy put it. The apply copy vanishes from the
            // interval's critical path.
            let descs = spine.push_batch(&self.last_runs) as u64;
            if descs > 0 {
                let desc_bytes = BATCH_HEADER_BYTES + descs * PACKED_DESC_BYTES;
                machine.bulk_copy_nvm_to_nvm_phase(desc_bytes, CkptPhase::Apply);
            }
        } else if bytes > 0 {
            machine.bulk_copy_nvm_to_nvm_phase(bytes, CkptPhase::Apply);
        }
        phases.apply = machine.now() - apply_start;
        if tel {
            telemetry::span_end(telemetry::names::SPAN_CKPT_APPLY, machine.now());
        }

        // Deferred merge: when the policy fires, fold the resident
        // batches' deduplicated coverage into the persistent image in
        // one pass and retire the spine.
        let merge_start = machine.now();
        if let Some(spine) = self.spine.as_mut() {
            if spine.should_merge() {
                let distinct = spine.distinct_bytes();
                let folded = spine.retire();
                machine.advance(PER_RUN_OVERHEAD * folded);
                if distinct > 0 {
                    machine.bulk_copy_nvm_to_nvm_phase(distinct, CkptPhase::Merge);
                }
                stats.merges = 1;
                stats.merged_bytes = distinct;
            }
        }
        phases.merge = machine.now() - merge_start;

        // Stall attribution: the foreground thread is stalled for the
        // whole interval; tile its stall window with cause-tagged
        // segments at the phase boundaries captured above. The
        // accountant's virtual clock advances by the simulated cycle
        // deltas (1 cycle = 1 ns), so segments telescope exactly and
        // conservation holds by construction.
        let seq = self.interval_seq;
        self.interval_seq += 1;
        if let Some((acct, tid)) = self.attribution.as_ref() {
            use prosper_telemetry::StallCause;
            let tid = *tid;
            let s0 = acct.now_ns();
            acct.advance(meta_start - ckpt_start);
            let s1 = acct.now_ns();
            acct.advance(metadata_cycles);
            let s2 = acct.now_ns();
            acct.advance(phases.stage);
            let s3 = acct.now_ns();
            acct.advance(phases.apply);
            let s4 = acct.now_ns();
            acct.advance(phases.merge);
            let s5 = acct.now_ns();
            acct.record_segment(tid, StallCause::Quiesce, seq, s0, s1);
            acct.record_segment(tid, StallCause::Inspect, seq, s1, s2);
            acct.record_segment(tid, StallCause::Stage, seq, s2, s3);
            acct.record_segment(tid, StallCause::Apply, seq, s3, s4);
            if s5 > s4 {
                acct.record_segment(tid, StallCause::Merge, seq, s4, s5);
            }
            acct.record_window(tid, s0, s5);
        }

        stats.runs = self.last_runs.len() as u64;
        stats.bytes = bytes;
        self.last_interval = stats;
        self.totals.runs += stats.runs;
        self.totals.bytes += stats.bytes;
        self.totals.words_read += stats.words_read;
        self.totals.words_cleared += stats.words_cleared;
        self.totals.pages_probed += stats.pages_probed;
        self.totals.merges += stats.merges;
        self.totals.merged_bytes += stats.merged_bytes;

        // Adaptive extensions: the inspection above cleared every set
        // bit (the watermark bounds all dirty state), so retuning the
        // geometry or the table thresholds here is safe. Each MSR
        // rewrite costs a WRMSR.
        if let Some(adapter) = self.granularity_adapter.as_mut() {
            let next = adapter.observe(stats.runs, stats.bytes);
            if next != self.tracker.config().granularity {
                self.tracker.set_granularity(next);
                machine.advance(MSR_WRITE_CYCLES);
                if tel {
                    telemetry::instant("prosper.retune.granularity", machine.now());
                }
            }
        }
        if let Some(tuner) = self.watermark_tuner.as_mut() {
            let lookup = self.tracker.lookup_stats();
            let (hwm, lwm) = tuner.observe(&lookup);
            let cfg = self.tracker.config();
            if (hwm, lwm) != (cfg.hwm, cfg.lwm) {
                self.tracker.set_watermarks(hwm, lwm);
                machine.advance(MSR_WRITE_CYCLES);
                if tel {
                    telemetry::instant("prosper.retune.watermarks", machine.now());
                }
            }
        }

        if tel {
            self.report_interval_metrics(
                stats,
                machine.now() - ckpt_start,
                metadata_cycles,
                phases,
            );
        }

        CheckpointOutcome {
            bytes_copied: bytes,
            cycles: machine.now() - ckpt_start,
            metadata_cycles,
        }
    }

    fn region_in_dram(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosper_gemos::checkpoint::CheckpointManager;
    use prosper_memsim::config::MachineConfig;
    use prosper_trace::micro::{MicroBench, MicroSpec};
    use prosper_trace::workloads::{Workload, WorkloadProfile};

    fn run_micro(
        spec: MicroSpec,
        cfg: TrackerConfig,
        intervals: u64,
    ) -> (ProsperIntervalStats, u64) {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mgr = CheckpointManager::new(&mut machine, 30_000);
        let mut mech = ProsperMechanism::new(cfg);
        let bench = MicroBench::new(spec, 7);
        let res = mgr.run_stack_only(bench, &mut mech, intervals);
        (mech.totals, res.bytes_copied)
    }

    /// Runs `spec` on a fresh machine, returning the mechanism and
    /// the machine's per-phase NVM byte tally after the run.
    fn run_with_phases(
        spec: MicroSpec,
        mech: &mut ProsperMechanism,
        intervals: u64,
    ) -> prosper_memsim::NvmPhaseBytes {
        let mut machine = Machine::new(MachineConfig::setup_i());
        {
            let mut mgr = CheckpointManager::new(&mut machine, 30_000);
            let bench = MicroBench::new(spec, 7);
            mgr.run_stack_only(bench, mech, intervals);
        }
        machine.ckpt_nvm_bytes()
    }

    #[test]
    fn spine_mode_defers_apply_and_cuts_write_amplification() {
        // Stream re-dirties the same array every interval, so the
        // spine's batches overlap heavily and the merge dedups them.
        let spec = MicroSpec::Stream { array_bytes: 8192 };
        let mut eager_mech = ProsperMechanism::with_defaults();
        let eager = run_with_phases(spec, &mut eager_mech, 6);
        let mut spine_mech = ProsperMechanism::with_defaults().with_spine(SpineConfig::default());
        let spine = run_with_phases(spec, &mut spine_mech, 6);

        assert_eq!(spine.stage, eager.stage, "stage copies are identical");
        assert_eq!(spine.seal, eager.seal, "one seal record per interval");
        assert!(
            spine.apply < eager.apply,
            "batch append ({}) beats the eager apply copy ({})",
            spine.apply,
            eager.apply
        );
        assert!(spine_mech.totals.merges > 0, "the overlap policy fired");
        assert_eq!(eager_mech.totals.merges, 0, "eager mode never merges");
        assert!(spine.merge > 0, "merges wrote the deduplicated coverage");
        assert!(
            spine.merge < eager.apply,
            "merge writes the distinct coverage, not every batch"
        );
        assert!(
            spine.total() < eager.total(),
            "write amplification strictly lower: spine {} vs eager {}",
            spine.total(),
            eager.total()
        );
        assert_eq!(
            spine_mech.spine_config(),
            Some(SpineConfig::default()),
            "policy is observable"
        );
    }

    #[test]
    fn lazy_spine_accumulates_batches_until_count_pressure() {
        let spec = MicroSpec::Sparse { pages: 16 };
        let mut mech = ProsperMechanism::with_defaults().with_spine(SpineConfig::lazy(64));
        run_with_phases(spec, &mut mech, 3);
        assert_eq!(mech.totals.merges, 0, "lazy policy never fired");
        assert!(
            mech.spine_batches() > 0,
            "unmerged batches stay resident on the spine"
        );
    }

    #[test]
    fn end_to_end_copies_dirty_bytes() {
        let (totals, bytes) = run_micro(
            MicroSpec::Stream { array_bytes: 8192 },
            TrackerConfig::default(),
            3,
        );
        assert!(bytes > 0);
        assert_eq!(totals.bytes, bytes);
        assert!(totals.runs > 0);
        assert!(totals.words_read >= totals.words_cleared);
    }

    #[test]
    fn sparse_copies_far_less_than_page_granularity_would() {
        let (totals, _) = run_micro(MicroSpec::Sparse { pages: 16 }, TrackerConfig::default(), 2);
        // 16 pages × 2 intervals at page granularity would be ≥128 KiB;
        // Prosper copies the few dirtied bytes (4 B data + activation
        // records per frame, rounded to 8 B granules).
        assert!(
            totals.bytes < 32 * 1024,
            "sparse checkpoint stayed small: {} B",
            totals.bytes
        );
    }

    #[test]
    fn coarser_granularity_copies_more() {
        let spec = MicroSpec::Sparse { pages: 16 };
        let (fine, _) = run_micro(spec, TrackerConfig::default().with_granularity(8), 2);
        let (coarse, _) = run_micro(spec, TrackerConfig::default().with_granularity(128), 2);
        assert!(
            coarse.bytes >= fine.bytes,
            "coarse {} >= fine {}",
            coarse.bytes,
            fine.bytes
        );
    }

    #[test]
    fn quiescent_after_every_interval() {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mgr = CheckpointManager::new(&mut machine, 20_000);
        let mut mech = ProsperMechanism::with_defaults();
        let w = Workload::new(WorkloadProfile::gapbs_pr(), 1);
        mgr.run_stack_only(w, &mut mech, 4);
        assert!(mech.tracker().quiescent());
        assert_eq!(mech.tracker().resident_entries(), 0);
    }

    #[test]
    fn no_stack_stores_means_free_checkpoint() {
        // A "workload" that never stores to the stack: end_interval
        // must skip inspection entirely (watermark is None).
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mech = ProsperMechanism::with_defaults();
        let region = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7010_0000));
        mech.begin_interval(&mut machine, region);
        let info = IntervalInfo {
            region,
            active: region,
            final_sp: region.end(),
        };
        let outcome = mech.end_interval(&mut machine, info);
        assert_eq!(outcome.bytes_copied, 0);
        assert_eq!(mech.last_interval.words_read, 0);
    }

    #[test]
    fn adaptive_granularity_changes_config_between_intervals() {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mgr = CheckpointManager::new(&mut machine, 40_000);
        let mut mech = ProsperMechanism::with_defaults().with_adaptive_granularity();
        assert_eq!(mech.current_granularity(), 8);
        let bench = MicroBench::new(
            MicroSpec::Stream {
                array_bytes: 64 * 1024,
            },
            3,
        );
        mgr.run_stack_only(bench, &mut mech, 6);
        assert!(
            mech.current_granularity() > 8,
            "dense Stream coarsens: {}",
            mech.current_granularity()
        );
    }

    #[test]
    fn adaptive_watermarks_stay_legal_under_load() {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mgr = CheckpointManager::new(&mut machine, 40_000);
        let mut mech = ProsperMechanism::with_defaults().with_adaptive_watermarks();
        let w = Workload::new(WorkloadProfile::mcf(), 11);
        mgr.run_stack_only(w, &mut mech, 8);
        let cfg = *mech.tracker().config();
        assert!(cfg.lwm <= cfg.hwm);
        assert!((1..=32).contains(&cfg.hwm));
        assert!(cfg.lwm >= 1);
    }

    #[test]
    fn inspection_window_is_bounded_by_dirty_extent() {
        // A single store at a known address must produce a one-word
        // inspection, not a walk of the whole reserved range.
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mech = ProsperMechanism::with_defaults();
        let region = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7080_0000));
        mech.begin_interval(&mut machine, region);
        let a = prosper_trace::record::MemAccess {
            tid: 0,
            kind: prosper_trace::record::AccessKind::Store,
            vaddr: region.start() + 0x40_0000,
            size: 8,
            region: prosper_trace::record::Region::Stack,
            sp: region.start(),
        };
        mech.on_store(&mut machine, &a);
        let info = IntervalInfo {
            region,
            active: region,
            final_sp: region.start(),
        };
        let outcome = mech.end_interval(&mut machine, info);
        assert_eq!(outcome.bytes_copied, 8);
        assert_eq!(
            mech.last_interval.words_read, 1,
            "dirty window bounds the walk to one bitmap word"
        );
    }

    #[test]
    fn metadata_traffic_targets_dirty_words_and_spreads_lines() {
        // Regression (twice over): clear stores must not all land on
        // one cache line, and with the summary-indexed bitmap the
        // read/clear traffic must target exactly the dirty words — no
        // window walk.
        let g = BitmapGeometry {
            range_start: VirtAddr::new(0x7000_0000),
            bitmap_base: VirtAddr::new(0x1000_0000),
            granularity: 8,
        };
        let mut words = Vec::new();
        let mut pairs = Vec::new();
        // One run covering 32 contiguous words (1024 granules).
        let dense = [CopyRun {
            start: VirtAddr::new(0x7000_0000),
            len: 32 * g.bytes_per_word(),
        }];
        dirty_word_addrs(&g, &dense, &mut words);
        assert_eq!(words.len(), 32);
        paired_addrs(&words, &mut pairs);
        assert_eq!(pairs.len(), 16, "two words per eight-byte access");
        let spread = pairs.iter().max().unwrap() - pairs.iter().min().unwrap();
        assert_eq!(spread, 15 * 8, "accesses advance through the window");
        let unique: std::collections::BTreeSet<_> = pairs.iter().collect();
        assert_eq!(unique.len(), pairs.len(), "no address repeats");
        let lines: std::collections::BTreeSet<_> = pairs.iter().map(|a| a / 64).collect();
        assert!(
            lines.len() >= 2,
            "a 32-word clear spans multiple cache lines, got {lines:?}"
        );
        // Two sparse runs touch their own two words, not the span
        // between them.
        let sparse = [
            CopyRun {
                start: VirtAddr::new(0x7000_0000),
                len: 8,
            },
            CopyRun {
                start: VirtAddr::new(0x7000_0000) + 100 * g.bytes_per_word(),
                len: 8,
            },
        ];
        dirty_word_addrs(&g, &sparse, &mut words);
        assert_eq!(words, vec![0x1000_0000, 0x1000_0000 + 100 * 4]);
        // Adjacent runs inside one word do not double-count it.
        let adjacent = [
            CopyRun {
                start: VirtAddr::new(0x7000_0000),
                len: 16,
            },
            CopyRun {
                start: VirtAddr::new(0x7000_0000 + 24),
                len: 8,
            },
        ];
        dirty_word_addrs(&g, &adjacent, &mut words);
        assert_eq!(words.len(), 1);
        dirty_word_addrs(&g, &[], &mut words);
        assert!(words.is_empty());
        paired_addrs(&words, &mut pairs);
        assert!(pairs.is_empty());
    }

    #[test]
    fn tracker_traffic_is_injected_not_charged() {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mech = ProsperMechanism::with_defaults();
        let region = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7010_0000));
        mech.begin_interval(&mut machine, region);
        // Scatter stores across many bitmap words to force evictions.
        for i in 0..2000u64 {
            let a = prosper_trace::record::MemAccess {
                tid: 0,
                kind: prosper_trace::record::AccessKind::Store,
                vaddr: region.start() + (i * 509) % 0x10_0000,
                size: 8,
                region: prosper_trace::record::Region::Stack,
                sp: region.start(),
            };
            mech.on_store(&mut machine, &a);
        }
        let s = machine.stats();
        assert!(
            s.injected_loads + s.injected_stores > 0,
            "evictions produced bitmap traffic"
        );
    }
}
