//! Multi-threading support (Section III-C).
//!
//! Each software thread owns a stack, tracked by the dirty tracker of
//! whichever logical CPU the thread is scheduled on. On a context
//! switch the OS (1) instructs the tracker to flush the lookup table
//! into the outgoing context's bitmap, (2) overlaps other switch work,
//! (3) polls the quiescence counters, and (4) loads the incoming
//! context's MSR parameters. The paper measures this save/restore at
//! ~870 cycles on average.
//!
//! Inter-thread stack writes (thread A storing into thread B's stack)
//! are rare; Prosper handles them by keeping cross-stack mappings
//! read-only so such writes fault into the OS, which sets the victim
//! thread's bitmap bits before allowing the write (the
//! privilege-separation design of Wang et al. cited by the paper).

use std::collections::HashMap;
use std::sync::Arc;

use prosper_gemos::context::ContextSwitchParticipant;
use prosper_gemos::crash::{CrashInjected, CrashSite, FaultInjector};
use prosper_memsim::addr::{VirtAddr, VirtRange};
use prosper_memsim::machine::Machine;
use prosper_memsim::Cycles;
use prosper_telemetry::{StallAccountant, StallCause};

use crate::msr::{MsrBank, MSR_READ_CYCLES, MSR_WRITE_CYCLES};
use crate::tracker::{DirtyTracker, TrackerConfig};

/// Cycles to drain one lookup-table entry at switch-out (issue the
/// load/store pair and account it in the outstanding counters).
const PER_ENTRY_FLUSH_CYCLES: Cycles = 24;

/// Cost of a cross-stack write fault: trap, bitmap update, permission
/// grant, return (thousands of cycles on real hardware).
pub const CROSS_STACK_FAULT_CYCLES: Cycles = 3_000;

/// Per-thread Prosper context as saved/restored by the OS.
#[derive(Clone, Copy, Debug)]
pub struct ThreadTrackerState {
    /// Saved MSR programming.
    pub msrs: MsrBank,
    /// Bitmap base assigned to this thread.
    pub bitmap_base: VirtAddr,
}

/// Manages per-thread tracker state on one logical CPU.
#[derive(Debug)]
pub struct MultiThreadTracker {
    /// The physical tracker of this logical CPU.
    tracker: DirtyTracker,
    /// Saved state per software thread.
    saved: HashMap<u32, ThreadTrackerState>,
    /// Stack range per thread (for cross-stack classification).
    stack_ranges: HashMap<u32, VirtRange>,
    /// Currently-running thread.
    current: Option<u32>,
    /// Cross-stack write faults taken.
    pub cross_stack_faults: u64,
    /// Scratch: load addresses of the current injected-op batch.
    op_loads: Vec<u64>,
    /// Scratch: store addresses of the current injected-op batch.
    op_stores: Vec<u64>,
    /// Stall attribution sink for the quiescence handshake, if wired.
    attribution: Option<Arc<StallAccountant>>,
}

impl MultiThreadTracker {
    /// Builds a multiplexer over one hardware tracker.
    pub fn new(cfg: TrackerConfig) -> Self {
        Self {
            tracker: DirtyTracker::new(cfg),
            saved: HashMap::new(),
            stack_ranges: HashMap::new(),
            current: None,
            cross_stack_faults: 0,
            op_loads: Vec::new(),
            op_stores: Vec::new(),
            attribution: None,
        }
    }

    /// Wires a stall accountant into the quiescence handshake: every
    /// switch-out flush is charged to the *outgoing* thread as a
    /// `Quiesce`-cause segment (with a matching window), advancing the
    /// accountant's virtual clock by the simulated cycle cost
    /// (1 cycle = 1 virtual ns).
    pub fn set_attribution(&mut self, acct: Arc<StallAccountant>) {
        self.attribution = Some(acct);
    }

    /// Charges one quiescence handshake of `cycles` simulated cycles
    /// to thread `tid`.
    fn attribute_quiesce(&self, tid: u32, cycles: Cycles) {
        if let Some(acct) = &self.attribution {
            let start = acct.now_ns();
            acct.advance(cycles);
            let end = acct.now_ns();
            acct.record_segment(tid, StallCause::Quiesce, 0, start, end);
            acct.record_window(tid, start, end);
        }
    }

    /// Injects drained bitmap ops as batched background traffic.
    fn inject_ops(&mut self, machine: &mut Machine, ops: &[crate::lookup::BitmapOp]) {
        if ops.is_empty() {
            return;
        }
        crate::lookup::partition_ops(ops, &mut self.op_loads, &mut self.op_stores);
        machine.inject_load_batch(&self.op_loads, 4);
        machine.inject_store_batch(&self.op_stores, 4);
    }

    /// Registers thread `tid` with its stack range and per-thread
    /// bitmap area.
    pub fn register_thread(&mut self, tid: u32, stack: VirtRange, bitmap_base: VirtAddr) {
        self.stack_ranges.insert(tid, stack);
        let mut msrs = MsrBank::default();
        msrs.write(crate::msr::MsrId::StackRangeLo, stack.start().raw());
        msrs.write(crate::msr::MsrId::StackRangeHi, stack.end().raw());
        msrs.write(
            crate::msr::MsrId::Granularity,
            self.tracker.config().granularity,
        );
        msrs.write(crate::msr::MsrId::BitmapBase, bitmap_base.raw());
        msrs.write(crate::msr::MsrId::Control, crate::msr::CTRL_ENABLE);
        self.saved
            .insert(tid, ThreadTrackerState { msrs, bitmap_base });
    }

    /// Currently-scheduled thread, if any.
    pub fn current_thread(&self) -> Option<u32> {
        self.current
    }

    /// The underlying tracker.
    pub fn tracker(&self) -> &DirtyTracker {
        &self.tracker
    }

    /// Mutable tracker access (for checkpoint-time inspection).
    pub fn tracker_mut(&mut self) -> &mut DirtyTracker {
        &mut self.tracker
    }

    /// Schedules thread `tid` onto this CPU, performing the full
    /// save/restore protocol. Returns the Prosper-added cycles.
    ///
    /// # Panics
    ///
    /// Panics if `tid` was not registered.
    pub fn schedule(&mut self, machine: &mut Machine, tid: u32) -> Cycles {
        self.schedule_with_faults(machine, tid, &mut FaultInjector::disabled())
            .expect("a disabled injector never fires")
    }

    /// [`Self::schedule`] with crash windows inside the save/restore
    /// protocol: after the lookup-table flush but before the outgoing
    /// MSR state is saved ([`CrashSite::MidSwitchSave`]), and after
    /// the incoming MSRs are restored but before the switch completes
    /// ([`CrashSite::MidSwitchRestore`]). A crash there loses only
    /// volatile tracker state — the fault-injection harness asserts
    /// that a restarted tracker plus process recovery still yield a
    /// coherent checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`CrashInjected`] if the injector fired.
    ///
    /// # Panics
    ///
    /// Panics if `tid` was not registered.
    pub fn schedule_with_faults(
        &mut self,
        machine: &mut Machine,
        tid: u32,
        inj: &mut FaultInjector,
    ) -> Result<Cycles, CrashInjected> {
        assert!(self.saved.contains_key(&tid), "thread {tid} not registered");
        let mut cost: Cycles = 0;
        // Switch-out: flush + quiesce + save.
        if let Some(out_tid) = self.current.take() {
            let quiesce = self.flush_and_quiesce(machine);
            self.attribute_quiesce(out_tid, quiesce);
            cost += quiesce;
            if inj.observe(CrashSite::MidSwitchSave) {
                return Err(CrashInjected {
                    site: CrashSite::MidSwitchSave,
                });
            }
            let state = self
                .saved
                .get_mut(&out_tid)
                .expect("current thread is registered");
            state.msrs = self.tracker.save_state();
        }
        // Switch-in: restore the four config MSRs + control.
        let state = self.saved[&tid];
        self.tracker.restore_state(state.msrs);
        self.tracker.reset_watermark();
        let restore = 5 * MSR_WRITE_CYCLES;
        machine.advance(restore);
        cost += restore;
        if inj.observe(CrashSite::MidSwitchRestore) {
            return Err(CrashInjected {
                site: CrashSite::MidSwitchRestore,
            });
        }
        self.current = Some(tid);
        Ok(cost)
    }

    fn flush_and_quiesce(&mut self, machine: &mut Machine) -> Cycles {
        let start_entries = self.tracker.resident_entries() as u64;
        // Flush request (control MSR write).
        let mut cost = MSR_WRITE_CYCLES;
        let ops = self
            .tracker
            .flush_with_reason(crate::lookup::FlushReason::ContextSwitch);
        self.inject_ops(machine, &ops);
        cost += start_entries * PER_ENTRY_FLUSH_CYCLES;
        // Poll the status MSR for quiescence.
        cost += MSR_READ_CYCLES;
        machine.advance(cost - MSR_WRITE_CYCLES); // MSR write charged below
        machine.advance(MSR_WRITE_CYCLES);
        cost
    }

    /// Observes a store by the current thread, routing it to the
    /// tracker or, if it targets another thread's stack, taking the
    /// cross-stack fault path.
    pub fn observe_store(&mut self, machine: &mut Machine, vaddr: VirtAddr, size: u64) {
        let Some(current) = self.current else { return };
        let own_range = self.stack_ranges[&current];
        if own_range.overlaps_access(vaddr, size) {
            let ops = self.tracker.observe_store(vaddr, size);
            self.inject_ops(machine, &ops);
            return;
        }
        // Another thread's stack? Fault into the OS, which sets the
        // victim's bitmap bits directly and grants the write.
        let victim = self
            .stack_ranges
            .iter()
            .find(|(tid, r)| **tid != current && r.overlaps_access(vaddr, size));
        if victim.is_some() {
            self.cross_stack_faults += 1;
            machine.advance(CROSS_STACK_FAULT_CYCLES);
        }
    }
}

/// Adapter exposing the schedule protocol as a
/// [`ContextSwitchParticipant`] for the GemOS context switcher.
#[derive(Debug)]
pub struct TrackerSwitchParticipant<'a> {
    /// The tracker multiplexer.
    pub inner: &'a mut MultiThreadTracker,
    /// Thread to schedule on switch-in.
    pub incoming_tid: u32,
}

impl ContextSwitchParticipant for TrackerSwitchParticipant<'_> {
    fn switch_out(&mut self, machine: &mut Machine) -> Cycles {
        if let Some(out_tid) = self.inner.current {
            let cost = self.inner.flush_and_quiesce(machine);
            self.inner.attribute_quiesce(out_tid, cost);
            self.inner.current = None;
            let saved = self.inner.tracker.save_state();
            if let Some(state) = self.inner.saved.get_mut(&out_tid) {
                state.msrs = saved;
            }
            cost
        } else {
            0
        }
    }

    fn switch_in(&mut self, machine: &mut Machine) -> Cycles {
        assert!(
            self.inner.saved.contains_key(&self.incoming_tid),
            "thread {} not registered",
            self.incoming_tid
        );
        let state = self.inner.saved[&self.incoming_tid];
        self.inner.tracker.restore_state(state.msrs);
        self.inner.tracker.reset_watermark();
        let cost = 5 * MSR_WRITE_CYCLES;
        machine.advance(cost);
        self.inner.current = Some(self.incoming_tid);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosper_memsim::config::MachineConfig;

    fn setup() -> (MultiThreadTracker, Machine, VirtRange, VirtRange) {
        let mut mt = MultiThreadTracker::new(TrackerConfig::default());
        let s0 = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7080_0000));
        let s1 = VirtRange::new(VirtAddr::new(0x7100_0000), VirtAddr::new(0x7180_0000));
        mt.register_thread(0, s0, VirtAddr::new(0x1000_0000));
        mt.register_thread(1, s1, VirtAddr::new(0x1100_0000));
        (mt, Machine::new(MachineConfig::setup_i()), s0, s1)
    }

    #[test]
    fn schedule_switches_tracked_range() {
        let (mut mt, mut machine, s0, s1) = setup();
        mt.schedule(&mut machine, 0);
        assert_eq!(mt.tracker().msrs().tracked_range(), s0);
        mt.schedule(&mut machine, 1);
        assert_eq!(mt.tracker().msrs().tracked_range(), s1);
        assert_eq!(mt.current_thread(), Some(1));
    }

    #[test]
    fn switch_cost_grows_with_resident_entries() {
        let (mut mt, mut machine, s0, _) = setup();
        mt.schedule(&mut machine, 0);
        let empty_cost = mt.schedule(&mut machine, 1);
        mt.schedule(&mut machine, 0);
        // Dirty many distinct bitmap words so the table fills.
        for i in 0..16u64 {
            mt.observe_store(&mut machine, s0.start() + i * 256, 8);
        }
        let full_cost = mt.schedule(&mut machine, 1);
        assert!(
            full_cost > empty_cost,
            "flush of a full table costs more: {full_cost} vs {empty_cost}"
        );
    }

    #[test]
    fn switch_cost_in_paper_ballpark() {
        // The paper reports ~870 cycles average save/restore overhead.
        let (mut mt, mut machine, s0, s1) = setup();
        mt.schedule(&mut machine, 0);
        let mut total = 0;
        let mut switches = 0;
        for round in 0..20u64 {
            let (range, tid) = if round % 2 == 0 { (s0, 0) } else { (s1, 1) };
            let _ = tid;
            for i in 0..24u64 {
                mt.observe_store(&mut machine, range.start() + (i * 64) % 4096, 8);
            }
            let next = 1 - mt.current_thread().unwrap();
            total += mt.schedule(&mut machine, next);
            switches += 1;
        }
        let mean = total as f64 / switches as f64;
        assert!(
            (400.0..1600.0).contains(&mean),
            "mean switch overhead {mean} cycles (paper: ~870)"
        );
    }

    #[test]
    fn per_thread_bitmaps_stay_separate() {
        let (mut mt, mut machine, s0, s1) = setup();
        mt.schedule(&mut machine, 0);
        mt.observe_store(&mut machine, s0.start() + 8, 8);
        mt.schedule(&mut machine, 1);
        mt.observe_store(&mut machine, s1.start() + 8, 8);
        mt.schedule(&mut machine, 0);
        // Both threads' bits live in the shared functional bitmap but
        // at their own bitmap bases.
        mt.tracker_mut().flush();
        let bits = mt.tracker().bitmap().total_set_bits();
        assert_eq!(bits, 2);
    }

    #[test]
    fn cross_stack_write_faults() {
        let (mut mt, mut machine, _s0, s1) = setup();
        mt.schedule(&mut machine, 0);
        let before = machine.now();
        mt.observe_store(&mut machine, s1.start() + 16, 8);
        assert_eq!(mt.cross_stack_faults, 1);
        assert!(machine.now() - before >= CROSS_STACK_FAULT_CYCLES);
    }

    #[test]
    fn store_to_unmapped_region_ignored() {
        let (mut mt, mut machine, _, _) = setup();
        mt.schedule(&mut machine, 0);
        mt.observe_store(&mut machine, VirtAddr::new(0x100), 8);
        assert_eq!(mt.cross_stack_faults, 0);
        assert_eq!(mt.tracker().soi_count, 0);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn scheduling_unknown_thread_panics() {
        let (mut mt, mut machine, _, _) = setup();
        mt.schedule(&mut machine, 9);
    }

    #[test]
    #[should_panic(expected = "thread 7 not registered")]
    fn switch_in_to_unknown_thread_panics_with_message() {
        let (mut mt, mut machine, _, _) = setup();
        mt.schedule(&mut machine, 0);
        let mut p = TrackerSwitchParticipant {
            inner: &mut mt,
            incoming_tid: 7,
        };
        use prosper_gemos::context::ContextSwitchParticipant as _;
        p.switch_in(&mut machine);
    }

    #[test]
    fn crash_mid_switch_save_leaves_no_current_thread() {
        use prosper_gemos::crash::{CrashSite, FaultInjector};
        let (mut mt, mut machine, s0, _) = setup();
        mt.schedule(&mut machine, 0);
        mt.observe_store(&mut machine, s0.start() + 8, 8);
        let err = mt
            .schedule_with_faults(
                &mut machine,
                1,
                &mut FaultInjector::at_site(CrashSite::MidSwitchSave),
            )
            .unwrap_err();
        assert_eq!(err.site, CrashSite::MidSwitchSave);
        // The flush completed but the switch never did: the crashed
        // CPU has no scheduled thread, and a fresh schedule works.
        assert_eq!(mt.current_thread(), None);
        mt.schedule(&mut machine, 1);
        assert_eq!(mt.current_thread(), Some(1));
    }

    #[test]
    fn participant_adapter_matches_schedule() {
        let (mut mt, mut machine, s0, _) = setup();
        mt.schedule(&mut machine, 0);
        for i in 0..8u64 {
            mt.observe_store(&mut machine, s0.start() + i * 256, 8);
        }
        let mut p = TrackerSwitchParticipant {
            inner: &mut mt,
            incoming_tid: 1,
        };
        use prosper_gemos::context::ContextSwitchParticipant as _;
        let out = p.switch_out(&mut machine);
        let inn = p.switch_in(&mut machine);
        assert!(out > 0 && inn > 0);
        assert_eq!(mt.current_thread(), Some(1));
    }
}
