//! The dirty bitmap in DRAM and the OS-side inspection that turns set
//! bits into coalesced copy runs.
//!
//! Each bit covers `granularity` bytes of the tracked range; a 32-bit
//! bitmap word therefore covers `32 * granularity` bytes. The OS
//! inspects the bitmap **only over the active stack region** reported
//! by the tracker, coalescing contiguous set bits (the paper inspects
//! eight bitmap bytes at a time) into `(start, len)` copy runs, and
//! clears the touched words before the next interval.
//!
//! # Storage layout
//!
//! The functional bitmap is stored hierarchically for inspection
//! throughput:
//!
//! * **Pages** of [`WORDS_PER_PAGE`] dense 32-bit words, keyed by the
//!   page-aligned bitmap address. Stacks dirty a tiny, highly clustered
//!   fraction of their reserved range, so most pages never exist and a
//!   probe of an absent page skips [`PAGE_SPAN_BYTES`] of bitmap in one
//!   map lookup.
//! * A **summary index** per page — one summary bit per bitmap word,
//!   packed into `u64`s and scanned with `trailing_zeros` — so the walk
//!   inside a page jumps straight from dirty word to dirty word instead
//!   of testing each of the 512 slots.
//! * **Running popcounts** (per page and global), maintained on every
//!   word update, so [`DirtyBitmap::total_set_bits`] and
//!   [`DirtyBitmap::nonzero_words`] are O(1).
//!
//! Inspection therefore costs O(pages probed + dirty words) rather than
//! O(window words), and extracts runs from whole 64-bit word groups at
//! a time. The pre-hierarchical `BTreeMap` bitmap survives as
//! [`reference::SparseDirtyBitmap`], the differential-testing oracle
//! and the baseline the perf suite measures speedups against.

use prosper_memsim::addr::{VirtAddr, VirtRange};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Geometry tying a bitmap to the range it tracks.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BitmapGeometry {
    /// First byte of the tracked range.
    pub range_start: VirtAddr,
    /// Virtual base address of the bitmap area itself (in DRAM).
    pub bitmap_base: VirtAddr,
    /// Bytes covered by one bit (multiple of 8).
    pub granularity: u64,
}

impl BitmapGeometry {
    /// Bytes covered by one 32-bit bitmap word.
    pub fn bytes_per_word(&self) -> u64 {
        32 * self.granularity
    }

    /// Maps a tracked address to `(bitmap word address, bit index)` —
    /// the computation the tracker hardware performs per SOI (Fig. 7).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `addr` precedes the tracked range.
    pub fn locate(&self, addr: VirtAddr) -> (u64, u32) {
        debug_assert!(addr >= self.range_start, "address below tracked range");
        let granule = (addr - self.range_start) / self.granularity;
        let word = granule / 32;
        let bit = (granule % 32) as u32;
        (self.bitmap_base.raw() + word * 4, bit)
    }

    /// Inverse of [`Self::locate`]: the first tracked address covered
    /// by bit `bit` of the word at `word_addr`.
    pub fn granule_start(&self, word_addr: u64, bit: u32) -> VirtAddr {
        let word = (word_addr - self.bitmap_base.raw()) / 4;
        self.range_start + (word * 32 + u64::from(bit)) * self.granularity
    }

    /// Number of bitmap words needed to cover `range_bytes` of tracked
    /// memory.
    pub fn words_for(&self, range_bytes: u64) -> u64 {
        range_bytes.div_ceil(self.bytes_per_word())
    }
}

/// One coalesced copy run produced by bitmap inspection.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CopyRun {
    /// First dirty byte.
    pub start: VirtAddr,
    /// Length in bytes (a multiple of the granularity).
    pub len: u64,
}

/// 32-bit words stored per bitmap page.
pub const WORDS_PER_PAGE: usize = 512;

/// Bytes of bitmap address space covered by one page.
pub const PAGE_SPAN_BYTES: u64 = WORDS_PER_PAGE as u64 * 4;

/// `u64` summary words per page (one summary bit per bitmap word).
const SUMMARY_WORDS: usize = WORDS_PER_PAGE / 64;

/// Accounting produced by one inspection pass.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct InspectStats {
    /// Non-zero bitmap words loaded. The summary index steers the walk
    /// straight to dirty words, so clean words are never read; callers
    /// charge one bitmap load per pair of words read.
    pub words_read: u64,
    /// Bitmap words written back as zero (equals `words_read`: every
    /// word the walk loads is dirty and gets cleared).
    pub words_cleared: u64,
    /// Bitmap pages probed to cover the window, present or not; models
    /// the summary-index traffic (one line touch per page).
    pub pages_probed: u64,
}

/// One dense bitmap page plus its summary index and popcounts.
#[derive(Clone, Debug)]
struct BitmapPage {
    /// Dense word storage.
    words: Box<[u32; WORDS_PER_PAGE]>,
    /// One bit per word: set iff the word is non-zero.
    summary: [u64; SUMMARY_WORDS],
    /// Non-zero words in this page.
    nonzero: u32,
    /// Set bits in this page.
    set_bits: u64,
}

impl Default for BitmapPage {
    fn default() -> Self {
        Self {
            words: Box::new([0; WORDS_PER_PAGE]),
            summary: [0; SUMMARY_WORDS],
            nonzero: 0,
            set_bits: 0,
        }
    }
}

impl BitmapPage {
    /// Zeroes slot `idx` (which must be non-zero), maintaining the
    /// summary bit and the page popcounts. Returns the old value.
    fn clear_slot(&mut self, idx: usize) -> u32 {
        let old = self.words[idx];
        debug_assert_ne!(old, 0, "clearing an already-clean slot");
        self.words[idx] = 0;
        self.summary[idx / 64] &= !(1u64 << (idx % 64));
        self.nonzero -= 1;
        self.set_bits -= u64::from(old.count_ones());
        old
    }
}

/// The functional dirty bitmap: actual word storage (the machine model
/// charges the memory traffic; this holds the values). See the module
/// docs for the paged two-level layout.
#[derive(Clone, Debug, Default)]
pub struct DirtyBitmap {
    /// Page-aligned bitmap address → dense page.
    pages: HashMap<u64, BitmapPage>,
    /// Running popcount across all pages.
    total_bits: u64,
    /// Running non-zero word count across all pages.
    nonzero: u64,
}

impl DirtyBitmap {
    /// Creates an all-zero bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Splits a word address into `(page base, slot index)`.
    fn split(word_addr: u64) -> (u64, usize) {
        debug_assert_eq!(word_addr % 4, 0, "bitmap word addresses are 4-byte aligned");
        let base = word_addr & !(PAGE_SPAN_BYTES - 1);
        (base, ((word_addr - base) / 4) as usize)
    }

    /// Mask of summary bits `lo..=hi`.
    fn bit_range_mask(lo: usize, hi: usize) -> u64 {
        debug_assert!(lo <= hi && hi < 64);
        let upper = if hi == 63 {
            u64::MAX
        } else {
            (1u64 << (hi + 1)) - 1
        };
        upper & (u64::MAX << lo)
    }

    /// Reads a word (unset words are zero).
    pub fn read_word(&self, word_addr: u64) -> u32 {
        let (base, idx) = Self::split(word_addr);
        self.pages.get(&base).map_or(0, |p| p.words[idx])
    }

    /// Writes a word (dropping emptied pages to stay sparse).
    pub fn write_word(&mut self, word_addr: u64, value: u32) {
        let (base, idx) = Self::split(word_addr);
        if value == 0 {
            let Some(page) = self.pages.get_mut(&base) else {
                return;
            };
            if page.words[idx] == 0 {
                return;
            }
            let old = page.clear_slot(idx);
            self.total_bits -= u64::from(old.count_ones());
            self.nonzero -= 1;
            if page.nonzero == 0 {
                self.pages.remove(&base);
            }
        } else {
            let page = self.pages.entry(base).or_default();
            let old = page.words[idx];
            if old == value {
                return;
            }
            if old == 0 {
                page.nonzero += 1;
                self.nonzero += 1;
                page.summary[idx / 64] |= 1u64 << (idx % 64);
            }
            page.words[idx] = value;
            page.set_bits += u64::from(value.count_ones());
            page.set_bits -= u64::from(old.count_ones());
            self.total_bits += u64::from(value.count_ones());
            self.total_bits -= u64::from(old.count_ones());
        }
    }

    /// ORs `value` into a word — a single slot update (the tracker
    /// flush path calls this per drained lookup-table entry).
    pub fn merge_word(&mut self, word_addr: u64, value: u32) {
        if value == 0 {
            return;
        }
        let (base, idx) = Self::split(word_addr);
        let page = self.pages.entry(base).or_default();
        let old = page.words[idx];
        let new = old | value;
        if new == old {
            return;
        }
        if old == 0 {
            page.nonzero += 1;
            self.nonzero += 1;
            page.summary[idx / 64] |= 1u64 << (idx % 64);
        }
        let added = u64::from((new & !old).count_ones());
        page.words[idx] = new;
        page.set_bits += added;
        self.total_bits += added;
    }

    /// Number of set bits across the whole bitmap. O(1): maintained as
    /// a running popcount on every word update.
    pub fn total_set_bits(&self) -> u64 {
        self.total_bits
    }

    /// Number of non-zero words. O(1).
    pub fn nonzero_words(&self) -> usize {
        self.nonzero as usize
    }

    /// OS inspection over the active region: walks the bitmap words
    /// covering `active`, coalesces contiguous set bits into copy
    /// runs, and clears the words.
    ///
    /// The summary index makes the walk O(pages probed + dirty words):
    /// absent pages are skipped whole, and inside a present page the
    /// scan jumps from set summary bit to set summary bit with
    /// `trailing_zeros`, extracting runs from 64-bit word groups (a
    /// pair of bitmap words) at a time.
    ///
    /// Returns the runs plus an [`InspectStats`] accounting; the caller
    /// charges bitmap loads for the words read (eight bytes at a time)
    /// and page probes, and bitmap stores for the cleared words.
    ///
    /// # Examples
    ///
    /// ```
    /// use prosper_core::bitmap::{BitmapGeometry, DirtyBitmap};
    /// use prosper_memsim::addr::{VirtAddr, VirtRange};
    ///
    /// let geom = BitmapGeometry {
    ///     range_start: VirtAddr::new(0x7000_0000),
    ///     bitmap_base: VirtAddr::new(0x1000_0000),
    ///     granularity: 8,
    /// };
    /// let mut bm = DirtyBitmap::new();
    /// // Bits 0..3 of the first word: granules 0..3 are dirty.
    /// bm.merge_word(0x1000_0000, 0b1111);
    /// let active = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7000_0100));
    /// let (runs, stats) = bm.inspect_and_clear(&geom, active);
    /// assert_eq!(runs.len(), 1);
    /// assert_eq!(runs[0].len, 32); // four 8-byte granules coalesced
    /// assert_eq!(stats.words_read, 1);
    /// ```
    pub fn inspect_and_clear(
        &mut self,
        geom: &BitmapGeometry,
        active: VirtRange,
    ) -> (Vec<CopyRun>, InspectStats) {
        let mut runs = Vec::new();
        let stats = self.inspect_and_clear_into(geom, active, &mut runs);
        (runs, stats)
    }

    /// [`Self::inspect_and_clear`] into a caller-owned run buffer, so
    /// per-interval callers reuse one allocation. Clears `runs` first.
    pub fn inspect_and_clear_into(
        &mut self,
        geom: &BitmapGeometry,
        active: VirtRange,
        runs: &mut Vec<CopyRun>,
    ) -> InspectStats {
        runs.clear();
        let mut stats = InspectStats::default();
        if active.is_empty() {
            return stats;
        }
        let first_word = geom.locate(active.start().max(geom.range_start)).0;
        let last_word = geom.locate(active.end() - 1u64).0;
        let gran = geom.granularity;
        let mut current: Option<(u64, u64)> = None; // (start_raw, len)

        let mut page_base = first_word & !(PAGE_SPAN_BYTES - 1);
        while page_base <= last_word {
            stats.pages_probed += 1;
            let mut page_emptied = false;
            if let Some(page) = self.pages.get_mut(&page_base) {
                // Word-slot range of this page clipped to the window.
                let lo_idx = ((first_word.max(page_base) - page_base) / 4) as usize;
                let top_addr = page_base + PAGE_SPAN_BYTES - 4;
                let hi_idx = ((last_word.min(top_addr) - page_base) / 4) as usize;
                for s in (lo_idx / 64)..=(hi_idx / 64) {
                    let lo_bit = lo_idx.max(s * 64) - s * 64;
                    let hi_bit = hi_idx.min(s * 64 + 63) - s * 64;
                    let mut mask = page.summary[s] & Self::bit_range_mask(lo_bit, hi_bit);
                    while mask != 0 {
                        // Jump to the next dirty word and take its whole
                        // 64-bit group (an even/odd word pair) at once.
                        let w = mask.trailing_zeros() as usize;
                        let pair = (s * 64 + w) & !1;
                        mask &= !(0b11u64 << (pair - s * 64));
                        let lo_in = pair >= lo_idx && pair <= hi_idx;
                        let hi_in = pair + 1 >= lo_idx && pair < hi_idx;
                        let lo_val = if lo_in { page.words[pair] } else { 0 };
                        let hi_val = if hi_in { page.words[pair + 1] } else { 0 };
                        let group = u64::from(lo_val) | (u64::from(hi_val) << 32);
                        debug_assert_ne!(group, 0, "summary bit set on a clean word");
                        let g0 = geom.granule_start(page_base + pair as u64 * 4, 0).raw();
                        let mut v = group;
                        while v != 0 {
                            let tz = u64::from(v.trailing_zeros());
                            let ones = u64::from((v >> tz).trailing_ones());
                            let start = g0 + tz * gran;
                            let len = ones * gran;
                            match current {
                                Some((s0, l0)) if s0 + l0 == start => {
                                    current = Some((s0, l0 + len));
                                }
                                Some((s0, l0)) => {
                                    runs.push(CopyRun {
                                        start: VirtAddr::new(s0),
                                        len: l0,
                                    });
                                    current = Some((start, len));
                                }
                                None => current = Some((start, len)),
                            }
                            if tz + ones >= 64 {
                                v = 0;
                            } else {
                                v &= !(((1u64 << ones) - 1) << tz);
                            }
                        }
                        if lo_val != 0 {
                            page.clear_slot(pair);
                            stats.words_read += 1;
                            stats.words_cleared += 1;
                            self.nonzero -= 1;
                        }
                        if hi_val != 0 {
                            page.clear_slot(pair + 1);
                            stats.words_read += 1;
                            stats.words_cleared += 1;
                            self.nonzero -= 1;
                        }
                        self.total_bits -= u64::from(group.count_ones());
                    }
                }
                page_emptied = page.nonzero == 0;
            }
            if page_emptied {
                self.pages.remove(&page_base);
            }
            page_base += PAGE_SPAN_BYTES;
        }
        if let Some((s0, l0)) = current {
            runs.push(CopyRun {
                start: VirtAddr::new(s0),
                len: l0,
            });
        }
        stats
    }
}

/// Reference implementations kept for differential testing and as the
/// baseline the perf suite measures the paged bitmap against.
pub mod reference {
    use super::*;
    use std::collections::BTreeMap;

    /// The pre-hierarchical sparse bitmap: one `BTreeMap` entry per
    /// non-zero word, with an O(window) inspection that pays a log-time
    /// map lookup per bitmap word — clean or dirty. Functionally
    /// equivalent to [`DirtyBitmap`] (the proptest differential suite
    /// drives both through identical op sequences), just slow.
    #[derive(Clone, Debug, Default)]
    pub struct SparseDirtyBitmap {
        words: BTreeMap<u64, u32>,
    }

    impl SparseDirtyBitmap {
        /// Creates an all-zero bitmap.
        pub fn new() -> Self {
            Self::default()
        }

        /// Reads a word (unset words are zero).
        pub fn read_word(&self, word_addr: u64) -> u32 {
            self.words.get(&word_addr).copied().unwrap_or(0)
        }

        /// Writes a word (removing zero words to stay sparse).
        pub fn write_word(&mut self, word_addr: u64, value: u32) {
            if value == 0 {
                self.words.remove(&word_addr);
            } else {
                self.words.insert(word_addr, value);
            }
        }

        /// ORs `value` into a word (the original read-then-write pair
        /// of map operations).
        pub fn merge_word(&mut self, word_addr: u64, value: u32) {
            let v = self.read_word(word_addr) | value;
            self.write_word(word_addr, v);
        }

        /// Number of set bits across the whole bitmap. O(words).
        pub fn total_set_bits(&self) -> u64 {
            self.words.values().map(|v| u64::from(v.count_ones())).sum()
        }

        /// Number of non-zero words.
        pub fn nonzero_words(&self) -> usize {
            self.words.len()
        }

        /// The original word-at-a-time inspection walk, reporting the
        /// same [`InspectStats`] accounting as the paged bitmap so the
        /// differential suite can compare them field for field.
        pub fn inspect_and_clear(
            &mut self,
            geom: &BitmapGeometry,
            active: VirtRange,
        ) -> (Vec<CopyRun>, InspectStats) {
            let mut stats = InspectStats::default();
            if active.is_empty() {
                return (Vec::new(), stats);
            }
            let first_word = geom.locate(active.start().max(geom.range_start)).0;
            let last_word = geom.locate(active.end() - 1u64).0;
            let first_page = first_word & !(PAGE_SPAN_BYTES - 1);
            let last_page = last_word & !(PAGE_SPAN_BYTES - 1);
            stats.pages_probed = (last_page - first_page) / PAGE_SPAN_BYTES + 1;
            let mut runs: Vec<CopyRun> = Vec::new();
            let mut current: Option<(u64, u64)> = None; // (start_raw, len)

            let mut word_addr = first_word;
            while word_addr <= last_word {
                let value = self.read_word(word_addr);
                if value != 0 {
                    stats.words_read += 1;
                    for bit in 0..32 {
                        if value & (1 << bit) == 0 {
                            if let Some((s, l)) = current.take() {
                                runs.push(CopyRun {
                                    start: VirtAddr::new(s),
                                    len: l,
                                });
                            }
                            continue;
                        }
                        let g_start = geom.granule_start(word_addr, bit).raw();
                        match current {
                            Some((s, l)) if s + l == g_start => {
                                current = Some((s, l + geom.granularity));
                            }
                            Some((s, l)) => {
                                runs.push(CopyRun {
                                    start: VirtAddr::new(s),
                                    len: l,
                                });
                                current = Some((g_start, geom.granularity));
                            }
                            None => current = Some((g_start, geom.granularity)),
                        }
                    }
                    self.write_word(word_addr, 0);
                    stats.words_cleared += 1;
                } else if let Some((s, l)) = current.take() {
                    runs.push(CopyRun {
                        start: VirtAddr::new(s),
                        len: l,
                    });
                }
                word_addr += 4;
            }
            if let Some((s, l)) = current {
                runs.push(CopyRun {
                    start: VirtAddr::new(s),
                    len: l,
                });
            }
            (runs, stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::SparseDirtyBitmap;
    use super::*;

    fn geom(granularity: u64) -> BitmapGeometry {
        BitmapGeometry {
            range_start: VirtAddr::new(0x7000_0000),
            bitmap_base: VirtAddr::new(0x1000_0000),
            granularity,
        }
    }

    #[test]
    fn locate_roundtrips() {
        let g = geom(8);
        for off in [0u64, 7, 8, 255, 256, 4096, 123456] {
            let addr = VirtAddr::new(0x7000_0000 + off);
            let (word, bit) = g.locate(addr);
            let back = g.granule_start(word, bit);
            assert!(back <= addr && addr - back < 8, "granule contains addr");
        }
    }

    #[test]
    fn word_covers_32_granules() {
        let g = geom(8);
        assert_eq!(g.bytes_per_word(), 256);
        let (w0, b0) = g.locate(VirtAddr::new(0x7000_0000));
        let (w1, b1) = g.locate(VirtAddr::new(0x7000_0000 + 255));
        assert_eq!(w0, w1);
        assert_eq!(b0, 0);
        assert_eq!(b1, 31);
        let (w2, _) = g.locate(VirtAddr::new(0x7000_0000 + 256));
        assert_eq!(w2, w0 + 4);
        assert_eq!(g.words_for(257), 2);
    }

    #[test]
    fn merge_and_count() {
        let mut b = DirtyBitmap::new();
        b.merge_word(0x100, 0b101);
        b.merge_word(0x100, 0b110);
        assert_eq!(b.read_word(0x100), 0b111);
        assert_eq!(b.total_set_bits(), 3);
        assert_eq!(b.nonzero_words(), 1);
        b.write_word(0x100, 0);
        assert_eq!(b.nonzero_words(), 0);
        assert_eq!(b.total_set_bits(), 0);
    }

    #[test]
    fn overwrite_keeps_popcounts_consistent() {
        let mut b = DirtyBitmap::new();
        b.write_word(0x100, 0xffff_ffff);
        assert_eq!(b.total_set_bits(), 32);
        b.write_word(0x100, 0b1);
        assert_eq!(b.total_set_bits(), 1);
        assert_eq!(b.nonzero_words(), 1);
        b.merge_word(0x100, 0b1); // already set: no change
        assert_eq!(b.total_set_bits(), 1);
        b.merge_word(0x104, 0);
        assert_eq!(b.nonzero_words(), 1, "merging zero is a no-op");
        b.write_word(0x100, 0);
        assert_eq!((b.total_set_bits(), b.nonzero_words()), (0, 0));
    }

    #[test]
    fn inspection_coalesces_contiguous_bits() {
        let g = geom(8);
        let mut b = DirtyBitmap::new();
        let (word, _) = g.locate(VirtAddr::new(0x7000_0000));
        // Bits 0..4 contiguous, bit 8 isolated.
        b.write_word(word, 0b1_0000_1111);
        let active = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7000_0100));
        let (runs, stats) = b.inspect_and_clear(&g, active);
        assert_eq!(
            runs,
            vec![
                CopyRun {
                    start: VirtAddr::new(0x7000_0000),
                    len: 32
                },
                CopyRun {
                    start: VirtAddr::new(0x7000_0040),
                    len: 8
                },
            ]
        );
        assert_eq!(stats.words_read, 1);
        assert_eq!(stats.words_cleared, 1);
        assert_eq!(b.total_set_bits(), 0, "inspection clears");
    }

    #[test]
    fn runs_span_word_boundaries() {
        let g = geom(8);
        let mut b = DirtyBitmap::new();
        let base = VirtAddr::new(0x7000_0000);
        let (w0, _) = g.locate(base);
        // Last bit of word 0 and first bit of word 1: one contiguous run.
        b.write_word(w0, 1 << 31);
        b.write_word(w0 + 4, 1);
        let active = VirtRange::new(base, base + 512);
        let (runs, stats) = b.inspect_and_clear(&g, active);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].start, base + 31 * 8);
        assert_eq!(runs[0].len, 16);
        assert_eq!(stats.words_read, 2);
    }

    #[test]
    fn runs_span_group_and_page_boundaries() {
        let g = geom(8);
        let mut b = DirtyBitmap::new();
        let base = VirtAddr::new(0x7000_0000);
        let (w0, _) = g.locate(base);
        // Last bit of word 1 (group 0) and first bit of word 2
        // (group 1): the run must survive the 64-bit group seam.
        b.write_word(w0 + 4, 1 << 31);
        b.write_word(w0 + 8, 1);
        // Last bit of the last word of page 0 and first bit of the
        // first word of page 1: the run must survive the page seam.
        let page_last = w0 + PAGE_SPAN_BYTES - 4;
        b.write_word(page_last, 1 << 31);
        b.write_word(page_last + 4, 1);
        let window_end = base + 2 * PAGE_SPAN_BYTES / 4 * g.bytes_per_word();
        let (runs, stats) = b.inspect_and_clear(&g, VirtRange::new(base, window_end));
        assert_eq!(runs.len(), 2, "two seam-crossing runs: {runs:?}");
        assert_eq!(runs[0].start, base + (2 * 32 - 1) * 8);
        assert_eq!(runs[0].len, 16);
        assert_eq!(runs[1].start, base + (512 * 32 - 1) * 8);
        assert_eq!(runs[1].len, 16);
        assert_eq!(stats.words_read, 4);
        assert_eq!(b.total_set_bits(), 0);
        assert_eq!(b.nonzero_words(), 0);
    }

    #[test]
    fn summary_index_skips_clean_spans() {
        let g = geom(8);
        let mut b = DirtyBitmap::new();
        let base = VirtAddr::new(0x7000_0000);
        let (w0, _) = g.locate(base);
        // Three dirty words scattered across a 1 MiB window (4096
        // words = 8 pages): the walk reads exactly three words.
        for off in [40 * 4, 1000 * 4, 3700 * 4] {
            b.write_word(w0 + off, 0b1);
        }
        let (runs, stats) = b.inspect_and_clear(&g, VirtRange::new(base, base + (1 << 20)));
        assert_eq!(runs.len(), 3);
        assert_eq!(stats.words_read, 3, "only dirty words are loaded");
        assert_eq!(stats.words_cleared, 3);
        assert_eq!(stats.pages_probed, 8, "1 MiB of stack = 8 bitmap pages");
        // A fully clean window costs only the page probes.
        let (runs, stats) = b.inspect_and_clear(&g, VirtRange::new(base, base + (1 << 20)));
        assert!(runs.is_empty());
        assert_eq!(stats.words_read, 0);
        assert_eq!(stats.pages_probed, 8);
    }

    #[test]
    fn inspection_bounded_by_active_region() {
        let g = geom(8);
        let mut b = DirtyBitmap::new();
        let base = VirtAddr::new(0x7000_0000);
        // Dirty data both inside and outside the active window.
        let (w_far, _) = g.locate(base + 64 * 1024);
        b.write_word(w_far, 0xffff_ffff);
        let (w_near, _) = g.locate(base);
        b.write_word(w_near, 1);
        let active = VirtRange::new(base, base + 256);
        let (runs, stats) = b.inspect_and_clear(&g, active);
        assert_eq!(runs.len(), 1);
        assert_eq!(stats.words_read, 1, "only the active window is walked");
        // The far word survives untouched (its interval will handle it).
        assert_eq!(b.read_word(w_far), 0xffff_ffff);
        assert_eq!(b.total_set_bits(), 32);
    }

    #[test]
    fn empty_active_region_is_free() {
        let g = geom(8);
        let mut b = DirtyBitmap::new();
        let active = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7000_0000));
        let (runs, stats) = b.inspect_and_clear(&g, active);
        assert!(runs.is_empty());
        assert_eq!(stats, InspectStats::default());
    }

    #[test]
    fn coarse_granularity_shrinks_bitmap() {
        let g8 = geom(8);
        let g128 = geom(128);
        assert!(g128.words_for(1 << 20) < g8.words_for(1 << 20));
        let (_, bit8) = g8.locate(VirtAddr::new(0x7000_0000 + 128));
        let (_, bit128) = g128.locate(VirtAddr::new(0x7000_0000 + 128));
        assert_eq!(bit8, 16);
        assert_eq!(bit128, 1);
    }

    #[test]
    fn run_lengths_are_granularity_multiples() {
        let g = geom(16);
        let mut b = DirtyBitmap::new();
        let base = VirtAddr::new(0x7000_0000);
        let (w, _) = g.locate(base);
        b.write_word(w, 0b11);
        let (runs, _) = b.inspect_and_clear(&g, VirtRange::new(base, base + 1024));
        assert_eq!(runs[0].len, 32);
        assert_eq!(runs[0].len % 16, 0);
    }

    #[test]
    fn matches_reference_on_dense_and_clipped_windows() {
        let g = geom(8);
        let base = VirtAddr::new(0x7000_0000);
        let mut hier = DirtyBitmap::new();
        let mut sparse = SparseDirtyBitmap::new();
        let (w0, _) = g.locate(base);
        // A dense stripe, an isolated word, and a page-seam pattern.
        for i in 0..96u64 {
            let v = if i % 3 == 0 { 0xffff_ffff } else { 0x8000_0101 };
            hier.write_word(w0 + i * 4, v);
            sparse.write_word(w0 + i * 4, v);
        }
        hier.merge_word(w0 + PAGE_SPAN_BYTES, 0xf0f0);
        sparse.merge_word(w0 + PAGE_SPAN_BYTES, 0xf0f0);
        assert_eq!(hier.total_set_bits(), sparse.total_set_bits());
        assert_eq!(hier.nonzero_words(), sparse.nonzero_words());
        // Window starts mid-stripe and ends mid-page: exercises the
        // summary-word clipping on both edges.
        let win = VirtRange::new(
            base + 17 * g.bytes_per_word(),
            base + 600 * g.bytes_per_word(),
        );
        let (hr, hs) = hier.inspect_and_clear(&g, win);
        let (sr, ss) = sparse.inspect_and_clear(&g, win);
        assert_eq!(hr, sr);
        assert_eq!(hs, ss);
        assert_eq!(hier.total_set_bits(), sparse.total_set_bits());
        assert_eq!(hier.nonzero_words(), sparse.nonzero_words());
    }
}
