//! The dirty bitmap in DRAM and the OS-side inspection that turns set
//! bits into coalesced copy runs.
//!
//! Each bit covers `granularity` bytes of the tracked range; a 32-bit
//! bitmap word therefore covers `32 * granularity` bytes. The OS
//! inspects the bitmap **only over the active stack region** reported
//! by the tracker, coalescing contiguous set bits (the paper inspects
//! eight bitmap bytes at a time) into `(start, len)` copy runs, and
//! clears the touched words before the next interval.

use prosper_memsim::addr::{VirtAddr, VirtRange};
use serde::{Deserialize, Serialize};

/// Geometry tying a bitmap to the range it tracks.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BitmapGeometry {
    /// First byte of the tracked range.
    pub range_start: VirtAddr,
    /// Virtual base address of the bitmap area itself (in DRAM).
    pub bitmap_base: VirtAddr,
    /// Bytes covered by one bit (multiple of 8).
    pub granularity: u64,
}

impl BitmapGeometry {
    /// Bytes covered by one 32-bit bitmap word.
    pub fn bytes_per_word(&self) -> u64 {
        32 * self.granularity
    }

    /// Maps a tracked address to `(bitmap word address, bit index)` —
    /// the computation the tracker hardware performs per SOI (Fig. 7).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `addr` precedes the tracked range.
    pub fn locate(&self, addr: VirtAddr) -> (u64, u32) {
        debug_assert!(addr >= self.range_start, "address below tracked range");
        let granule = (addr - self.range_start) / self.granularity;
        let word = granule / 32;
        let bit = (granule % 32) as u32;
        (self.bitmap_base.raw() + word * 4, bit)
    }

    /// Inverse of [`Self::locate`]: the first tracked address covered
    /// by bit `bit` of the word at `word_addr`.
    pub fn granule_start(&self, word_addr: u64, bit: u32) -> VirtAddr {
        let word = (word_addr - self.bitmap_base.raw()) / 4;
        self.range_start + (word * 32 + u64::from(bit)) * self.granularity
    }

    /// Number of bitmap words needed to cover `range_bytes` of tracked
    /// memory.
    pub fn words_for(&self, range_bytes: u64) -> u64 {
        range_bytes.div_ceil(self.bytes_per_word())
    }
}

/// One coalesced copy run produced by bitmap inspection.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CopyRun {
    /// First dirty byte.
    pub start: VirtAddr,
    /// Length in bytes (a multiple of the granularity).
    pub len: u64,
}

/// The functional dirty bitmap: actual word storage (the machine model
/// charges the memory traffic; this holds the values).
#[derive(Clone, Debug, Default)]
pub struct DirtyBitmap {
    /// Sparse storage: word address -> value. Sparse because stacks
    /// touch a tiny fraction of their reserved range.
    words: std::collections::BTreeMap<u64, u32>,
}

impl DirtyBitmap {
    /// Creates an all-zero bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a word (unset words are zero).
    pub fn read_word(&self, word_addr: u64) -> u32 {
        self.words.get(&word_addr).copied().unwrap_or(0)
    }

    /// Writes a word (removing zero words to stay sparse).
    pub fn write_word(&mut self, word_addr: u64, value: u32) {
        if value == 0 {
            self.words.remove(&word_addr);
        } else {
            self.words.insert(word_addr, value);
        }
    }

    /// ORs `value` into a word.
    pub fn merge_word(&mut self, word_addr: u64, value: u32) {
        let v = self.read_word(word_addr) | value;
        self.write_word(word_addr, v);
    }

    /// Number of set bits across the whole bitmap.
    pub fn total_set_bits(&self) -> u64 {
        self.words.values().map(|v| u64::from(v.count_ones())).sum()
    }

    /// Number of non-zero words.
    pub fn nonzero_words(&self) -> usize {
        self.words.len()
    }

    /// OS inspection over the active region: walks the bitmap words
    /// covering `active`, coalesces contiguous set bits into copy
    /// runs, and clears the words.
    ///
    /// Returns `(runs, words_read, words_cleared)`; the caller charges
    /// `words_read` bitmap loads and `words_cleared` bitmap stores to
    /// the machine.
    ///
    /// # Examples
    ///
    /// ```
    /// use prosper_core::bitmap::{BitmapGeometry, DirtyBitmap};
    /// use prosper_memsim::addr::{VirtAddr, VirtRange};
    ///
    /// let geom = BitmapGeometry {
    ///     range_start: VirtAddr::new(0x7000_0000),
    ///     bitmap_base: VirtAddr::new(0x1000_0000),
    ///     granularity: 8,
    /// };
    /// let mut bm = DirtyBitmap::new();
    /// // Bits 0..3 of the first word: granules 0..3 are dirty.
    /// bm.merge_word(0x1000_0000, 0b1111);
    /// let active = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7000_0100));
    /// let (runs, _, _) = bm.inspect_and_clear(&geom, active);
    /// assert_eq!(runs.len(), 1);
    /// assert_eq!(runs[0].len, 32); // four 8-byte granules coalesced
    /// ```
    pub fn inspect_and_clear(
        &mut self,
        geom: &BitmapGeometry,
        active: VirtRange,
    ) -> (Vec<CopyRun>, u64, u64) {
        if active.is_empty() {
            return (Vec::new(), 0, 0);
        }
        let first_word = geom.locate(active.start().max(geom.range_start)).0;
        let last_word = geom.locate(active.end() - 1u64).0;
        let mut runs: Vec<CopyRun> = Vec::new();
        let mut words_read = 0u64;
        let mut words_cleared = 0u64;
        let mut current: Option<(u64, u64)> = None; // (start_raw, len)

        let mut word_addr = first_word;
        while word_addr <= last_word {
            words_read += 1;
            let value = self.read_word(word_addr);
            if value != 0 {
                for bit in 0..32 {
                    if value & (1 << bit) == 0 {
                        if let Some((s, l)) = current.take() {
                            runs.push(CopyRun {
                                start: VirtAddr::new(s),
                                len: l,
                            });
                        }
                        continue;
                    }
                    let g_start = geom.granule_start(word_addr, bit).raw();
                    match current {
                        Some((s, l)) if s + l == g_start => {
                            current = Some((s, l + geom.granularity));
                        }
                        Some((s, l)) => {
                            runs.push(CopyRun {
                                start: VirtAddr::new(s),
                                len: l,
                            });
                            current = Some((g_start, geom.granularity));
                        }
                        None => current = Some((g_start, geom.granularity)),
                    }
                }
                self.write_word(word_addr, 0);
                words_cleared += 1;
            } else if let Some((s, l)) = current.take() {
                runs.push(CopyRun {
                    start: VirtAddr::new(s),
                    len: l,
                });
            }
            word_addr += 4;
        }
        if let Some((s, l)) = current {
            runs.push(CopyRun {
                start: VirtAddr::new(s),
                len: l,
            });
        }
        (runs, words_read, words_cleared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(granularity: u64) -> BitmapGeometry {
        BitmapGeometry {
            range_start: VirtAddr::new(0x7000_0000),
            bitmap_base: VirtAddr::new(0x1000_0000),
            granularity,
        }
    }

    #[test]
    fn locate_roundtrips() {
        let g = geom(8);
        for off in [0u64, 7, 8, 255, 256, 4096, 123456] {
            let addr = VirtAddr::new(0x7000_0000 + off);
            let (word, bit) = g.locate(addr);
            let back = g.granule_start(word, bit);
            assert!(back <= addr && addr - back < 8, "granule contains addr");
        }
    }

    #[test]
    fn word_covers_32_granules() {
        let g = geom(8);
        assert_eq!(g.bytes_per_word(), 256);
        let (w0, b0) = g.locate(VirtAddr::new(0x7000_0000));
        let (w1, b1) = g.locate(VirtAddr::new(0x7000_0000 + 255));
        assert_eq!(w0, w1);
        assert_eq!(b0, 0);
        assert_eq!(b1, 31);
        let (w2, _) = g.locate(VirtAddr::new(0x7000_0000 + 256));
        assert_eq!(w2, w0 + 4);
        assert_eq!(g.words_for(257), 2);
    }

    #[test]
    fn merge_and_count() {
        let mut b = DirtyBitmap::new();
        b.merge_word(0x100, 0b101);
        b.merge_word(0x100, 0b110);
        assert_eq!(b.read_word(0x100), 0b111);
        assert_eq!(b.total_set_bits(), 3);
        assert_eq!(b.nonzero_words(), 1);
        b.write_word(0x100, 0);
        assert_eq!(b.nonzero_words(), 0);
    }

    #[test]
    fn inspection_coalesces_contiguous_bits() {
        let g = geom(8);
        let mut b = DirtyBitmap::new();
        let (word, _) = g.locate(VirtAddr::new(0x7000_0000));
        // Bits 0..4 contiguous, bit 8 isolated.
        b.write_word(word, 0b1_0000_1111);
        let active = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7000_0100));
        let (runs, read, cleared) = b.inspect_and_clear(&g, active);
        assert_eq!(
            runs,
            vec![
                CopyRun {
                    start: VirtAddr::new(0x7000_0000),
                    len: 32
                },
                CopyRun {
                    start: VirtAddr::new(0x7000_0040),
                    len: 8
                },
            ]
        );
        assert_eq!(read, 1);
        assert_eq!(cleared, 1);
        assert_eq!(b.total_set_bits(), 0, "inspection clears");
    }

    #[test]
    fn runs_span_word_boundaries() {
        let g = geom(8);
        let mut b = DirtyBitmap::new();
        let base = VirtAddr::new(0x7000_0000);
        let (w0, _) = g.locate(base);
        // Last bit of word 0 and first bit of word 1: one contiguous run.
        b.write_word(w0, 1 << 31);
        b.write_word(w0 + 4, 1);
        let active = VirtRange::new(base, base + 512);
        let (runs, read, _) = b.inspect_and_clear(&g, active);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].start, base + 31 * 8);
        assert_eq!(runs[0].len, 16);
        assert_eq!(read, 2);
    }

    #[test]
    fn inspection_bounded_by_active_region() {
        let g = geom(8);
        let mut b = DirtyBitmap::new();
        let base = VirtAddr::new(0x7000_0000);
        // Dirty data both inside and outside the active window.
        let (w_far, _) = g.locate(base + 64 * 1024);
        b.write_word(w_far, 0xffff_ffff);
        let (w_near, _) = g.locate(base);
        b.write_word(w_near, 1);
        let active = VirtRange::new(base, base + 256);
        let (runs, read, _) = b.inspect_and_clear(&g, active);
        assert_eq!(runs.len(), 1);
        assert_eq!(read, 1, "only the active window is walked");
        // The far word survives untouched (its interval will handle it).
        assert_eq!(b.read_word(w_far), 0xffff_ffff);
    }

    #[test]
    fn empty_active_region_is_free() {
        let g = geom(8);
        let mut b = DirtyBitmap::new();
        let active = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7000_0000));
        let (runs, read, cleared) = b.inspect_and_clear(&g, active);
        assert!(runs.is_empty());
        assert_eq!((read, cleared), (0, 0));
    }

    #[test]
    fn coarse_granularity_shrinks_bitmap() {
        let g8 = geom(8);
        let g128 = geom(128);
        assert!(g128.words_for(1 << 20) < g8.words_for(1 << 20));
        let (_, bit8) = g8.locate(VirtAddr::new(0x7000_0000 + 128));
        let (_, bit128) = g128.locate(VirtAddr::new(0x7000_0000 + 128));
        assert_eq!(bit8, 16);
        assert_eq!(bit128, 1);
    }

    #[test]
    fn run_lengths_are_granularity_multiples() {
        let g = geom(16);
        let mut b = DirtyBitmap::new();
        let base = VirtAddr::new(0x7000_0000);
        let (w, _) = g.locate(base);
        b.write_word(w, 0b11);
        let (runs, _, _) = b.inspect_and_clear(&g, VirtRange::new(base, base + 1024));
        assert_eq!(runs[0].len, 32);
        assert_eq!(runs[0].len % 16, 0);
    }
}
