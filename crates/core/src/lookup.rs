//! The tracker's lookup table (Section III-B, Figure 7).
//!
//! The table is a small fully-associative cache whose entries coalesce
//! bitmap store requests: `<bitmap word address (64 bits), bitmap value
//! (32 bits)>`. Bitmap traffic is generated on three events:
//!
//! 1. an entry's set-bit count reaches the **high-water-mark** (HWM);
//! 2. an entry is **evicted** to make room — victims are entries with
//!    fewer set bits than the **low-water-mark** (LWM), prioritising
//!    momentarily-touched call/return areas, with a random fallback;
//! 3. the OS requests a **flush** at the end of a checkpoint interval
//!    or a context switch.
//!
//! Two allocation policies exist for a miss (Section III-B):
//!
//! * **Accumulate-and-Apply** (Prosper's choice): allocate an empty
//!   entry instantly; the old bitmap word is loaded only when the
//!   entry is flushed, merged, and stored back *if changed*.
//! * **Load-and-Update**: load the old word at allocation time; the
//!   entry then always holds the latest value and a flush needs no
//!   load, but allocation must wait for the load.

use serde::{Deserialize, Serialize};

/// Allocation policy for new lookup-table entries.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum AllocPolicy {
    /// Allocate empty; load-merge-store at flush time (the paper's
    /// choice — instant allocation, no "not ready" entries).
    #[default]
    AccumulateAndApply,
    /// Load the old word at allocation; flush stores without loading.
    LoadAndUpdate,
}

/// One lookup-table entry.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct Entry {
    /// Bitmap word address (the key; 64 bits in hardware).
    word_addr: u64,
    /// Accumulated bitmap value (32 bits in hardware).
    value: u32,
    /// Old word loaded at allocation (Load-and-Update only).
    loaded_old: Option<u32>,
    valid: bool,
}

impl Entry {
    const INVALID: Entry = Entry {
        word_addr: 0,
        value: 0,
        loaded_old: None,
        valid: false,
    };
}

/// Why a lookup-table entry's contents were pushed out to the bitmap.
/// Used as the label set for flush telemetry (Figure 13 analyses).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FlushReason {
    /// The entry's set-bit count reached the high-water-mark.
    Hwm,
    /// Evicted under the LWM policy to make room.
    LwmEviction,
    /// Evicted by the random fallback (no LWM victim existed).
    RandomEviction,
    /// OS-requested end-of-interval flush.
    Interval,
    /// OS-requested flush on a context switch.
    ContextSwitch,
}

impl FlushReason {
    /// Stable label for metrics and trace events.
    pub fn label(self) -> &'static str {
        match self {
            FlushReason::Hwm => "hwm",
            FlushReason::LwmEviction => "lwm_eviction",
            FlushReason::RandomEviction => "random_eviction",
            FlushReason::Interval => "interval",
            FlushReason::ContextSwitch => "context_switch",
        }
    }
}

/// A memory operation the table asks the tracker to issue.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BitmapOp {
    /// Load the 32-bit bitmap word at this address.
    Load(u64),
    /// Store the given value to the bitmap word at this address.
    Store(u64, u32),
}

impl BitmapOp {
    /// The word address the operation targets.
    pub fn addr(&self) -> u64 {
        match self {
            BitmapOp::Load(a) | BitmapOp::Store(a, _) => *a,
        }
    }
}

/// Partitions drained bitmap ops into load and store address batches
/// for [`Machine::inject_load_batch`]-style issue. The caller supplies
/// the scratch buffers (cleared here) so the per-interval flush path
/// reuses its allocations.
///
/// [`Machine::inject_load_batch`]: prosper_memsim::machine::Machine::inject_load_batch
pub fn partition_ops(ops: &[BitmapOp], loads: &mut Vec<u64>, stores: &mut Vec<u64>) {
    loads.clear();
    stores.clear();
    for op in ops {
        match op {
            BitmapOp::Load(addr) => loads.push(*addr),
            BitmapOp::Store(addr, _) => stores.push(*addr),
        }
    }
}

/// Counters for Figure 13 (bitmap loads/stores vs HWM/LWM).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LookupStats {
    /// Table searches (every SOI).
    pub searches: u64,
    /// Search hits.
    pub hits: u64,
    /// Entry allocations.
    pub allocations: u64,
    /// HWM-triggered flushes.
    pub hwm_flushes: u64,
    /// LWM-policy evictions.
    pub lwm_evictions: u64,
    /// Random-fallback evictions.
    pub random_evictions: u64,
    /// Entries drained by OS end-of-interval flushes.
    pub interval_flushes: u64,
    /// Entries drained by context-switch flushes.
    pub ctx_switch_flushes: u64,
    /// Bitmap word loads issued.
    pub bitmap_loads: u64,
    /// Bitmap word stores issued.
    pub bitmap_stores: u64,
}

/// The lookup table plus the functional bitmap-word backing needed to
/// resolve loads (the real memory is modelled by the machine; here we
/// only need old values to decide whether a store-back is required).
#[derive(Clone, Debug)]
pub struct LookupTable {
    entries: Vec<Entry>,
    policy: AllocPolicy,
    hwm: u32,
    lwm: u32,
    stats: LookupStats,
    /// xorshift64 state for the random-eviction fallback
    /// (deterministic; no external RNG in the "hardware").
    rng_state: u64,
}

impl LookupTable {
    /// Builds an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero, `hwm` is zero or above 32, or
    /// `lwm > hwm`.
    pub fn new(entries: usize, hwm: u32, lwm: u32, policy: AllocPolicy) -> Self {
        assert!(entries > 0, "table needs at least one entry");
        assert!((1..=32).contains(&hwm), "HWM must be in 1..=32");
        assert!(lwm <= hwm, "LWM must not exceed HWM");
        Self {
            entries: vec![Entry::INVALID; entries],
            policy,
            hwm,
            lwm,
            stats: LookupStats::default(),
            rng_state: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> LookupStats {
        self.stats
    }

    /// Number of currently valid entries.
    pub fn valid_entries(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// The configured watermarks `(hwm, lwm)`.
    pub fn watermarks(&self) -> (u32, u32) {
        (self.hwm, self.lwm)
    }

    /// Reprograms the watermarks (the OS may retune them between
    /// intervals — see [`crate::adaptive::WatermarkTuner`]).
    ///
    /// # Panics
    ///
    /// Panics if the table still holds entries (the OS must flush
    /// first), if `hwm` is outside `1..=32`, or if `lwm > hwm`.
    pub fn set_watermarks(&mut self, hwm: u32, lwm: u32) {
        assert_eq!(
            self.valid_entries(),
            0,
            "watermarks may only change on a flushed table"
        );
        assert!((1..=32).contains(&hwm), "HWM must be in 1..=32");
        assert!(lwm <= hwm, "LWM must not exceed HWM");
        self.hwm = hwm;
        self.lwm = lwm;
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Emits the flush traffic for entry `idx` against the functional
    /// bitmap `read_word`, appending ops, and invalidates the entry.
    ///
    /// `read_word` returns the current in-memory value of a bitmap
    /// word; the caller (tracker) owns the functional bitmap.
    fn flush_entry(
        &mut self,
        idx: usize,
        read_word: &mut dyn FnMut(u64) -> u32,
        ops: &mut Vec<BitmapOp>,
    ) {
        let e = self.entries[idx];
        debug_assert!(e.valid);
        match self.policy {
            AllocPolicy::AccumulateAndApply => {
                // Convert the store request into a load of the old
                // value, merge, and store back only if changed.
                let old = read_word(e.word_addr);
                self.stats.bitmap_loads += 1;
                ops.push(BitmapOp::Load(e.word_addr));
                let merged = old | e.value;
                if merged != old {
                    self.stats.bitmap_stores += 1;
                    ops.push(BitmapOp::Store(e.word_addr, merged));
                }
            }
            AllocPolicy::LoadAndUpdate => {
                // The entry already holds the merged value; store if it
                // differs from what was loaded at allocation.
                let old = e
                    .loaded_old
                    .expect("LoadAndUpdate entries carry the old value");
                if e.value != old {
                    self.stats.bitmap_stores += 1;
                    ops.push(BitmapOp::Store(e.word_addr, e.value));
                }
            }
        }
        self.entries[idx] = Entry::INVALID;
    }

    /// Records that bit `bit` of bitmap word `word_addr` must be set.
    /// Returns the bitmap operations the tracker must issue now (HWM
    /// flushes, eviction traffic, allocation loads).
    ///
    /// # Examples
    ///
    /// ```
    /// use prosper_core::lookup::{AllocPolicy, LookupTable};
    ///
    /// let mut table = LookupTable::new(16, 24, 8, AllocPolicy::AccumulateAndApply);
    /// let mut read_word = |_addr: u64| 0u32;
    /// // Repeated bits to one word coalesce silently below the HWM.
    /// for bit in 0..8 {
    ///     assert!(table.record(0x100, bit, &mut read_word).is_empty());
    /// }
    /// assert_eq!(table.stats().hits, 7);
    /// ```
    pub fn record(
        &mut self,
        word_addr: u64,
        bit: u32,
        read_word: &mut dyn FnMut(u64) -> u32,
    ) -> Vec<BitmapOp> {
        debug_assert!(bit < 32);
        let mut ops = Vec::new();
        self.stats.searches += 1;

        // Parallel search (associative match in hardware).
        if let Some(idx) = self
            .entries
            .iter()
            .position(|e| e.valid && e.word_addr == word_addr)
        {
            self.stats.hits += 1;
            self.entries[idx].value |= 1 << bit;
            if self.entries[idx].value.count_ones() >= self.hwm {
                self.stats.hwm_flushes += 1;
                self.flush_entry(idx, read_word, &mut ops);
            }
            return ops;
        }

        // Miss: find a free slot, else evict.
        let slot = match self.entries.iter().position(|e| !e.valid) {
            Some(free) => free,
            None => {
                // LWM policy: evict an entry with fewer set bits than
                // LWM (call/return areas touched momentarily)...
                let victim = self
                    .entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.value.count_ones() < self.lwm)
                    .min_by_key(|(_, e)| e.value.count_ones())
                    .map(|(i, _)| i);
                let idx = match victim {
                    Some(i) => {
                        self.stats.lwm_evictions += 1;
                        i
                    }
                    None => {
                        // ...falling back to a random victim.
                        self.stats.random_evictions += 1;
                        (self.next_random() % self.entries.len() as u64) as usize
                    }
                };
                self.flush_entry(idx, read_word, &mut ops);
                idx
            }
        };

        self.stats.allocations += 1;
        let loaded_old = match self.policy {
            AllocPolicy::AccumulateAndApply => None,
            AllocPolicy::LoadAndUpdate => {
                let old = read_word(word_addr);
                self.stats.bitmap_loads += 1;
                ops.push(BitmapOp::Load(word_addr));
                Some(old)
            }
        };
        let base = loaded_old.unwrap_or(0);
        self.entries[slot] = Entry {
            word_addr,
            value: base | (1 << bit),
            loaded_old,
            valid: true,
        };
        // A freshly-allocated entry can already sit at the HWM when the
        // loaded old value was dense.
        if self.entries[slot].value.count_ones() >= self.hwm {
            self.stats.hwm_flushes += 1;
            self.flush_entry(slot, read_word, &mut ops);
        }
        ops
    }

    /// Flushes every valid entry for an end-of-interval commit.
    pub fn flush_all(&mut self, read_word: &mut dyn FnMut(u64) -> u32) -> Vec<BitmapOp> {
        self.flush_all_with_reason(FlushReason::Interval, read_word)
    }

    /// Flushes every valid entry, attributing the drain to `reason`
    /// ([`FlushReason::Interval`] or [`FlushReason::ContextSwitch`]).
    pub fn flush_all_with_reason(
        &mut self,
        reason: FlushReason,
        read_word: &mut dyn FnMut(u64) -> u32,
    ) -> Vec<BitmapOp> {
        debug_assert!(
            matches!(reason, FlushReason::Interval | FlushReason::ContextSwitch),
            "per-entry reasons are counted at their trigger sites"
        );
        let mut ops = Vec::new();
        for idx in 0..self.entries.len() {
            if self.entries[idx].valid {
                match reason {
                    FlushReason::ContextSwitch => self.stats.ctx_switch_flushes += 1,
                    _ => self.stats.interval_flushes += 1,
                }
                self.flush_entry(idx, read_word, &mut ops);
            }
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A functional bitmap memory for the tests.
    #[derive(Default)]
    struct Mem(HashMap<u64, u32>);

    impl Mem {
        fn reader(&mut self) -> impl FnMut(u64) -> u32 + '_ {
            |addr| *self.0.entry(addr).or_insert(0)
        }

        fn apply(&mut self, ops: &[BitmapOp]) {
            for op in ops {
                if let BitmapOp::Store(a, v) = op {
                    self.0.insert(*a, *v);
                }
            }
        }
    }

    #[test]
    fn hit_coalesces_without_traffic() {
        let mut t = LookupTable::new(4, 24, 8, AllocPolicy::AccumulateAndApply);
        let mut mem = Mem::default();
        for bit in 0..8 {
            let ops = t.record(0x100, bit, &mut mem.reader());
            assert!(ops.is_empty(), "below HWM, no traffic");
        }
        assert_eq!(t.stats().hits, 7);
        assert_eq!(t.stats().allocations, 1);
        assert_eq!(t.valid_entries(), 1);
    }

    #[test]
    fn hwm_triggers_flush() {
        let mut t = LookupTable::new(4, 4, 2, AllocPolicy::AccumulateAndApply);
        let mut mem = Mem::default();
        let mut all_ops = Vec::new();
        for bit in 0..4 {
            all_ops.extend(t.record(0x100, bit, &mut mem.reader()));
        }
        // Fourth bit reaches HWM=4: load + store.
        assert_eq!(t.stats().hwm_flushes, 1);
        assert_eq!(t.stats().bitmap_loads, 1);
        assert_eq!(t.stats().bitmap_stores, 1);
        assert_eq!(t.valid_entries(), 0, "flushed entry is freed");
        mem.apply(&all_ops);
        assert_eq!(mem.0[&0x100], 0b1111);
    }

    #[test]
    fn accumulate_and_apply_skips_redundant_store() {
        let mut t = LookupTable::new(4, 4, 2, AllocPolicy::AccumulateAndApply);
        let mut mem = Mem::default();
        mem.0.insert(0x200, 0b1111); // bits already set in memory
        let mut ops = Vec::new();
        for bit in 0..4 {
            ops.extend(t.record(0x200, bit, &mut mem.reader()));
        }
        // Flush loads the old value, merge equals old => no store.
        assert_eq!(t.stats().bitmap_loads, 1);
        assert_eq!(t.stats().bitmap_stores, 0);
        assert_eq!(
            ops.iter()
                .filter(|o| matches!(o, BitmapOp::Store(..)))
                .count(),
            0
        );
    }

    #[test]
    fn eviction_prefers_lwm_victims() {
        let mut t = LookupTable::new(2, 24, 8, AllocPolicy::AccumulateAndApply);
        let mut mem = Mem::default();
        // Entry A: dense (10 bits). Entry B: sparse (1 bit).
        for bit in 0..10 {
            t.record(0xa00, bit, &mut mem.reader());
        }
        t.record(0xb00, 0, &mut mem.reader());
        // New word C forces an eviction; B (1 bit < LWM=8) is chosen.
        t.record(0xc00, 0, &mut mem.reader());
        assert_eq!(t.stats().lwm_evictions, 1);
        assert_eq!(t.stats().random_evictions, 0);
        // A must still be resident: another hit on it, no allocation.
        let before = t.stats().allocations;
        t.record(0xa00, 10, &mut mem.reader());
        assert_eq!(t.stats().allocations, before);
    }

    #[test]
    fn random_eviction_when_no_lwm_victim() {
        let mut t = LookupTable::new(2, 24, 2, AllocPolicy::AccumulateAndApply);
        let mut mem = Mem::default();
        // Both entries dense (>= LWM bits).
        for bit in 0..6 {
            t.record(0xa00, bit, &mut mem.reader());
            t.record(0xb00, bit, &mut mem.reader());
        }
        t.record(0xc00, 0, &mut mem.reader());
        assert_eq!(t.stats().random_evictions, 1);
    }

    #[test]
    fn load_and_update_loads_at_allocation() {
        let mut t = LookupTable::new(4, 24, 8, AllocPolicy::LoadAndUpdate);
        let mut mem = Mem::default();
        mem.0.insert(0x300, 0b1);
        let ops = t.record(0x300, 5, &mut mem.reader());
        assert_eq!(ops, vec![BitmapOp::Load(0x300)]);
        assert_eq!(t.stats().bitmap_loads, 1);
        // Flush: value (old | new bit) differs from loaded old => store,
        // but no second load.
        let ops = t.flush_all(&mut mem.reader());
        assert_eq!(ops, vec![BitmapOp::Store(0x300, 0b10_0001)]);
        assert_eq!(t.stats().bitmap_loads, 1);
    }

    #[test]
    fn flush_all_empties_table_and_merges() {
        let mut t = LookupTable::new(8, 24, 8, AllocPolicy::AccumulateAndApply);
        let mut mem = Mem::default();
        for w in 0..5u64 {
            for bit in 0..3 {
                t.record(0x1000 + w * 4, bit, &mut mem.reader());
            }
        }
        assert_eq!(t.valid_entries(), 5);
        let ops = t.flush_all(&mut mem.reader());
        mem.apply(&ops);
        assert_eq!(t.valid_entries(), 0);
        for w in 0..5u64 {
            assert_eq!(mem.0[&(0x1000 + w * 4)], 0b111);
        }
    }

    #[test]
    fn flush_reasons_attributed_per_drained_entry() {
        let mut t = LookupTable::new(8, 24, 8, AllocPolicy::AccumulateAndApply);
        let mut mem = Mem::default();
        for w in 0..3u64 {
            t.record(0x1000 + w * 4, 0, &mut mem.reader());
        }
        t.flush_all(&mut mem.reader());
        assert_eq!(t.stats().interval_flushes, 3);
        assert_eq!(t.stats().ctx_switch_flushes, 0);
        for w in 0..2u64 {
            t.record(0x2000 + w * 4, 0, &mut mem.reader());
        }
        t.flush_all_with_reason(FlushReason::ContextSwitch, &mut mem.reader());
        assert_eq!(t.stats().interval_flushes, 3, "unchanged");
        assert_eq!(t.stats().ctx_switch_flushes, 2);
        // An empty table drains nothing and counts nothing.
        t.flush_all(&mut mem.reader());
        assert_eq!(t.stats().interval_flushes, 3);
    }

    #[test]
    fn flush_reason_labels_are_stable() {
        assert_eq!(FlushReason::Hwm.label(), "hwm");
        assert_eq!(FlushReason::LwmEviction.label(), "lwm_eviction");
        assert_eq!(FlushReason::RandomEviction.label(), "random_eviction");
        assert_eq!(FlushReason::Interval.label(), "interval");
        assert_eq!(FlushReason::ContextSwitch.label(), "context_switch");
    }

    #[test]
    fn deterministic_random_fallback() {
        let run = || {
            let mut t = LookupTable::new(2, 24, 1, AllocPolicy::AccumulateAndApply);
            let mut mem = Mem::default();
            for i in 0..50u64 {
                t.record(i * 4, (i % 32) as u32, &mut mem.reader());
            }
            t.stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "LWM must not exceed HWM")]
    fn invalid_watermarks_rejected() {
        LookupTable::new(4, 8, 9, AllocPolicy::AccumulateAndApply);
    }

    #[test]
    #[should_panic(expected = "HWM must be in 1..=32")]
    fn hwm_bounds_checked() {
        LookupTable::new(4, 33, 8, AllocPolicy::AccumulateAndApply);
    }
}
