//! Differential property tests: the staged-delta-spine commit path
//! against the eager-apply reference.
//!
//! Two [`PersistentProcess`] instances — one spine-configured, one
//! eager — are driven through identical random store/commit
//! sequences. After every clean commit the spine's *effective*
//! durable bytes (persistent image with the unmerged spine folded
//! over it, newest-wins) must be byte-identical to the eager
//! reference's persistent image. A final fault-injected commit then
//! crashes the spine process at an arbitrary crash window — including
//! batch-seal, mid-merge, and merge-retire sites — and recovery must
//! land on exactly the state eager apply reaches for the same durable
//! prefix of commits: same sequence, same bytes, spine fully folded.

use proptest::prelude::*;
use prosper_core::bitmap::CopyRun;
use prosper_core::recovery::PersistentProcess;
use prosper_core::SpineConfig;
use prosper_gemos::crash::{CrashInjected, CrashSite, FaultInjector};
use prosper_memsim::addr::{VirtAddr, VirtRange};
use std::collections::BTreeMap;

const STACK_BYTES: u64 = 0x1000;

fn stack_range(tid: u32) -> VirtRange {
    let start = 0x7000_0000 + u64::from(tid) * 0x10_0000;
    VirtRange::new(VirtAddr::new(start), VirtAddr::new(start + STACK_BYTES))
}

fn ranges(threads: u32) -> Vec<VirtRange> {
    (0..threads).map(stack_range).collect()
}

fn full_runs(threads: u32) -> BTreeMap<u32, Vec<CopyRun>> {
    (0..threads)
        .map(|tid| {
            let r = stack_range(tid);
            (
                tid,
                vec![CopyRun {
                    start: r.start(),
                    len: r.len(),
                }],
            )
        })
        .collect()
}

#[derive(Clone, Debug)]
enum Op {
    /// A store of `len` patterned bytes at `offset` into `tid`'s stack.
    Store {
        tid: u32,
        offset: u64,
        len: usize,
        seed: u8,
    },
    /// A whole-process commit of every thread's dirty bounding box.
    Commit,
}

fn arb_op(threads: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (
            0..threads,
            0..STACK_BYTES - 16,
            1usize..16,
            any::<u8>(),
        )
            .prop_map(|(tid, offset, len, seed)| Op::Store { tid, offset, len, seed }),
        1 => Just(Op::Commit),
    ]
}

fn arb_spine_cfg() -> impl Strategy<Value = SpineConfig> {
    prop_oneof![
        Just(SpineConfig::merge_always()),
        Just(SpineConfig::default()),
        Just(SpineConfig::lazy(3)),
        Just(SpineConfig::lazy(64)),
    ]
}

/// Drives the spine process and the eager reference in lock-step.
struct Differential {
    spine: PersistentProcess,
    eager: PersistentProcess,
    threads: u32,
    /// Per-thread dirty bounding box `(lo, hi)` since the last commit.
    dirty: BTreeMap<u32, (u64, u64)>,
}

impl Differential {
    fn new(threads: u32, cfg: SpineConfig) -> Self {
        let mut d = Differential {
            spine: PersistentProcess::new_with_spine(&ranges(threads), cfg),
            eager: PersistentProcess::new(&ranges(threads)),
            threads,
            dirty: BTreeMap::new(),
        };
        // A first full checkpoint so recovery always has a valid
        // sealed state to land on.
        let runs = full_runs(threads);
        d.spine.commit_attributed(&runs, 1, None, None);
        d.eager.commit_attributed(&runs, 1, None, None);
        d
    }

    fn store(&mut self, tid: u32, offset: u64, len: usize, seed: u8) {
        let addr = VirtAddr::new(stack_range(tid).start().raw() + offset);
        let bytes: Vec<u8> = (0..len as u64)
            .map(|i| seed.wrapping_add(i as u8))
            .collect();
        self.spine.record_store(tid, addr, &bytes);
        self.eager.record_store(tid, addr, &bytes);
        let lo = addr.raw();
        let hi = lo + len as u64;
        self.dirty
            .entry(tid)
            .and_modify(|(dlo, dhi)| {
                *dlo = (*dlo).min(lo);
                *dhi = (*dhi).max(hi);
            })
            .or_insert((lo, hi));
    }

    /// Copy runs covering every dirty bounding box, with an (empty)
    /// entry for every registered thread, clearing the dirty state.
    fn take_runs(&mut self) -> BTreeMap<u32, Vec<CopyRun>> {
        let dirty = std::mem::take(&mut self.dirty);
        (0..self.threads)
            .map(|tid| {
                let runs = dirty
                    .get(&tid)
                    .map(|&(lo, hi)| {
                        vec![CopyRun {
                            start: VirtAddr::new(lo),
                            len: hi - lo,
                        }]
                    })
                    .unwrap_or_default();
                (tid, runs)
            })
            .collect()
    }

    fn commit(&mut self) {
        let runs = self.take_runs();
        self.spine.commit_attributed(&runs, 1, None, None);
        self.eager.commit_attributed(&runs, 1, None, None);
    }

    /// Asserts the spine's effective durable bytes equal the eager
    /// reference's persistent image, thread by thread.
    fn assert_durably_identical(&self) {
        assert_eq!(
            self.spine.committed_sequence(),
            self.eager.committed_sequence(),
            "committed sequences diverged"
        );
        for tid in 0..self.threads {
            let r = stack_range(tid);
            let effective = self
                .spine
                .stack(tid)
                .read_effective(r.start(), r.len() as usize);
            let reference = self
                .eager
                .stack(tid)
                .persistent()
                .read(r.start(), r.len() as usize);
            assert_eq!(
                effective,
                reference,
                "tid {} durable bytes diverged at sequence {}",
                tid,
                self.spine.committed_sequence()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Without crashes: after every commit, the spine's effective
    /// durable state is byte-identical to eager apply, whatever the
    /// merge policy did (or deferred) in between.
    #[test]
    fn spine_fold_matches_eager_apply_at_every_commit(
        threads in 1u32..=3,
        cfg in arb_spine_cfg(),
        ops in prop::collection::vec(arb_op(3), 1..40),
    ) {
        let mut d = Differential::new(threads, cfg);
        d.assert_durably_identical();
        for op in &ops {
            match *op {
                Op::Store { tid, offset, len, seed } => {
                    d.store(tid % threads, offset, len, seed);
                }
                Op::Commit => {
                    d.commit();
                    d.assert_durably_identical();
                }
            }
        }
        d.commit();
        d.assert_durably_identical();
        // Folding whatever is left on the spine is a no-op on the
        // effective bytes.
        d.spine.merge_all_spines();
        prop_assert_eq!(d.spine.spine_batches(), 0);
        d.assert_durably_identical();
    }

    /// With a crash: the final commit is fault-injected at an
    /// arbitrary crash window (batch-seal, mid-merge, and merge-retire
    /// windows included). Spine recovery must land byte-identical to
    /// the eager reference applied over the same durable prefix:
    /// if the seal made it, both recover the new sequence; if not,
    /// both stand on the previous checkpoint.
    #[test]
    fn spine_recovery_matches_eager_apply_across_crash_points(
        threads in 1u32..=3,
        cfg in arb_spine_cfg(),
        ops in prop::collection::vec(arb_op(3), 1..30),
        crash_index in 0u64..64,
    ) {
        let mut d = Differential::new(threads, cfg);
        for op in &ops {
            match *op {
                Op::Store { tid, offset, len, seed } => {
                    d.store(tid % threads, offset, len, seed);
                }
                Op::Commit => d.commit(),
            }
        }
        // One more dirtying store so the faulted commit stages work.
        d.store(0, 8, 8, 0xA5);
        let before = d.spine.committed_sequence();
        let runs = d.take_runs();
        let mut inj = FaultInjector::at_index(crash_index);
        let crashed = d.spine.commit_with_faults(&runs, &mut inj).is_err();
        d.spine.crash();
        let recovered = d
            .spine
            .recover()
            .expect("initial checkpoint guarantees a recovery point");
        prop_assert!(
            recovered.sequence == before || recovered.sequence == before + 1,
            "recovered sequence {} outside [{}, {}]",
            recovered.sequence, before, before + 1
        );
        prop_assert!(
            crashed || recovered.sequence == before + 1,
            "a completed commit must be durable"
        );
        // Mirror the durable prefix on the eager reference.
        if recovered.sequence == before + 1 {
            d.eager.commit_attributed(&runs, 1, None, None);
        }
        d.eager.crash();
        let ref_recovered = d.eager.recover().expect("reference recovers");
        prop_assert_eq!(recovered.sequence, ref_recovered.sequence);
        // Recovery folded the whole spine; both sides verify coherent
        // and agree byte-for-byte.
        prop_assert_eq!(d.spine.spine_batches(), 0);
        prop_assert!(d.spine.verify_coherent().is_ok());
        prop_assert!(d.eager.verify_coherent().is_ok());
        d.assert_durably_identical();
        for tid in 0..threads {
            let r = stack_range(tid);
            prop_assert!(
                d.spine
                    .stack(tid)
                    .volatile()
                    .matches(d.spine.stack(tid).persistent(), r),
                "tid {tid}: recovery must rebuild volatile from persistent"
            );
        }
    }
}

/// Deterministic exhaustive sweep: every crash index of a fixed
/// overlap-heavy scenario under the merge-always policy, checked
/// against the eager reference. Unlike the random property above this
/// guarantees the batch-seal, mid-merge, and merge-retire windows are
/// each actually hit.
#[test]
fn exhaustive_crash_sweep_covers_spine_sites() {
    let threads = 2u32;
    let mut hit_batch_seal = false;
    let mut hit_mid_merge = false;
    let mut hit_merge_retire = false;
    for index in 0u64.. {
        let mut d = Differential::new(threads, SpineConfig::merge_always());
        // Two overlapping commits so the spine holds real batches at
        // the faulted commit, then a third that triggers the merge.
        for round in 0..2u8 {
            d.store(0, 0x10, 64, round);
            d.store(1, 0x40, 32, round.wrapping_add(7));
            d.commit();
        }
        d.store(0, 0x20, 48, 0xC3);
        d.store(1, 0x48, 16, 0x5A);
        let before = d.spine.committed_sequence();
        let runs = d.take_runs();
        let mut inj = FaultInjector::at_index(index);
        let outcome = d.spine.commit_with_faults(&runs, &mut inj);
        match outcome {
            Err(CrashInjected { site }) => match site {
                CrashSite::BatchSeal { .. } => hit_batch_seal = true,
                CrashSite::MidMerge { .. } => hit_mid_merge = true,
                CrashSite::MergeRetire { .. } => hit_merge_retire = true,
                _ => {}
            },
            // The index walked off the end of the schedule: the
            // commit completed untouched and the sweep is done.
            Ok(()) => break,
        }
        d.spine.crash();
        let recovered = d.spine.recover().expect("sweep scenario recovers");
        if recovered.sequence == before + 1 {
            d.eager.commit_attributed(&runs, 1, None, None);
        }
        d.eager.crash();
        let reference = d.eager.recover().expect("reference recovers");
        assert_eq!(
            recovered.sequence, reference.sequence,
            "index {index}: recovery sequence diverged"
        );
        assert_eq!(
            d.spine.spine_batches(),
            0,
            "index {index}: spine not folded"
        );
        d.spine.verify_coherent().expect("spine coherent");
        for tid in 0..threads {
            let r = stack_range(tid);
            assert_eq!(
                d.spine
                    .stack(tid)
                    .persistent()
                    .read(r.start(), r.len() as usize),
                d.eager
                    .stack(tid)
                    .persistent()
                    .read(r.start(), r.len() as usize),
                "index {index}, tid {tid}: recovered bytes diverged"
            );
        }
    }
    assert!(hit_batch_seal, "sweep never crashed at a batch-seal site");
    assert!(hit_mid_merge, "sweep never crashed mid-merge");
    assert!(hit_merge_retire, "sweep never crashed at merge-retire");
}
