//! Differential property tests: the hierarchical paged [`DirtyBitmap`]
//! against the pre-hierarchical [`SparseDirtyBitmap`] reference.
//!
//! Both implementations are driven through identical random
//! write/merge/inspect/clear sequences and must agree at every step on
//! the produced copy runs, the `words_read`/`words_cleared`/
//! `pages_probed` accounting, the running popcount, and the non-zero
//! word count. Windows are drawn to hit the awkward cases: empty,
//! word-interior, straddling 64-bit group seams and page seams, and
//! far past the dirtied span.

use proptest::prelude::*;
use prosper_core::bitmap::reference::SparseDirtyBitmap;
use prosper_core::bitmap::{BitmapGeometry, DirtyBitmap, PAGE_SPAN_BYTES};
use prosper_memsim::addr::{VirtAddr, VirtRange};

const RANGE_START: u64 = 0x7000_0000;
const BITMAP_BASE: u64 = 0x1000_0000;
/// Words the random ops may touch: a bit over two bitmap pages, so
/// sequences regularly cross page seams.
const WORD_SPAN: u64 = 2 * PAGE_SPAN_BYTES / 4 + 96;

fn geom(granularity: u64) -> BitmapGeometry {
    BitmapGeometry {
        range_start: VirtAddr::new(RANGE_START),
        bitmap_base: VirtAddr::new(BITMAP_BASE),
        granularity,
    }
}

#[derive(Clone, Debug)]
enum Op {
    /// `write_word` at word index with the given value (0 clears).
    Write(u64, u32),
    /// `merge_word` at word index.
    Merge(u64, u32),
    /// `inspect_and_clear` over a window of tracked addresses,
    /// expressed as (start granule, granule count).
    Inspect(u64, u64),
}

fn arb_value() -> impl Strategy<Value = u32> {
    prop_oneof![
        3 => any::<u32>(),
        1 => Just(0u32),
        1 => Just(u32::MAX),
        1 => Just(1u32),
        1 => Just(1u32 << 31),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => ((0..WORD_SPAN), arb_value()).prop_map(|(w, v)| Op::Write(w, v)),
        4 => ((0..WORD_SPAN), arb_value()).prop_map(|(w, v)| Op::Merge(w, v)),
        2 => ((0..WORD_SPAN * 32), (0u64..WORD_SPAN * 48))
            .prop_map(|(s, n)| Op::Inspect(s, n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary op sequences leave both bitmaps in identical states
    /// and produce identical inspection results throughout.
    #[test]
    fn hierarchical_matches_sparse_reference(
        ops in prop::collection::vec(arb_op(), 1..120),
        granularity in prop_oneof![Just(8u64), Just(16), Just(64), Just(128)],
    ) {
        let g = geom(granularity);
        let mut hier = DirtyBitmap::new();
        let mut sparse = SparseDirtyBitmap::new();
        for op in &ops {
            match op {
                Op::Write(word, value) => {
                    let addr = BITMAP_BASE + word * 4;
                    hier.write_word(addr, *value);
                    sparse.write_word(addr, *value);
                }
                Op::Merge(word, value) => {
                    let addr = BITMAP_BASE + word * 4;
                    hier.merge_word(addr, *value);
                    sparse.merge_word(addr, *value);
                }
                Op::Inspect(start_granule, granules) => {
                    let lo = RANGE_START + start_granule * granularity;
                    let hi = lo + granules * granularity;
                    let win = VirtRange::new(VirtAddr::new(lo), VirtAddr::new(hi));
                    let (hr, hs) = hier.inspect_and_clear(&g, win);
                    let (sr, ss) = sparse.inspect_and_clear(&g, win);
                    prop_assert_eq!(&hr, &sr, "runs diverged over {:?}", win);
                    prop_assert_eq!(hs, ss, "stats diverged over {:?}", win);
                    prop_assert_eq!(hs.words_read, hs.words_cleared);
                }
            }
            prop_assert_eq!(hier.total_set_bits(), sparse.total_set_bits());
            prop_assert_eq!(hier.nonzero_words(), sparse.nonzero_words());
        }
        // Drain everything left and compare the final sweep too.
        let all = VirtRange::new(
            VirtAddr::new(RANGE_START),
            VirtAddr::new(RANGE_START + WORD_SPAN * 32 * granularity),
        );
        let (hr, hs) = hier.inspect_and_clear(&g, all);
        let (sr, ss) = sparse.inspect_and_clear(&g, all);
        prop_assert_eq!(hr, sr);
        prop_assert_eq!(hs, ss);
        prop_assert_eq!(hier.total_set_bits(), 0);
        prop_assert_eq!(sparse.total_set_bits(), 0);
        prop_assert_eq!(hier.nonzero_words(), 0);
    }

    /// Reads after random updates agree word-for-word (the tracker's
    /// flush path reads words back through the bitmap).
    #[test]
    fn word_reads_match(
        writes in prop::collection::vec(((0..WORD_SPAN), any::<u32>()), 1..80),
    ) {
        let mut hier = DirtyBitmap::new();
        let mut sparse = SparseDirtyBitmap::new();
        for (word, value) in &writes {
            let addr = BITMAP_BASE + word * 4;
            if value % 3 == 0 {
                hier.write_word(addr, *value);
                sparse.write_word(addr, *value);
            } else {
                hier.merge_word(addr, *value);
                sparse.merge_word(addr, *value);
            }
        }
        for word in 0..WORD_SPAN {
            let addr = BITMAP_BASE + word * 4;
            prop_assert_eq!(hier.read_word(addr), sparse.read_word(addr));
        }
    }
}
