//! Conservation tests for the causal stall-attribution layer.
//!
//! The load-bearing invariant: for every thread, the cause-tagged
//! stall segments must exactly tile the measured stall windows —
//! attributed ns sum to measured stall ns with no gaps and no
//! overlaps. Exact (not approximate) under the deterministic virtual
//! clock, across the micro-workload, the parallel commit path at
//! 1/2/4 workers, and a crash+recover run.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use prosper_core::bitmap::CopyRun;
use prosper_core::faultinject::{
    enumerate_crash_sites, run_attributed, run_crash_attributed, CrashMatrixConfig,
};
use prosper_core::recovery::{CommitProbe, CommitProbeEvent, PersistentProcess};
use prosper_core::ProsperMechanism;
use prosper_gemos::checkpoint::CheckpointManager;
use prosper_memsim::addr::{VirtAddr, VirtRange};
use prosper_memsim::config::MachineConfig;
use prosper_memsim::machine::Machine;
use prosper_telemetry::{AttributionSnapshot, StallAccountant, StallCause};
use prosper_trace::micro::{MicroBench, MicroSpec};

fn small() -> CrashMatrixConfig {
    CrashMatrixConfig {
        threads: 2,
        intervals: 2,
        stores_per_interval: 6,
        ..Default::default()
    }
}

#[test]
fn clean_commit_runs_conserve_at_every_worker_count() {
    for workers in [1usize, 2, 4] {
        let run = run_attributed(&small(), workers);
        run.snapshot
            .verify_conservation()
            .unwrap_or_else(|e| panic!("workers={workers}: {e}"));
        let per = run.snapshot.per_thread();
        assert_eq!(per.len(), 2, "both threads stalled");
        for (tid, t) in &per {
            assert_eq!(
                t.attributed_ns, t.window_ns,
                "thread {tid}: attributed must sum to measured stall"
            );
            assert!(t.attributed_ns > 0, "thread {tid} never stalled?");
            assert!(
                t.window_ns <= run.total_cycles,
                "thread {tid}: stall must fit inside the run's wall time"
            );
        }
        // Every commit phase and tracker quiescence shows up.
        for cause in [
            StallCause::Stage,
            StallCause::Seal,
            StallCause::Apply,
            StallCause::Quiesce,
        ] {
            assert!(
                run.snapshot.cause_total_ns(cause) > 0,
                "workers={workers}: no {cause:?} time attributed"
            );
        }
        assert!(run.total_cycles > 0);
    }
}

#[test]
fn attributed_runs_are_deterministic_and_worker_sensitive() {
    let a = run_attributed(&small(), 2);
    let b = run_attributed(&small(), 2);
    assert_eq!(a.snapshot, b.snapshot, "same config ⇒ identical ledger");
    assert_eq!(a.total_cycles, b.total_cycles);

    // The cost model is worker-count sensitive: more workers shorten
    // the parallel phases (stage/apply), never the serial seal.
    let w1 = run_attributed(&small(), 1);
    let w4 = run_attributed(&small(), 4);
    assert_eq!(
        w1.snapshot.cause_total_ns(StallCause::Seal),
        w4.snapshot.cause_total_ns(StallCause::Seal),
        "seal is the serial point — worker count must not change it"
    );
    assert!(
        w4.snapshot.cause_total_ns(StallCause::Stage)
            < w1.snapshot.cause_total_ns(StallCause::Stage),
        "stage time must shrink with more workers"
    );
}

#[test]
fn crash_and_recover_runs_conserve_with_recovery_attributed() {
    let cfg = small();
    let sites = enumerate_crash_sites(&cfg);
    assert!(!sites.is_empty());
    // Sweep a spread of crash points, always including the last one
    // (deep in the final commit, post-seal ⇒ redo recovery).
    let picks = [0, sites.len() as u64 / 2, sites.len() as u64 - 1];
    let mut saw_recovery = false;
    for &index in &picks {
        let (outcome, run) =
            run_crash_attributed(&cfg, index).unwrap_or_else(|e| panic!("crash at {index}: {e}"));
        assert!(outcome.fired.is_some(), "index {index} in range must fire");
        run.snapshot
            .verify_conservation()
            .unwrap_or_else(|e| panic!("crash at {index}: {e}"));
        if run.snapshot.cause_total_ns(StallCause::Recovery) > 0 {
            saw_recovery = true;
        }
    }
    assert!(
        saw_recovery,
        "at least one crash point must attribute recovery replay time"
    );
}

#[test]
fn torn_commit_ledger_closes_at_the_crash_instant() {
    // Crash at every site of a tiny run: whatever partial commit the
    // crash tears, the ledger must still conserve exactly — the
    // scribe closes the open segment and window at the crash instant.
    let cfg = CrashMatrixConfig {
        threads: 1,
        intervals: 1,
        stores_per_interval: 4,
        ..Default::default()
    };
    let total = enumerate_crash_sites(&cfg).len() as u64;
    for index in 0..total {
        let (_, run) =
            run_crash_attributed(&cfg, index).unwrap_or_else(|e| panic!("crash at {index}: {e}"));
        run.snapshot
            .verify_conservation()
            .unwrap_or_else(|e| panic!("crash at {index}: {e}"));
    }
}

#[test]
fn micro_workload_checkpoints_conserve() {
    let acct = Arc::new(StallAccountant::new_virtual());
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mgr = CheckpointManager::new(&mut machine, 200_000);
    let mut mech = ProsperMechanism::with_defaults();
    mech.set_attribution(Arc::clone(&acct), 0);
    let bench = MicroBench::new(MicroSpec::Quicksort { elements: 512 }, 0xB0B);
    let res = mgr.run_stack_only(bench, &mut mech, 4);
    assert!(res.total_cycles > 0);

    let snap = acct.snapshot();
    snap.verify_conservation()
        .expect("micro workload conserves");
    let per = snap.per_thread();
    let t0 = &per[&0];
    assert_eq!(t0.windows, 4, "one stall window per interval");
    assert_eq!(t0.attributed_ns, t0.window_ns);
    for cause in [StallCause::Quiesce, StallCause::Inspect, StallCause::Stage] {
        assert!(
            snap.cause_total_ns(cause) > 0,
            "no {cause:?} time in the micro run"
        );
    }
    // The stall ledger is bounded by the run: the foreground thread
    // cannot stall longer than the machine ran.
    assert!(t0.window_ns <= res.total_cycles);

    // Determinism: an identical second run yields an identical ledger.
    let acct2 = Arc::new(StallAccountant::new_virtual());
    let mut machine2 = Machine::new(MachineConfig::setup_i());
    let mut mgr2 = CheckpointManager::new(&mut machine2, 200_000);
    let mut mech2 = ProsperMechanism::with_defaults();
    mech2.set_attribution(Arc::clone(&acct2), 0);
    let bench2 = MicroBench::new(MicroSpec::Quicksort { elements: 512 }, 0xB0B);
    mgr2.run_stack_only(bench2, &mut mech2, 4);
    assert_eq!(snap, acct2.snapshot());
}

#[test]
fn probe_event_stream_is_the_causal_witness_for_the_ledger() {
    // One commit run, two observers: the PR-4 `CommitProbe` (the
    // protocol-order witness) and the stall accountant (the ledger).
    // They must tell the same causal story — same commit sequences,
    // same per-thread phase structure, and segment boundaries ordered
    // the way the probe saw the phases happen (stage → seal → apply,
    // contiguously).
    const THREADS: u32 = 3;
    let ranges: Vec<VirtRange> = (0..u64::from(THREADS))
        .map(|i| {
            let top = 0x7000_0000 + (i + 1) * 0x10_0000;
            VirtRange::new(VirtAddr::new(top - 0x8000), VirtAddr::new(top))
        })
        .collect();
    let mut p = PersistentProcess::new(&ranges);
    let runs: BTreeMap<u32, Vec<CopyRun>> = (0..THREADS)
        .map(|tid| {
            let r = p.stack(tid).range();
            (
                tid,
                vec![CopyRun {
                    start: r.start(),
                    len: 256,
                }],
            )
        })
        .collect();

    let probe = CommitProbe::new();
    let acct = StallAccountant::new_virtual();
    for _ in 0..3 {
        p.commit_attributed(&runs, 2, Some(&probe), Some(&acct));
    }
    let snap = acct.snapshot();
    snap.verify_conservation().expect("witnessed run conserves");

    // Both observers agree on which commit sequences happened.
    let probe_seqs: BTreeSet<u64> = probe
        .events()
        .iter()
        .filter_map(|e| match *e {
            CommitProbeEvent::Seal { sequence } => Some(sequence),
            _ => None,
        })
        .collect();
    let ledger_seqs: BTreeSet<u64> = snap.segments.iter().map(|s| s.sequence).collect();
    assert_eq!(probe_seqs.len(), 3, "three commits sealed");
    assert_eq!(
        probe_seqs, ledger_seqs,
        "probe and ledger must witness the same commit sequences"
    );

    // Per sequence the probe saw every thread stage and apply; the
    // ledger must charge every thread one segment per commit phase.
    for &seq in &probe_seqs {
        let staged: BTreeSet<u32> = probe
            .events()
            .iter()
            .filter_map(|e| match *e {
                CommitProbeEvent::StageThread { tid, sequence } if sequence == seq => Some(tid),
                _ => None,
            })
            .collect();
        assert_eq!(staged.len() as u32, THREADS, "seq {seq}: all threads stage");
        for tid in staged {
            let phases: Vec<&prosper_telemetry::StallSegment> = snap
                .segments
                .iter()
                .filter(|s| s.tid == tid && s.sequence == seq)
                .collect();
            let causes: Vec<StallCause> = phases.iter().map(|s| s.cause).collect();
            assert_eq!(
                causes,
                vec![StallCause::Stage, StallCause::Seal, StallCause::Apply],
                "seq {seq} tid {tid}: ledger phases must match the probe's \
                 stage → seal → apply order"
            );
            // Contiguous boundaries: the same telescoping instants the
            // probe's ordering implies.
            assert_eq!(phases[0].end_ns, phases[1].start_ns);
            assert_eq!(phases[1].end_ns, phases[2].start_ns);
        }
    }
}

#[test]
fn snapshot_survives_serde_roundtrip() {
    let run = run_attributed(&small(), 2);
    let json = serde_json::to_string(&run.snapshot).expect("serialize");
    let back: AttributionSnapshot = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(run.snapshot, back);
    back.verify_conservation().expect("roundtrip conserves");
}
