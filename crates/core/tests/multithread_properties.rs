//! Property tests: per-thread tracking isolation under arbitrary
//! schedule interleavings.

use proptest::prelude::*;
use prosper_core::multithread::MultiThreadTracker;
use prosper_core::tracker::TrackerConfig;
use prosper_memsim::addr::{VirtAddr, VirtRange};
use prosper_memsim::config::MachineConfig;
use prosper_memsim::machine::Machine;
use std::collections::BTreeSet;

const THREADS: u32 = 3;
const STACK_BYTES: u64 = 0x10_000;

fn stack_range(tid: u32) -> VirtRange {
    let top = 0x7000_0000 + u64::from(tid + 1) * 0x100_0000;
    VirtRange::new(VirtAddr::new(top - STACK_BYTES), VirtAddr::new(top))
}

fn bitmap_base(tid: u32) -> VirtAddr {
    VirtAddr::new(0x1000_0000 + u64::from(tid) * 0x10_0000)
}

#[derive(Clone, Debug)]
enum Op {
    /// Schedule thread `tid`.
    Schedule(u32),
    /// Store at `offset` in the *current* thread's stack.
    OwnStore(u64),
    /// Store into thread `victim`'s stack (cross-stack).
    CrossStore(u32, u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (0..THREADS).prop_map(Op::Schedule),
        8 => (0u64..STACK_BYTES / 8).prop_map(|s| Op::OwnStore(s * 8)),
        1 => ((0..THREADS), (0u64..STACK_BYTES / 8))
            .prop_map(|(v, s)| Op::CrossStore(v, s * 8)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the interleaving: every own-stack store is tracked,
    /// every cross-stack store faults (never silently tracked against
    /// the wrong bitmap), and the flushed bitmap reflects exactly the
    /// dirtied granules.
    #[test]
    fn isolation_under_arbitrary_schedules(ops in prop::collection::vec(arb_op(), 1..200)) {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mt = MultiThreadTracker::new(TrackerConfig::default());
        for tid in 0..THREADS {
            mt.register_thread(tid, stack_range(tid), bitmap_base(tid));
        }
        mt.schedule(&mut machine, 0);

        let mut expected_granules: BTreeSet<(u32, u64)> = BTreeSet::new();
        let mut expected_faults = 0u64;

        for op in &ops {
            match op {
                Op::Schedule(tid) => {
                    mt.schedule(&mut machine, *tid);
                }
                Op::OwnStore(offset) => {
                    let tid = mt.current_thread().unwrap();
                    let addr = stack_range(tid).start() + *offset;
                    mt.observe_store(&mut machine, addr, 8);
                    expected_granules.insert((tid, *offset / 8));
                }
                Op::CrossStore(victim, offset) => {
                    let current = mt.current_thread().unwrap();
                    if *victim == current {
                        let addr = stack_range(current).start() + *offset;
                        mt.observe_store(&mut machine, addr, 8);
                        expected_granules.insert((current, *offset / 8));
                    } else {
                        let addr = stack_range(*victim).start() + *offset;
                        mt.observe_store(&mut machine, addr, 8);
                        expected_faults += 1;
                    }
                }
            }
        }
        prop_assert_eq!(mt.cross_stack_faults, expected_faults);

        // Flush and check the bitmap: each thread's granules appear in
        // its own bitmap area, and the total equals the expected set.
        mt.tracker_mut().flush();
        let total_bits = mt.tracker().bitmap().total_set_bits();
        prop_assert_eq!(total_bits, expected_granules.len() as u64);
        for &(tid, granule) in &expected_granules {
            let word_addr = bitmap_base(tid).raw() + (granule / 32) * 4;
            let bit = (granule % 32) as u32;
            prop_assert!(
                mt.tracker().bitmap().read_word(word_addr) & (1 << bit) != 0,
                "granule {granule} of thread {tid} missing from its bitmap"
            );
        }
    }
}
