//! Property-based tests of the cache and hierarchy invariants.

use proptest::prelude::*;
use prosper_memsim::addr::{PhysAddr, VirtAddr};
use prosper_memsim::cache::{AccessKind, Cache};
use prosper_memsim::config::{CacheConfig, MachineConfig};
use prosper_memsim::hierarchy::Hierarchy;
use prosper_memsim::machine::Machine;
use std::collections::HashSet;

fn tiny_cache() -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 1024,
        ways: 2,
        latency: 1,
        mshrs: 4,
        line_bytes: 64,
    })
}

proptest! {
    /// Whatever the access sequence, an access immediately repeated
    /// always hits, and the valid-line count never exceeds capacity.
    #[test]
    fn repeat_access_hits_and_capacity_bounded(
        addrs in prop::collection::vec(0u64..1 << 16, 1..200),
        writes in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut c = tiny_cache();
        for (a, w) in addrs.iter().zip(writes.iter().cycle()) {
            let kind = if *w { AccessKind::Write } else { AccessKind::Read };
            c.access(PhysAddr::new(*a), kind);
            let again = c.access(PhysAddr::new(*a), AccessKind::Read);
            prop_assert!(again.hit, "immediate re-access must hit");
            prop_assert!(c.valid_lines() <= 16, "1KiB/64B = 16 lines max");
        }
    }

    /// A dirty line evicted from the cache is reported exactly once as
    /// a write-back, with its original line address.
    #[test]
    fn dirty_writebacks_conserve_lines(
        addrs in prop::collection::vec(0u64..1 << 14, 1..300),
    ) {
        let mut c = tiny_cache();
        let mut dirty_somewhere: HashSet<u64> = HashSet::new();
        for a in &addrs {
            let line = PhysAddr::new(*a).cache_line().raw();
            let res = c.access(PhysAddr::new(*a), AccessKind::Write);
            dirty_somewhere.insert(line);
            if let Some(wb) = res.writeback {
                // A write-back must be a line we dirtied earlier...
                prop_assert!(dirty_somewhere.contains(&wb.raw()));
                // ...and is aligned.
                prop_assert!(wb.raw() % 64 == 0);
            }
        }
        // Flushing everything accounts for all remaining dirty lines.
        let flushed = c.flush_all();
        prop_assert!(flushed as usize <= dirty_somewhere.len());
    }

    /// The hierarchy serves from exactly one level and its latency is
    /// the sum of the levels on the path.
    #[test]
    fn hierarchy_latency_is_path_sum(addrs in prop::collection::vec(0u64..1 << 20, 1..200)) {
        let cfg = MachineConfig::setup_i();
        let mut h = Hierarchy::new(&cfg);
        for a in &addrs {
            let r = h.access(PhysAddr::new(*a), AccessKind::Read);
            use prosper_memsim::hierarchy::ServedBy;
            let expected = match r.served_by {
                ServedBy::L1d => 3,
                ServedBy::L2 => 3 + 12,
                ServedBy::L3 => 3 + 12 + 20,
                ServedBy::Memory => 3 + 12 + 20,
            };
            prop_assert_eq!(r.cache_latency, expected);
        }
    }

    /// Machine clock is monotone and only demand traffic advances it.
    #[test]
    fn clock_monotone_and_injection_free(
        ops in prop::collection::vec((0u64..1 << 22, any::<bool>(), any::<bool>()), 1..150),
    ) {
        let mut m = Machine::new(MachineConfig::setup_i());
        let mut last = 0;
        for (addr, write, inject) in ops {
            let before = m.now();
            if inject {
                if write {
                    m.inject_store(VirtAddr::new(addr), 8);
                } else {
                    m.inject_load(VirtAddr::new(addr), 8);
                }
                prop_assert_eq!(m.now(), before, "injection is off the critical path");
            } else if write {
                m.store(VirtAddr::new(addr), 8);
            } else {
                m.load(VirtAddr::new(addr), 8);
            }
            prop_assert!(m.now() >= last);
            last = m.now();
        }
        let s = m.stats();
        prop_assert_eq!(s.cycles, m.now());
    }

    /// Cache-line and page alignment helpers agree with modular
    /// arithmetic for any address.
    #[test]
    fn alignment_helpers_consistent(addr in any::<u64>()) {
        let a = VirtAddr::new(addr & !(0xfu64 << 60)); // avoid overflow in align_up
        prop_assert_eq!(a.cache_line().raw(), a.raw() - a.raw() % 64);
        prop_assert_eq!(a.page().raw(), a.raw() - a.raw() % 4096);
        prop_assert_eq!(a.page_number(), a.raw() / 4096);
        prop_assert_eq!(a.page_offset(), a.raw() % 4096);
    }
}
