//! # prosper-memsim
//!
//! A deterministic, trace-driven memory-hierarchy simulator substrate for
//! the Prosper reproduction. It models the machine described in Table II
//! of the paper: a 3 GHz core with a three-level set-associative cache
//! hierarchy (with MSHR limits), a DDR4-2400-like DRAM device, and a
//! PCM-like NVM device with bounded read/write buffers.
//!
//! The simulator is *cycle-accounting*, not cycle-accurate: each memory
//! access is charged a latency derived from where it hits in the
//! hierarchy, and device/bandwidth contention is modelled with simple
//! queue-occupancy accounting. This is sufficient to reproduce the
//! *relative* effects the paper reports (DRAM vs NVM latency gap, the
//! cost of tracker-injected bitmap traffic, checkpoint copy costs),
//! which are all memory-system effects.
//!
//! The central type is [`machine::Machine`], which drives a stream of
//! accesses through the hierarchy and exposes a snoop port used by
//! hardware components (such as the Prosper dirty tracker) that observe
//! stores before the L1D.
//!
//! # Example
//!
//! ```
//! use prosper_memsim::config::MachineConfig;
//! use prosper_memsim::machine::Machine;
//! use prosper_memsim::addr::VirtAddr;
//!
//! let mut m = Machine::new(MachineConfig::setup_i());
//! let lat = m.store(VirtAddr::new(0x7fff_f000), 8);
//! assert!(lat > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod bandwidth;
pub mod cache;
pub mod config;
pub mod dram;
pub mod hierarchy;
pub mod machine;
pub mod memctrl;
pub mod multicore;
pub mod nvm;
pub mod stats;
pub mod tlb;

pub use addr::{PhysAddr, VirtAddr};
pub use bandwidth::BandwidthWindows;
pub use config::MachineConfig;
pub use machine::{CkptPhase, Machine, NvmPhaseBytes};

/// A simulated clock-cycle count at the core frequency (3 GHz in both
/// Table II setups).
pub type Cycles = u64;

/// Number of bytes in the simulated cache line (Table II: 64 B in L1,
/// L2, and L3).
pub const CACHE_LINE: u64 = 64;

/// Number of bytes in the simulated OS page (4 KiB, as in the paper's
/// page-granularity dirty-tracking discussion).
pub const PAGE_SIZE: u64 = 4096;
