//! Time-bucketed NVM write-bandwidth accounting.
//!
//! The fleet orchestrator's whole point is *smoothing*: checkpoint
//! traffic aligned in time saturates NVM write bandwidth every
//! interval, while deterministically staggered shard offsets spread
//! the same total bytes over the whole interval. [`BandwidthWindows`]
//! measures exactly that — bytes written per fixed-width virtual-time
//! window — and reduces it to the peak-to-mean ratio the perf suite
//! gates on (staggered strictly below aligned at equal total bytes).
//!
//! Everything here runs on the deterministic virtual clock: callers
//! pass absolute virtual-nanosecond timestamps, never wall-clock
//! time.

/// Fixed-width window tally of bytes written over a virtual-time
/// horizon.
#[derive(Clone, Debug)]
pub struct BandwidthWindows {
    window_ns: u64,
    /// Bytes per window, indexed by `t / window_ns`. Grown on demand;
    /// windows never written stay zero and still count toward the
    /// mean (an idle window is real smoothing headroom).
    buckets: Vec<u64>,
    total_bytes: u64,
}

impl BandwidthWindows {
    /// Creates a tally with the given window width.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero.
    #[must_use]
    pub fn new(window_ns: u64) -> Self {
        assert!(window_ns > 0, "bandwidth window width must be non-zero");
        Self {
            window_ns,
            buckets: Vec::new(),
            total_bytes: 0,
        }
    }

    /// The window width.
    #[must_use]
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Records `bytes` written at virtual time `t_ns`. The whole
    /// write is charged to the window containing `t_ns` — commits are
    /// short relative to the window width, and charging the start
    /// keeps the accounting deterministic and order-independent.
    pub fn record(&mut self, t_ns: u64, bytes: u64) {
        let idx = usize::try_from(t_ns / self.window_ns).unwrap_or(usize::MAX);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += bytes;
        self.total_bytes += bytes;
    }

    /// Total bytes recorded.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Number of windows from time zero through `horizon_ns`
    /// (inclusive of the window containing it).
    fn windows_in(&self, horizon_ns: u64) -> u64 {
        (horizon_ns / self.window_ns + 1).max(self.buckets.len() as u64)
    }

    /// Peak bytes in any single window.
    #[must_use]
    pub fn peak_bytes(&self) -> u64 {
        self.buckets.iter().copied().max().unwrap_or(0)
    }

    /// Mean bytes per window over `[0, horizon_ns]`, in milli-bytes
    /// (×1000) so integer arithmetic keeps the comparison exact.
    #[must_use]
    pub fn mean_bytes_milli(&self, horizon_ns: u64) -> u64 {
        let n = self.windows_in(horizon_ns);
        if n == 0 {
            return 0;
        }
        self.total_bytes * 1000 / n
    }

    /// `1000 × peak / mean` over `[0, horizon_ns]` — the smoothing
    /// figure of merit. 1000 means perfectly flat traffic; an aligned
    /// fleet that writes everything in one window out of `N` scores
    /// ~`1000 × N`. Returns 0 when nothing was recorded.
    #[must_use]
    pub fn peak_to_mean_milli(&self, horizon_ns: u64) -> u64 {
        if self.total_bytes == 0 {
            return 0;
        }
        // peak / (total / n) = peak * n / total, in milli-units.
        self.peak_bytes() * self.windows_in(horizon_ns) * 1000 / self.total_bytes
    }

    /// The per-window byte tally (index = window number).
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_traffic_scores_unity() {
        let mut bw = BandwidthWindows::new(100);
        for w in 0..10u64 {
            bw.record(w * 100 + 5, 64);
        }
        assert_eq!(bw.total_bytes(), 640);
        assert_eq!(bw.peak_bytes(), 64);
        // Horizon exactly covers the 10 written windows.
        assert_eq!(bw.peak_to_mean_milli(999), 1000);
    }

    #[test]
    fn aligned_burst_scores_window_count() {
        let mut bw = BandwidthWindows::new(100);
        // Everything lands in window 0 of a 10-window horizon.
        bw.record(10, 640);
        assert_eq!(bw.peak_to_mean_milli(999), 10_000);
    }

    #[test]
    fn staggered_strictly_below_aligned_at_equal_bytes() {
        let mut aligned = BandwidthWindows::new(100);
        let mut staggered = BandwidthWindows::new(100);
        // 4 shards × 2 intervals of 400 ns, 100 B per commit.
        for interval in 0..2u64 {
            for shard in 0..4u64 {
                aligned.record(interval * 400, 100);
                staggered.record(interval * 400 + shard * 100, 100);
            }
        }
        assert_eq!(aligned.total_bytes(), staggered.total_bytes());
        assert!(
            staggered.peak_to_mean_milli(799) < aligned.peak_to_mean_milli(799),
            "staggering must strictly lower peak-to-mean"
        );
        assert_eq!(staggered.peak_to_mean_milli(799), 1000);
        assert_eq!(aligned.peak_to_mean_milli(799), 4000);
    }

    #[test]
    fn idle_windows_count_toward_the_mean() {
        let mut bw = BandwidthWindows::new(100);
        bw.record(0, 100);
        // Horizon stretches over 4 windows, 3 idle.
        assert_eq!(bw.mean_bytes_milli(399), 25_000);
        assert_eq!(bw.peak_to_mean_milli(399), 4000);
    }

    #[test]
    fn empty_tally_is_zero() {
        let bw = BandwidthWindows::new(100);
        assert_eq!(bw.peak_bytes(), 0);
        assert_eq!(bw.peak_to_mean_milli(1000), 0);
    }
}
