//! Multi-core machine model.
//!
//! Table II describes per-core L1D/L2 caches with a shared L3 (2 MiB
//! per core) and a shared memory controller; Prosper instantiates one
//! dirty tracker per core (Section III-D). This module composes
//! per-core private levels over a shared L3 and a shared bus, with
//! independent per-core clocks — enough to study concurrent tracking
//! and cache/bus interference between cores.

use crate::addr::{PhysAddr, VirtAddr};
use crate::cache::{AccessKind, Cache};
use crate::config::{CacheConfig, MachineConfig};
use crate::machine::{AddressTranslator, DirectMap};
use crate::memctrl::{Device, MemoryController};
use crate::stats::LevelStats;
use crate::{Cycles, CACHE_LINE};

/// Per-core private state.
#[derive(Debug)]
struct Core {
    l1d: Cache,
    l2: Cache,
    now: Cycles,
    loads: u64,
    stores: u64,
    injected: u64,
}

/// Counters for one core of a [`MultiCoreMachine`].
#[derive(Clone, Copy, Default, Debug)]
pub struct CoreStats {
    /// Core-local cycle count.
    pub cycles: Cycles,
    /// Demand loads issued.
    pub loads: u64,
    /// Demand stores issued.
    pub stores: u64,
    /// Injected (background) operations issued from this core's
    /// tracker.
    pub injected: u64,
    /// L1D counters.
    pub l1d: LevelStats,
    /// L2 counters.
    pub l2: LevelStats,
}

/// A machine with `n` cores, a shared L3, and a shared memory bus.
///
/// Each core has its own clock (cores run independent instruction
/// streams); the bus serialises line transfers across cores, so a
/// core's miss can queue behind another core's traffic — the
/// cross-core interference channel.
#[derive(Debug)]
pub struct MultiCoreMachine {
    cores: Vec<Core>,
    l3: Cache,
    ctrl: MemoryController,
    translator: DirectMap,
    bus_free: Cycles,
    cfg: MachineConfig,
}

impl MultiCoreMachine {
    /// Builds an `n`-core machine; the shared L3 is sized at the
    /// per-core slice capacity times `n` (Table II: 2 MiB/core,
    /// shared), rounded up to the next power-of-two core count so the
    /// set count stays a power of two.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(cfg: MachineConfig, n: usize) -> Self {
        assert!(n > 0, "need at least one core");
        let l3_cfg = CacheConfig {
            size_bytes: cfg.l3.size_bytes * (n as u64).next_power_of_two(),
            ..cfg.l3
        };
        Self {
            cores: (0..n)
                .map(|_| Core {
                    l1d: Cache::new(cfg.l1d),
                    l2: Cache::new(cfg.l2),
                    now: 0,
                    loads: 0,
                    stores: 0,
                    injected: 0,
                })
                .collect(),
            l3: Cache::new(l3_cfg),
            ctrl: MemoryController::new(cfg.layout, cfg.dram, cfg.nvm),
            translator: DirectMap::new(cfg.layout.dram_bytes),
            bus_free: 0,
            cfg,
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Core-local clock of core `c`.
    pub fn now(&self, c: usize) -> Cycles {
        self.cores[c].now
    }

    /// Advances core `c` by `cycles` of compute.
    pub fn advance(&mut self, c: usize, cycles: Cycles) {
        self.cores[c].now += cycles;
    }

    /// Counters for core `c`.
    pub fn core_stats(&self, c: usize) -> CoreStats {
        let core = &self.cores[c];
        CoreStats {
            cycles: core.now,
            loads: core.loads,
            stores: core.stores,
            injected: core.injected,
            l1d: core.l1d.stats(),
            l2: core.l2.stats(),
        }
    }

    /// Shared-L3 counters.
    pub fn l3_stats(&self) -> LevelStats {
        self.l3.stats()
    }

    fn bus_transfer(&mut self, issue: Cycles, addr: PhysAddr, is_write: bool) -> Cycles {
        let start = issue.max(self.bus_free);
        let queue_delay = start - issue;
        let device_latency = self.ctrl.access(start, addr, is_write);
        let transfer = match self.ctrl.device_of(addr) {
            Device::Dram => (CACHE_LINE as f64 / self.cfg.dram.bytes_per_cycle).ceil() as Cycles,
            Device::Nvm => {
                let bpc = if is_write {
                    self.cfg.nvm.write_bytes_per_cycle
                } else {
                    self.cfg.nvm.read_bytes_per_cycle
                };
                (CACHE_LINE as f64 / bpc).ceil() as Cycles
            }
        };
        self.bus_free = start + transfer;
        queue_delay + device_latency
    }

    /// One line access on core `c`; returns the latency charged to the
    /// core when `demand`, zero otherwise.
    fn line_access(&mut self, c: usize, paddr: PhysAddr, kind: AccessKind, demand: bool) -> Cycles {
        let issue = self.cores[c].now;
        let mut latency = self.cfg.l1d.latency;
        let core = &mut self.cores[c];
        let r1 = core.l1d.access(paddr, kind);
        if let Some(v) = r1.writeback {
            core.l2.access(v, AccessKind::Write);
        }
        if !r1.hit {
            latency += self.cfg.l2.latency;
            let r2 = core.l2.access(paddr, AccessKind::Read);
            if let Some(v) = r2.writeback {
                self.l3.access(v, AccessKind::Write);
            }
            if !r2.hit {
                latency += self.cfg.l3.latency;
                let r3 = self.l3.access(paddr, AccessKind::Read);
                if let Some(v3) = r3.writeback {
                    self.bus_transfer(issue, v3, true);
                }
                if !r3.hit {
                    latency += self.bus_transfer(issue, paddr, false);
                }
            }
        }
        if demand {
            latency
        } else {
            0
        }
    }

    fn lines_of(vaddr: VirtAddr, size: u64) -> impl Iterator<Item = VirtAddr> {
        let first = vaddr.cache_line().raw();
        let last = if size == 0 {
            first
        } else {
            (vaddr.raw() + size - 1) & !(CACHE_LINE - 1)
        };
        (first..=last)
            .step_by(CACHE_LINE as usize)
            .map(VirtAddr::new)
    }

    /// Demand load on core `c`; advances that core's clock.
    pub fn load(&mut self, c: usize, vaddr: VirtAddr, size: u64) -> Cycles {
        self.cores[c].loads += 1;
        let mut total = 0;
        for line in Self::lines_of(vaddr, size) {
            let paddr = self.translator.translate(line);
            total += self.line_access(c, paddr, AccessKind::Read, true);
        }
        self.cores[c].now += total;
        total
    }

    /// Demand store on core `c`; advances that core's clock.
    pub fn store(&mut self, c: usize, vaddr: VirtAddr, size: u64) -> Cycles {
        self.cores[c].stores += 1;
        let mut total = 0;
        for line in Self::lines_of(vaddr, size) {
            let paddr = self.translator.translate(line);
            total += self.line_access(c, paddr, AccessKind::Write, true);
        }
        self.cores[c].now += total;
        total
    }

    /// Background (tracker) store issued from core `c`: no core-clock
    /// charge, but cache and bus effects are real.
    pub fn inject_store(&mut self, c: usize, vaddr: VirtAddr, size: u64) {
        self.cores[c].injected += 1;
        for line in Self::lines_of(vaddr, size) {
            let paddr = self.translator.translate(line);
            self.line_access(c, paddr, AccessKind::Write, false);
        }
    }

    /// Background load issued from core `c`.
    pub fn inject_load(&mut self, c: usize, vaddr: VirtAddr, size: u64) {
        self.cores[c].injected += 1;
        for line in Self::lines_of(vaddr, size) {
            let paddr = self.translator.translate(line);
            self.line_access(c, paddr, AccessKind::Read, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(n: usize) -> MultiCoreMachine {
        MultiCoreMachine::new(MachineConfig::setup_i(), n)
    }

    #[test]
    fn cores_have_independent_clocks_and_caches() {
        let mut m = machine(2);
        m.load(0, VirtAddr::new(0x1000), 8);
        assert!(m.now(0) > 0);
        assert_eq!(m.now(1), 0);
        // Core 1 misses its private levels on the same line but hits
        // the shared L3.
        let lat1 = m.load(1, VirtAddr::new(0x1000), 8);
        assert_eq!(lat1, 3 + 12 + 20, "shared-L3 hit for core 1: {lat1}");
    }

    #[test]
    fn shared_l3_is_scaled_by_core_count() {
        let m1 = machine(1);
        let m4 = machine(4);
        assert_eq!(m4.l3.config().size_bytes, 4 * m1.l3.config().size_bytes);
    }

    #[test]
    fn bus_contention_crosses_cores() {
        let mut m = machine(2);
        // Core 1 floods the bus with injected misses.
        for i in 0..200u64 {
            m.inject_store(1, VirtAddr::new(0x200_0000 + i * 64), 8);
        }
        // Core 0's cold miss queues behind them.
        let lat = m.load(0, VirtAddr::new(0x900_0000), 8);
        assert!(lat > 35 + 60, "cross-core queueing visible: {lat}");
        assert_eq!(m.now(1), 0, "injector's clock unaffected");
    }

    #[test]
    fn per_core_stats_are_separate() {
        let mut m = machine(3);
        m.store(0, VirtAddr::new(0x100), 8);
        m.store(0, VirtAddr::new(0x100), 8);
        m.load(2, VirtAddr::new(0x40000), 8);
        let s0 = m.core_stats(0);
        let s2 = m.core_stats(2);
        assert_eq!(s0.stores, 2);
        assert_eq!(s0.loads, 0);
        assert_eq!(s2.loads, 1);
        assert_eq!(m.core_stats(1).loads + m.core_stats(1).stores, 0);
        assert_eq!(s0.l1d.hits, 1);
    }

    #[test]
    fn advance_is_per_core() {
        let mut m = machine(2);
        m.advance(0, 500);
        assert_eq!(m.now(0), 500);
        assert_eq!(m.now(1), 0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        machine(0);
    }
}
