//! DDR4-like DRAM device model.
//!
//! Models per-bank open rows (row-buffer hits vs misses) and sustained
//! bandwidth for bulk transfers. Latencies come from
//! [`config::DramConfig`](crate::config::DramConfig).

use crate::addr::PhysAddr;
use crate::config::DramConfig;
use crate::Cycles;

/// A DRAM device with per-bank open-row tracking.
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    /// Open row per bank, `None` if the bank is precharged.
    open_rows: Vec<Option<u64>>,
    /// Line reads served.
    pub reads: u64,
    /// Line writes absorbed.
    pub writes: u64,
    /// Row-buffer hits observed.
    pub row_hits: u64,
}

impl Dram {
    /// Builds a device with all banks precharged.
    pub fn new(cfg: DramConfig) -> Self {
        Self {
            open_rows: vec![None; cfg.banks as usize],
            cfg,
            reads: 0,
            writes: 0,
            row_hits: 0,
        }
    }

    /// The configuration this device was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    fn bank_and_row(&self, addr: PhysAddr) -> (usize, u64) {
        let row = addr.raw() / self.cfg.row_bytes;
        let bank = (row % u64::from(self.cfg.banks)) as usize;
        (bank, row)
    }

    /// Services a single line-sized access and returns its latency.
    pub fn access(&mut self, addr: PhysAddr, is_write: bool) -> Cycles {
        let (bank, row) = self.bank_and_row(addr);
        let hit = self.open_rows[bank] == Some(row);
        self.open_rows[bank] = Some(row);
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        if hit {
            self.row_hits += 1;
            self.cfg.row_hit
        } else {
            self.cfg.row_miss
        }
    }

    /// Cycles needed to stream `bytes` at the sustained bandwidth,
    /// ignoring first-access latency (used for bulk copies where the
    /// access stream is fully pipelined).
    pub fn stream_cycles(&self, bytes: u64) -> Cycles {
        (bytes as f64 / self.cfg.bytes_per_cycle).ceil() as Cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    #[test]
    fn row_hit_cheaper_than_miss() {
        let mut d = Dram::new(DramConfig::ddr4_2400());
        let a = PhysAddr::new(0);
        let first = d.access(a, false);
        let second = d.access(a + 64, false);
        assert!(first > second, "first access opens the row");
        assert_eq!(d.row_hits, 1);
        assert_eq!(d.reads, 2);
    }

    #[test]
    fn different_rows_same_bank_conflict() {
        let cfg = DramConfig::ddr4_2400();
        let mut d = Dram::new(cfg);
        let a = PhysAddr::new(0);
        // Same bank is revisited every banks*row_bytes bytes.
        let stride = u64::from(cfg.banks) * cfg.row_bytes;
        let b = PhysAddr::new(stride);
        d.access(a, false);
        let lat = d.access(b, false);
        assert_eq!(lat, cfg.row_miss);
    }

    #[test]
    fn writes_counted_separately() {
        let mut d = Dram::new(DramConfig::ddr4_2400());
        d.access(PhysAddr::new(0), true);
        assert_eq!(d.writes, 1);
        assert_eq!(d.reads, 0);
    }

    #[test]
    fn stream_bandwidth() {
        let d = Dram::new(DramConfig::ddr4_2400());
        assert_eq!(d.stream_cycles(64), 10); // 64 / 6.4
        assert_eq!(d.stream_cycles(0), 0);
    }
}
