//! Virtual and physical address newtypes and address-range helpers.
//!
//! The Prosper hardware filters *stores of interest* by comparing the
//! store's **virtual** address against the stack range programmed by the
//! OS (the paper places the comparator near the L1D precisely because
//! the virtual stack range is contiguous while its physical mapping need
//! not be). Keeping [`VirtAddr`] and [`PhysAddr`] as distinct types makes
//! it impossible to accidentally compare across the two spaces.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

use crate::{CACHE_LINE, PAGE_SIZE};

macro_rules! addr_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Creates an address from a raw 64-bit value.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw 64-bit value of the address.
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the address rounded down to `align` bytes.
            ///
            /// # Panics
            ///
            /// Panics if `align` is zero or not a power of two.
            pub fn align_down(self, align: u64) -> Self {
                assert!(align.is_power_of_two(), "alignment must be a power of two");
                Self(self.0 & !(align - 1))
            }

            /// Returns the address rounded up to `align` bytes.
            ///
            /// # Panics
            ///
            /// Panics if `align` is zero or not a power of two, or if
            /// rounding up overflows.
            pub fn align_up(self, align: u64) -> Self {
                assert!(align.is_power_of_two(), "alignment must be a power of two");
                Self(
                    self.0
                        .checked_add(align - 1)
                        .expect("address overflow while aligning up")
                        & !(align - 1),
                )
            }

            /// Returns the start of the 64-byte cache line containing
            /// this address.
            pub fn cache_line(self) -> Self {
                self.align_down(CACHE_LINE)
            }

            /// Returns the start of the 4 KiB page containing this
            /// address.
            pub fn page(self) -> Self {
                self.align_down(PAGE_SIZE)
            }

            /// Returns the zero-based index of the 4 KiB page containing
            /// this address.
            pub fn page_number(self) -> u64 {
                self.0 / PAGE_SIZE
            }

            /// Returns the byte offset of this address within its page.
            pub fn page_offset(self) -> u64 {
                self.0 % PAGE_SIZE
            }

            /// Returns `true` if the address is aligned to `align` bytes.
            ///
            /// # Panics
            ///
            /// Panics if `align` is zero or not a power of two.
            pub fn is_aligned(self, align: u64) -> bool {
                assert!(align.is_power_of_two(), "alignment must be a power of two");
                self.0 & (align - 1) == 0
            }

            /// Returns the address `offset` bytes above this one, or
            /// `None` on overflow.
            pub fn checked_add(self, offset: u64) -> Option<Self> {
                self.0.checked_add(offset).map(Self)
            }

            /// Returns the address `offset` bytes below this one, or
            /// `None` on underflow.
            pub fn checked_sub(self, offset: u64) -> Option<Self> {
                self.0.checked_sub(offset).map(Self)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(addr: $name) -> u64 {
                addr.0
            }
        }

        impl Add<u64> for $name {
            type Output = Self;

            fn add(self, rhs: u64) -> Self {
                Self(self.0 + rhs)
            }
        }

        impl Sub<u64> for $name {
            type Output = Self;

            fn sub(self, rhs: u64) -> Self {
                Self(self.0 - rhs)
            }
        }

        impl Sub<$name> for $name {
            type Output = u64;

            fn sub(self, rhs: $name) -> u64 {
                self.0 - rhs.0
            }
        }
    };
}

addr_type! {
    /// A virtual address in a simulated process address space.
    VirtAddr
}

addr_type! {
    /// A physical address in the simulated DRAM+NVM physical space.
    PhysAddr
}

/// A half-open range `[start, end)` of virtual addresses.
///
/// Used for the stack region programmed into the Prosper MSRs and for
/// VMAs in the OS model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct VirtRange {
    start: VirtAddr,
    end: VirtAddr,
}

impl VirtRange {
    /// Creates a new range.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: VirtAddr, end: VirtAddr) -> Self {
        assert!(start <= end, "range start {start} above end {end}");
        Self { start, end }
    }

    /// Creates a range from a start address and a length in bytes.
    pub fn from_start_len(start: VirtAddr, len: u64) -> Self {
        Self::new(start, start + len)
    }

    /// Returns the inclusive lower bound.
    pub fn start(&self) -> VirtAddr {
        self.start
    }

    /// Returns the exclusive upper bound.
    pub fn end(&self) -> VirtAddr {
        self.end
    }

    /// Returns the size of the range in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Returns `true` if the range contains no addresses.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns `true` if `addr` falls inside the range.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        self.start <= addr && addr < self.end
    }

    /// Returns `true` if the `len`-byte access starting at `addr`
    /// overlaps the range at all.
    pub fn overlaps_access(&self, addr: VirtAddr, len: u64) -> bool {
        if self.is_empty() || len == 0 {
            return false;
        }
        addr < self.end && addr + len > self.start
    }

    /// Returns the intersection of two ranges, or `None` if disjoint.
    pub fn intersect(&self, other: &VirtRange) -> Option<VirtRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then(|| VirtRange::new(start, end))
    }

    /// Iterates over the page numbers covered by the range.
    pub fn pages(&self) -> impl Iterator<Item = u64> {
        let first = self.start.page_number();
        let last = if self.is_empty() {
            first
        } else {
            (self.end - 1u64).page_number() + 1
        };
        first..last
    }
}

impl fmt::Display for VirtRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_down_and_up() {
        let a = VirtAddr::new(0x1234);
        assert_eq!(a.align_down(0x1000).raw(), 0x1000);
        assert_eq!(a.align_up(0x1000).raw(), 0x2000);
        assert_eq!(VirtAddr::new(0x2000).align_up(0x1000).raw(), 0x2000);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn align_rejects_non_power_of_two() {
        VirtAddr::new(0x10).align_down(3);
    }

    #[test]
    fn cache_line_and_page_helpers() {
        let a = PhysAddr::new(4096 + 65);
        assert_eq!(a.cache_line().raw(), 4096 + 64);
        assert_eq!(a.page().raw(), 4096);
        assert_eq!(a.page_number(), 1);
        assert_eq!(a.page_offset(), 65);
    }

    #[test]
    fn arithmetic_and_conversions() {
        let a = VirtAddr::new(100);
        assert_eq!((a + 28).raw(), 128);
        assert_eq!((a - 50u64).raw(), 50);
        assert_eq!(VirtAddr::new(130) - a, 30);
        assert_eq!(u64::from(a), 100);
        assert_eq!(VirtAddr::from(7u64).raw(), 7);
        assert_eq!(a.checked_add(u64::MAX), None);
        assert_eq!(a.checked_sub(101), None);
        assert_eq!(a.checked_sub(100), Some(VirtAddr::new(0)));
    }

    #[test]
    fn is_aligned() {
        assert!(VirtAddr::new(0x40).is_aligned(64));
        assert!(!VirtAddr::new(0x41).is_aligned(64));
    }

    #[test]
    fn display_and_debug_format_hex() {
        let a = VirtAddr::new(0xdead);
        assert_eq!(format!("{a}"), "0xdead");
        assert_eq!(format!("{a:?}"), "VirtAddr(0xdead)");
        assert_eq!(format!("{a:x}"), "dead");
        assert_eq!(format!("{a:X}"), "DEAD");
    }

    #[test]
    fn range_contains_and_overlap() {
        let r = VirtRange::new(VirtAddr::new(100), VirtAddr::new(200));
        assert_eq!(r.len(), 100);
        assert!(!r.is_empty());
        assert!(r.contains(VirtAddr::new(100)));
        assert!(r.contains(VirtAddr::new(199)));
        assert!(!r.contains(VirtAddr::new(200)));
        assert!(r.overlaps_access(VirtAddr::new(90), 11));
        assert!(!r.overlaps_access(VirtAddr::new(90), 10));
        assert!(r.overlaps_access(VirtAddr::new(199), 8));
        assert!(!r.overlaps_access(VirtAddr::new(200), 8));
        assert!(!r.overlaps_access(VirtAddr::new(150), 0));
    }

    #[test]
    fn empty_range_overlaps_nothing() {
        let r = VirtRange::new(VirtAddr::new(100), VirtAddr::new(100));
        assert!(r.is_empty());
        assert!(!r.overlaps_access(VirtAddr::new(100), 8));
        assert_eq!(r.pages().count(), 0);
    }

    #[test]
    #[should_panic(expected = "above end")]
    fn inverted_range_panics() {
        VirtRange::new(VirtAddr::new(2), VirtAddr::new(1));
    }

    #[test]
    fn range_intersection() {
        let a = VirtRange::new(VirtAddr::new(0), VirtAddr::new(100));
        let b = VirtRange::new(VirtAddr::new(50), VirtAddr::new(150));
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.start().raw(), 50);
        assert_eq!(i.end().raw(), 100);
        let c = VirtRange::new(VirtAddr::new(200), VirtAddr::new(300));
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn range_pages_iteration() {
        let r = VirtRange::new(VirtAddr::new(4095), VirtAddr::new(4097));
        let pages: Vec<u64> = r.pages().collect();
        assert_eq!(pages, vec![0, 1]);
        let r2 = VirtRange::from_start_len(VirtAddr::new(8192), 4096);
        assert_eq!(r2.pages().collect::<Vec<_>>(), vec![2]);
    }
}
