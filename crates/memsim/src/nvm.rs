//! PCM-like NVM device model with bounded read/write buffers.
//!
//! The paper's Table II configures gem5's NVM interface with PCM timing
//! parameters, a 48-entry write buffer, and a 64-entry read buffer. The
//! write buffer lets short write bursts complete at buffer-insert speed,
//! but a sustained write stream (for example, a checkpoint copy or a
//! per-store `clwb` policy like the flush baseline in Figure 3) drains
//! at the slow PCM array write latency and backs up, stalling the core.
//! That asymmetry is the key driver of the paper's "keep the stack in
//! DRAM, checkpoint into NVM" argument, so we model it explicitly with
//! a drain-rate occupancy model.

use crate::addr::PhysAddr;
use crate::config::NvmConfig;
use crate::Cycles;

/// Per-line wear statistics — PCM cells endure a bounded number of
/// writes, which is the endurance concern the paper raises against
/// keeping the write-intensive stack in NVM (Section II).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct WearStats {
    /// Total line writes absorbed by the device.
    pub total_line_writes: u64,
    /// Writes to the most-written line.
    pub max_line_writes: u64,
    /// Distinct lines ever written.
    pub distinct_lines: u64,
}

/// An NVM device.
#[derive(Clone, Debug)]
pub struct Nvm {
    cfg: NvmConfig,
    /// Occupancy of the write buffer in entries (line-sized writes),
    /// valid as of `last_now`.
    write_occupancy: f64,
    last_now: Cycles,
    /// Line reads served.
    pub reads: u64,
    /// Line writes absorbed.
    pub writes: u64,
    /// Cycles callers were stalled on a full write buffer.
    pub write_stall_cycles: Cycles,
    /// Per-line write counts (sparse).
    wear: std::collections::BTreeMap<u64, u64>,
    /// Cursor spreading bulk-copy wear over sequential lines (bulk
    /// checkpoint areas are written sequentially in practice).
    bulk_cursor: u64,
}

impl Nvm {
    /// Builds an idle device.
    pub fn new(cfg: NvmConfig) -> Self {
        Self {
            cfg,
            write_occupancy: 0.0,
            last_now: 0,
            reads: 0,
            writes: 0,
            write_stall_cycles: 0,
            wear: std::collections::BTreeMap::new(),
            bulk_cursor: 0,
        }
    }

    /// The configuration this device was built with.
    pub fn config(&self) -> &NvmConfig {
        &self.cfg
    }

    /// Advances internal occupancy bookkeeping to `now`.
    fn drain_to(&mut self, now: Cycles) {
        if now <= self.last_now {
            return;
        }
        let elapsed = (now - self.last_now) as f64;
        // One buffered line write retires every `write_latency` cycles.
        let drained = elapsed / self.cfg.write_latency as f64;
        self.write_occupancy = (self.write_occupancy - drained).max(0.0);
        self.last_now = now;
    }

    /// Services a line read issued at absolute cycle `now`; returns its
    /// latency.
    pub fn read(&mut self, now: Cycles, _addr: PhysAddr) -> Cycles {
        self.drain_to(now);
        self.reads += 1;
        self.cfg.read_latency
    }

    /// Accepts a line write issued at absolute cycle `now`; returns the
    /// latency visible to the issuer.
    ///
    /// If the write buffer has room, the visible latency is a cheap
    /// buffer insert; if it is full, the issuer stalls until an entry
    /// drains at the array write latency.
    pub fn write(&mut self, now: Cycles, addr: PhysAddr) -> Cycles {
        self.drain_to(now);
        self.writes += 1;
        *self.wear.entry(addr.cache_line().raw()).or_insert(0) += 1;
        const BUFFER_INSERT: Cycles = 30;
        if (self.write_occupancy as u32) < self.cfg.write_buffer {
            self.write_occupancy += 1.0;
            BUFFER_INSERT
        } else {
            // Must wait for one entry to drain.
            let stall = self.cfg.write_latency;
            self.write_stall_cycles += stall;
            // Occupancy stays pinned at the buffer limit.
            stall + BUFFER_INSERT
        }
    }

    /// Cycles to persist `bytes` as a sustained (pipelined) write
    /// stream, e.g. a checkpoint copy. Bounded by write bandwidth.
    pub fn stream_write_cycles(&self, bytes: u64) -> Cycles {
        (bytes as f64 / self.cfg.write_bytes_per_cycle).ceil() as Cycles
    }

    /// Cycles to fetch `bytes` as a sustained read stream.
    pub fn stream_read_cycles(&self, bytes: u64) -> Cycles {
        (bytes as f64 / self.cfg.read_bytes_per_cycle).ceil() as Cycles
    }

    /// Current (approximate) write-buffer occupancy in entries.
    pub fn write_buffer_occupancy(&self) -> u32 {
        self.write_occupancy as u32
    }

    /// Records the wear of a sequential bulk write of `bytes`
    /// (checkpoint copies stream into staging/persistent areas) and
    /// counts the line writes on the device.
    pub fn record_bulk_write(&mut self, bytes: u64) {
        let lines = bytes.div_ceil(64);
        self.writes += lines;
        for _ in 0..lines {
            // Checkpoint areas recycle; model a 1 MiB rotating window.
            let line = self.bulk_cursor % ((1u64 << 20) / 64);
            self.bulk_cursor += 1;
            *self.wear.entry(u64::MAX - line).or_insert(0) += 1;
        }
    }

    /// Wear statistics accumulated so far.
    pub fn wear_stats(&self) -> WearStats {
        WearStats {
            total_line_writes: self.wear.values().sum(),
            max_line_writes: self.wear.values().copied().max().unwrap_or(0),
            distinct_lines: self.wear.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_writes_absorb_in_buffer() {
        let mut n = Nvm::new(NvmConfig::pcm());
        let mut total = 0;
        for i in 0..48 {
            total += n.write(i, PhysAddr::new(i * 64));
        }
        // All absorbed at insert cost, no stalls.
        assert_eq!(n.write_stall_cycles, 0);
        assert!(total < 48 * 100);
    }

    #[test]
    fn sustained_writes_stall_on_full_buffer() {
        let mut n = Nvm::new(NvmConfig::pcm());
        // Issue writes back-to-back (no time passes => no draining).
        for _ in 0..48 {
            n.write(0, PhysAddr::new(0));
        }
        let lat = n.write(0, PhysAddr::new(0));
        assert!(lat >= NvmConfig::pcm().write_latency);
        assert!(n.write_stall_cycles > 0);
    }

    #[test]
    fn buffer_drains_over_time() {
        let mut n = Nvm::new(NvmConfig::pcm());
        for _ in 0..48 {
            n.write(0, PhysAddr::new(0));
        }
        assert_eq!(n.write_buffer_occupancy(), 48);
        // After 10 write latencies, ~10 entries drained.
        let later = 10 * NvmConfig::pcm().write_latency;
        n.read(later, PhysAddr::new(0));
        assert!(n.write_buffer_occupancy() <= 38);
    }

    #[test]
    fn read_latency_fixed() {
        let mut n = Nvm::new(NvmConfig::pcm());
        assert_eq!(n.read(0, PhysAddr::new(0)), NvmConfig::pcm().read_latency);
        assert_eq!(n.reads, 1);
    }

    #[test]
    fn wear_tracks_per_line_writes() {
        let mut n = Nvm::new(NvmConfig::pcm());
        for _ in 0..5 {
            n.write(0, PhysAddr::new(0x100));
        }
        n.write(0, PhysAddr::new(0x1000));
        let w = n.wear_stats();
        assert_eq!(w.total_line_writes, 6);
        assert_eq!(w.max_line_writes, 5);
        assert_eq!(w.distinct_lines, 2);
    }

    #[test]
    fn bulk_wear_rotates_over_window() {
        let mut n = Nvm::new(NvmConfig::pcm());
        n.record_bulk_write(64 * 100);
        let w = n.wear_stats();
        assert_eq!(w.total_line_writes, 100);
        assert_eq!(w.max_line_writes, 1, "sequential area spreads wear");
        assert_eq!(w.distinct_lines, 100);
        assert_eq!(n.writes, 100);
    }

    #[test]
    fn bulk_wear_wraps_after_window() {
        let mut n = Nvm::new(NvmConfig::pcm());
        let window_lines = (1u64 << 20) / 64;
        n.record_bulk_write(64 * (window_lines + 10));
        let w = n.wear_stats();
        assert_eq!(w.max_line_writes, 2, "wrapped lines written twice");
        assert_eq!(w.distinct_lines, window_lines);
    }

    #[test]
    fn empty_device_has_no_wear() {
        let n = Nvm::new(NvmConfig::pcm());
        assert_eq!(n.wear_stats(), WearStats::default());
    }

    #[test]
    fn stream_cycles_scale_with_bytes() {
        let n = Nvm::new(NvmConfig::pcm());
        assert!(n.stream_write_cycles(4096) > n.stream_write_cycles(64));
        assert!(n.stream_write_cycles(4096) > n.stream_read_cycles(4096));
        assert_eq!(n.stream_write_cycles(0), 0);
    }
}
