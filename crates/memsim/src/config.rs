//! Machine configurations reproducing Table II of the paper.
//!
//! Two setups are used by the paper:
//!
//! * **Setup-I** — the end-to-end checkpoint experiments (GemOS on gem5
//!   with hybrid 3 GB DRAM + 2 GB NVM memory). Used by Figures 8–11 and
//!   the context-switch study.
//! * **Setup-II** — the tracking-overhead experiments (Linux on gem5,
//!   32 GB DRAM). Used by Figures 12–13.
//!
//! Parameters not listed in Table II keep gem5-like defaults; those are
//! documented on each field.

use serde::{Deserialize, Serialize};

use crate::Cycles;

/// Configuration of a single set-associative cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Access (hit) latency in core cycles.
    pub latency: Cycles,
    /// Number of miss-status holding registers; bounds outstanding
    /// misses and therefore the achievable miss-level parallelism.
    pub mshrs: u32,
    /// Line size in bytes (64 in Table II for all levels).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Number of sets implied by size, ways, and line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is not a power
    /// of two, mirroring real-cache constraints.
    pub fn sets(&self) -> u64 {
        let lines = self.size_bytes / self.line_bytes;
        assert_eq!(
            lines * self.line_bytes,
            self.size_bytes,
            "cache size must be a multiple of the line size"
        );
        let sets = lines / u64::from(self.ways);
        assert_eq!(
            sets * u64::from(self.ways),
            lines,
            "cache lines must divide evenly into ways"
        );
        assert!(
            sets.is_power_of_two(),
            "cache set count must be a power of two"
        );
        sets
    }
}

/// DRAM device timing, modelled on DDR4-2400 (Table II: DDR4-2400 16x4).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct DramConfig {
    /// Row-buffer hit latency in core cycles (CAS only).
    pub row_hit: Cycles,
    /// Row-buffer miss latency in core cycles (precharge + activate + CAS).
    pub row_miss: Cycles,
    /// Number of banks (row buffers tracked per bank).
    pub banks: u32,
    /// Row size in bytes (row-buffer granularity).
    pub row_bytes: u64,
    /// Sustained bandwidth in bytes per core cycle, used for bulk-copy
    /// and queueing accounting. DDR4-2400 ≈ 19.2 GB/s ≈ 6.4 B/cycle at
    /// 3 GHz.
    pub bytes_per_cycle: f64,
}

/// NVM device timing, modelled on PCM (Table II footnote: PCM timing
/// parameters based on reference \[46\] of the paper).
///
/// The defining characteristics are the large read/write latencies
/// relative to DRAM, strong read/write asymmetry, and bounded device
/// buffers (Table II: 48-entry write buffer, 64-entry read buffer) whose
/// exhaustion stalls further requests.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct NvmConfig {
    /// Array read latency in core cycles (~150 ns class device ⇒ ~450
    /// cycles at 3 GHz; we use a PCM-like 300).
    pub read_latency: Cycles,
    /// Array write latency in core cycles (PCM writes ~3–5× reads).
    pub write_latency: Cycles,
    /// Entries in the device write buffer (Table II: 48).
    pub write_buffer: u32,
    /// Entries in the device read buffer (Table II: 64).
    pub read_buffer: u32,
    /// Sustained write bandwidth in bytes per core cycle (Optane-class
    /// devices sustain ~2 GB/s writes ⇒ ~0.7 B/cycle at 3 GHz).
    pub write_bytes_per_cycle: f64,
    /// Sustained read bandwidth in bytes per core cycle.
    pub read_bytes_per_cycle: f64,
}

/// Hybrid physical memory layout: DRAM occupies `[0, dram_bytes)` and
/// NVM occupies `[dram_bytes, dram_bytes + nvm_bytes)` of the physical
/// address space, as in the paper's GemOS port where the process uses
/// DRAM and checkpoints are stored in NVM.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MemoryLayout {
    /// Bytes of DRAM (Setup-I: 3 GB; Setup-II: 32 GB).
    pub dram_bytes: u64,
    /// Bytes of NVM (Setup-I: 2 GB; Setup-II: 0 — Setup-II measures
    /// tracking overhead only and keeps everything in DRAM).
    pub nvm_bytes: u64,
}

/// Full machine configuration (Table II).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Core frequency in Hz (Table II: 3 GHz).
    pub core_hz: u64,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified per-core L2.
    pub l2: CacheConfig,
    /// Shared L3 (modelled per-core slice as in Table II: 2 MiB/core).
    pub l3: CacheConfig,
    /// DRAM device parameters.
    pub dram: DramConfig,
    /// NVM device parameters.
    pub nvm: NvmConfig,
    /// Physical memory layout.
    pub layout: MemoryLayout,
}

impl MachineConfig {
    /// Table II **Setup-I**: end-to-end checkpoint experiments.
    ///
    /// 3 GHz core, 32 KiB 8-way L1D (3 cycles), 512 KiB 16-way L2
    /// (12 cycles), 2 MiB 16-way L3 slice (20 cycles), MSHRs 16/32/32,
    /// 64 B lines, DDR4-2400, PCM NVM with 48/64 write/read buffers,
    /// 3 GB DRAM + 2 GB NVM.
    pub fn setup_i() -> Self {
        Self {
            core_hz: 3_000_000_000,
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                latency: 3,
                mshrs: 16,
                line_bytes: 64,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                ways: 16,
                latency: 12,
                mshrs: 32,
                line_bytes: 64,
            },
            l3: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                ways: 16,
                latency: 20,
                mshrs: 32,
                line_bytes: 64,
            },
            dram: DramConfig::ddr4_2400(),
            nvm: NvmConfig::pcm(),
            layout: MemoryLayout {
                dram_bytes: 3 * 1024 * 1024 * 1024,
                nvm_bytes: 2 * 1024 * 1024 * 1024,
            },
        }
    }

    /// Table II **Setup-II**: tracking-overhead experiments.
    ///
    /// Identical core-side hierarchy, 32 GB DRAM, no NVM interface.
    pub fn setup_ii() -> Self {
        let mut cfg = Self::setup_i();
        cfg.layout = MemoryLayout {
            dram_bytes: 32 * 1024 * 1024 * 1024,
            nvm_bytes: 0,
        };
        cfg
    }

    /// Cycles in one millisecond at the configured core frequency.
    pub fn cycles_per_ms(&self) -> Cycles {
        self.core_hz / 1000
    }

    /// Converts a cycle count to nanoseconds at the configured core
    /// frequency.
    pub fn cycles_to_ns(&self, cycles: Cycles) -> f64 {
        cycles as f64 * 1e9 / self.core_hz as f64
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::setup_i()
    }
}

impl DramConfig {
    /// DDR4-2400-like timings expressed in 3 GHz core cycles.
    ///
    /// tCL ≈ 14.16 ns ⇒ ~42 cycles row hit at the device; with
    /// controller overheads we charge 60. Row miss adds tRP + tRCD
    /// (~28 ns) ⇒ ~145 total.
    pub fn ddr4_2400() -> Self {
        Self {
            row_hit: 60,
            row_miss: 145,
            banks: 16,
            row_bytes: 8192,
            bytes_per_cycle: 6.4,
        }
    }
}

impl NvmConfig {
    /// PCM-like timings expressed in 3 GHz core cycles, following the
    /// parameters the paper takes from its reference \[46\].
    pub fn pcm() -> Self {
        Self {
            read_latency: 300,
            write_latency: 1000,
            write_buffer: 48,
            read_buffer: 64,
            write_bytes_per_cycle: 0.7,
            read_bytes_per_cycle: 2.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_i_matches_table_ii() {
        let c = MachineConfig::setup_i();
        assert_eq!(c.core_hz, 3_000_000_000);
        assert_eq!(c.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.l1d.ways, 8);
        assert_eq!(c.l1d.latency, 3);
        assert_eq!(c.l1d.mshrs, 16);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.l2.ways, 16);
        assert_eq!(c.l2.latency, 12);
        assert_eq!(c.l2.mshrs, 32);
        assert_eq!(c.l3.size_bytes, 2 * 1024 * 1024);
        assert_eq!(c.l3.ways, 16);
        assert_eq!(c.l3.latency, 20);
        assert_eq!(c.l3.mshrs, 32);
        assert_eq!(c.l1d.line_bytes, 64);
        assert_eq!(c.l2.line_bytes, 64);
        assert_eq!(c.l3.line_bytes, 64);
        assert_eq!(c.nvm.write_buffer, 48);
        assert_eq!(c.nvm.read_buffer, 64);
        assert_eq!(c.layout.dram_bytes, 3 * 1024 * 1024 * 1024);
        assert_eq!(c.layout.nvm_bytes, 2 * 1024 * 1024 * 1024);
    }

    #[test]
    fn setup_ii_matches_table_ii() {
        let c = MachineConfig::setup_ii();
        assert_eq!(c.layout.dram_bytes, 32 * 1024 * 1024 * 1024);
        assert_eq!(c.layout.nvm_bytes, 0);
        // Core-side hierarchy is shared between setups.
        assert_eq!(c.l1d, MachineConfig::setup_i().l1d);
    }

    #[test]
    fn cache_geometry() {
        let c = MachineConfig::setup_i();
        assert_eq!(c.l1d.sets(), 64);
        assert_eq!(c.l2.sets(), 512);
        assert_eq!(c.l3.sets(), 2048);
    }

    #[test]
    fn nvm_slower_than_dram_and_write_asymmetric() {
        let c = MachineConfig::setup_i();
        assert!(c.nvm.read_latency > c.dram.row_miss);
        assert!(c.nvm.write_latency > c.nvm.read_latency);
        assert!(c.nvm.write_bytes_per_cycle < c.dram.bytes_per_cycle);
    }

    #[test]
    fn time_conversions() {
        let c = MachineConfig::setup_i();
        assert_eq!(c.cycles_per_ms(), 3_000_000);
        assert!((c.cycles_to_ns(3) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        CacheConfig {
            size_bytes: 48 * 1024,
            ways: 8,
            latency: 3,
            mshrs: 16,
            line_bytes: 64,
        }
        .sets();
    }
}
