//! Simulation counters.
//!
//! Every component of the hierarchy records its events into a
//! [`MemStats`] snapshot; experiments diff snapshots across phases
//! (for example, user-mode vs checkpoint-time traffic in Figure 12).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Sub;

use crate::Cycles;

/// Per-cache-level hit/miss counters.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LevelStats {
    /// Accesses that hit in this level.
    pub hits: u64,
    /// Accesses that missed and were forwarded down.
    pub misses: u64,
    /// Dirty lines written back to the next level on eviction.
    pub writebacks: u64,
}

impl LevelStats {
    /// Total accesses observed by the level.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when the level saw no traffic.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

// Snapshot diffs saturate instead of panicking: experiments sometimes
// diff snapshots taken from different machines (or after a reset),
// and a nonsensical-but-zero delta beats aborting a whole figure run.
impl Sub for LevelStats {
    type Output = LevelStats;

    fn sub(self, rhs: LevelStats) -> LevelStats {
        LevelStats {
            hits: self.hits.saturating_sub(rhs.hits),
            misses: self.misses.saturating_sub(rhs.misses),
            writebacks: self.writebacks.saturating_sub(rhs.writebacks),
        }
    }
}

/// Aggregate counters for a simulated machine.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MemStats {
    /// Demand loads issued by the core.
    pub loads: u64,
    /// Demand stores issued by the core.
    pub stores: u64,
    /// L1D counters.
    pub l1d: LevelStats,
    /// L2 counters.
    pub l2: LevelStats,
    /// L3 counters.
    pub l3: LevelStats,
    /// Line reads served by DRAM.
    pub dram_reads: u64,
    /// Line writes absorbed by DRAM.
    pub dram_writes: u64,
    /// DRAM row-buffer hits.
    pub dram_row_hits: u64,
    /// Line reads served by NVM.
    pub nvm_reads: u64,
    /// Line writes absorbed by NVM.
    pub nvm_writes: u64,
    /// Cycles spent stalled because the NVM write buffer was full.
    pub nvm_write_stall_cycles: Cycles,
    /// Total simulated cycles elapsed.
    pub cycles: Cycles,
    /// Extra (non-demand) accesses injected by snooping hardware such as
    /// the Prosper tracker's bitmap loads/stores.
    pub injected_loads: u64,
    /// Extra stores injected by snooping hardware.
    pub injected_stores: u64,
}

impl MemStats {
    /// Total demand accesses.
    pub fn demand_accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Total bytes moved to/from NVM assuming line-sized transfers.
    pub fn nvm_line_transfers(&self) -> u64 {
        self.nvm_reads + self.nvm_writes
    }
}

impl Sub for MemStats {
    type Output = MemStats;

    fn sub(self, rhs: MemStats) -> MemStats {
        MemStats {
            loads: self.loads.saturating_sub(rhs.loads),
            stores: self.stores.saturating_sub(rhs.stores),
            l1d: self.l1d - rhs.l1d,
            l2: self.l2 - rhs.l2,
            l3: self.l3 - rhs.l3,
            dram_reads: self.dram_reads.saturating_sub(rhs.dram_reads),
            dram_writes: self.dram_writes.saturating_sub(rhs.dram_writes),
            dram_row_hits: self.dram_row_hits.saturating_sub(rhs.dram_row_hits),
            nvm_reads: self.nvm_reads.saturating_sub(rhs.nvm_reads),
            nvm_writes: self.nvm_writes.saturating_sub(rhs.nvm_writes),
            nvm_write_stall_cycles: self
                .nvm_write_stall_cycles
                .saturating_sub(rhs.nvm_write_stall_cycles),
            cycles: self.cycles.saturating_sub(rhs.cycles),
            injected_loads: self.injected_loads.saturating_sub(rhs.injected_loads),
            injected_stores: self.injected_stores.saturating_sub(rhs.injected_stores),
        }
    }
}

impl fmt::Display for MemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles={} loads={} stores={} (injected {}L/{}S)",
            self.cycles, self.loads, self.stores, self.injected_loads, self.injected_stores
        )?;
        writeln!(
            f,
            "L1D {}/{} L2 {}/{} L3 {}/{} (hits/misses)",
            self.l1d.hits,
            self.l1d.misses,
            self.l2.hits,
            self.l2.misses,
            self.l3.hits,
            self.l3.misses
        )?;
        write!(
            f,
            "DRAM r={} w={} rowhit={} | NVM r={} w={} wstall={}",
            self.dram_reads,
            self.dram_writes,
            self.dram_row_hits,
            self.nvm_reads,
            self.nvm_writes,
            self.nvm_write_stall_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ratios() {
        let l = LevelStats {
            hits: 3,
            misses: 1,
            writebacks: 0,
        };
        assert_eq!(l.accesses(), 4);
        assert!((l.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(LevelStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn snapshot_diff() {
        let a = MemStats {
            loads: 10,
            cycles: 100,
            l1d: LevelStats {
                hits: 8,
                ..LevelStats::default()
            },
            ..MemStats::default()
        };
        let mut b = a;
        b.loads = 25;
        b.cycles = 260;
        b.l1d.hits = 20;
        let d = b - a;
        assert_eq!(d.loads, 15);
        assert_eq!(d.cycles, 160);
        assert_eq!(d.l1d.hits, 12);
    }

    #[test]
    fn reversed_diff_saturates_to_zero() {
        let small = MemStats {
            loads: 1,
            cycles: 10,
            ..MemStats::default()
        };
        let big = MemStats {
            loads: 5,
            cycles: 50,
            nvm_writes: 3,
            l1d: LevelStats {
                hits: 7,
                misses: 2,
                writebacks: 1,
            },
            ..MemStats::default()
        };
        let d = small - big;
        assert_eq!(d.loads, 0);
        assert_eq!(d.cycles, 0);
        assert_eq!(d.nvm_writes, 0);
        assert_eq!(d.l1d, LevelStats::default());
    }

    #[test]
    fn level_reversed_diff_saturates_per_field() {
        let a = LevelStats {
            hits: 10,
            misses: 1,
            writebacks: 0,
        };
        let b = LevelStats {
            hits: 4,
            misses: 6,
            writebacks: 2,
        };
        // Mixed direction: hits grew, misses/writebacks "shrank".
        let d = a - b;
        assert_eq!(
            d,
            LevelStats {
                hits: 6,
                misses: 0,
                writebacks: 0
            }
        );
    }

    #[test]
    fn display_is_nonempty() {
        let s = format!("{}", MemStats::default());
        assert!(s.contains("cycles=0"));
        assert!(s.contains("NVM"));
    }
}
