//! Memory controller: routes physical line accesses to DRAM or NVM by
//! address, following the hybrid layout in
//! [`config::MemoryLayout`](crate::config::MemoryLayout).

use crate::addr::PhysAddr;
use crate::config::{DramConfig, MemoryLayout, NvmConfig};
use crate::dram::Dram;
use crate::nvm::Nvm;
use crate::Cycles;

/// Which device backs a physical address.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Device {
    /// Volatile DRAM (process working memory).
    Dram,
    /// Non-volatile memory (checkpoint/persistent storage).
    Nvm,
}

/// The memory controller plus both devices.
#[derive(Clone, Debug)]
pub struct MemoryController {
    layout: MemoryLayout,
    dram: Dram,
    nvm: Nvm,
}

impl MemoryController {
    /// Builds a controller over idle devices.
    pub fn new(layout: MemoryLayout, dram_cfg: DramConfig, nvm_cfg: NvmConfig) -> Self {
        Self {
            layout,
            dram: Dram::new(dram_cfg),
            nvm: Nvm::new(nvm_cfg),
        }
    }

    /// The physical layout served by this controller.
    pub fn layout(&self) -> MemoryLayout {
        self.layout
    }

    /// Classifies a physical address.
    ///
    /// # Panics
    ///
    /// Panics if the address is beyond the installed memory.
    pub fn device_of(&self, addr: PhysAddr) -> Device {
        let raw = addr.raw();
        if raw < self.layout.dram_bytes {
            Device::Dram
        } else if raw < self.layout.dram_bytes + self.layout.nvm_bytes {
            Device::Nvm
        } else {
            panic!("physical address {addr} beyond installed memory");
        }
    }

    /// First physical address of the NVM region.
    pub fn nvm_base(&self) -> PhysAddr {
        PhysAddr::new(self.layout.dram_bytes)
    }

    /// Services one line-sized access at absolute cycle `now`.
    pub fn access(&mut self, now: Cycles, addr: PhysAddr, is_write: bool) -> Cycles {
        match self.device_of(addr) {
            Device::Dram => self.dram.access(addr, is_write),
            Device::Nvm => {
                if is_write {
                    self.nvm.write(now, addr)
                } else {
                    self.nvm.read(now, addr)
                }
            }
        }
    }

    /// Read-only view of the DRAM device.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Read-only view of the NVM device.
    pub fn nvm(&self) -> &Nvm {
        &self.nvm
    }

    /// Mutable access to the NVM device (used by bulk-copy modelling).
    pub fn nvm_mut(&mut self) -> &mut Nvm {
        &mut self.nvm
    }

    /// Cycles to copy `bytes` from DRAM to NVM as a pipelined stream:
    /// bounded by the slower of the DRAM read stream and the NVM write
    /// stream (in practice always the NVM write bandwidth).
    pub fn dram_to_nvm_copy_cycles(&self, bytes: u64) -> Cycles {
        self.dram
            .stream_cycles(bytes)
            .max(self.nvm.stream_write_cycles(bytes))
    }

    /// Cycles to copy `bytes` within NVM (read + write streams overlap;
    /// bound is the write stream plus read-stream startup).
    pub fn nvm_to_nvm_copy_cycles(&self, bytes: u64) -> Cycles {
        self.nvm
            .stream_read_cycles(bytes)
            .max(self.nvm.stream_write_cycles(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn ctrl() -> MemoryController {
        let c = MachineConfig::setup_i();
        MemoryController::new(c.layout, c.dram, c.nvm)
    }

    #[test]
    fn routing_by_address() {
        let m = ctrl();
        assert_eq!(m.device_of(PhysAddr::new(0)), Device::Dram);
        assert_eq!(
            m.device_of(PhysAddr::new(3 * 1024 * 1024 * 1024 - 1)),
            Device::Dram
        );
        assert_eq!(m.device_of(m.nvm_base()), Device::Nvm);
    }

    #[test]
    #[should_panic(expected = "beyond installed memory")]
    fn out_of_range_panics() {
        ctrl().device_of(PhysAddr::new(5 * 1024 * 1024 * 1024));
    }

    #[test]
    fn nvm_write_slower_than_dram_write() {
        let mut m = ctrl();
        let d = m.access(0, PhysAddr::new(0), true);
        // Saturate the NVM write buffer so the array latency shows.
        let base = m.nvm_base();
        let mut worst = 0;
        for i in 0..60 {
            worst = worst.max(m.access(0, base + i * 64, true));
        }
        assert!(worst > d);
    }

    #[test]
    fn copy_bound_by_nvm_write_bandwidth() {
        let m = ctrl();
        let bytes = 1 << 20;
        assert_eq!(
            m.dram_to_nvm_copy_cycles(bytes),
            m.nvm().stream_write_cycles(bytes)
        );
    }

    #[test]
    fn stats_reach_devices() {
        let mut m = ctrl();
        m.access(0, PhysAddr::new(64), false);
        m.access(0, m.nvm_base(), false);
        assert_eq!(m.dram().reads, 1);
        assert_eq!(m.nvm().reads, 1);
    }
}
