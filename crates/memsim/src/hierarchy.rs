//! Three-level cache hierarchy composition.
//!
//! Implements the Table II hierarchy: per-core L1D and L2 plus an L3
//! slice, all 64 B lines, write-back/write-allocate, with dirty victims
//! propagated downward. The hierarchy reports where an access was
//! served and any line writes that reached memory.

use crate::addr::PhysAddr;
use crate::cache::{AccessKind, Cache};
use crate::config::MachineConfig;
use crate::stats::LevelStats;
use crate::Cycles;

/// Where an access was ultimately served from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServedBy {
    /// Hit in the L1 data cache.
    L1d,
    /// Hit in the unified L2.
    L2,
    /// Hit in the shared L3 slice.
    L3,
    /// Missed everywhere; served by DRAM or NVM.
    Memory,
}

/// Result of pushing one access through the hierarchy.
#[derive(Clone, Debug)]
pub struct HierarchyResult {
    /// Which level served the access.
    pub served_by: ServedBy,
    /// Sum of cache-level latencies incurred on the access path (the
    /// memory-device latency is added by the machine).
    pub cache_latency: Cycles,
    /// Dirty lines that were evicted out of the L3 and must be written
    /// to memory.
    pub memory_writebacks: Vec<PhysAddr>,
}

/// The composed L1D/L2/L3 hierarchy.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    l1d: Cache,
    l2: Cache,
    l3: Cache,
}

impl Hierarchy {
    /// Builds an empty hierarchy from a machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        Self {
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
        }
    }

    /// Pushes one access through the hierarchy, filling lines upward
    /// and propagating dirty victims downward.
    pub fn access(&mut self, addr: PhysAddr, kind: AccessKind) -> HierarchyResult {
        let mut memory_writebacks = Vec::new();
        let mut latency = self.l1d.config().latency;

        let r1 = self.l1d.access(addr, kind);
        // A dirty L1 victim is written into L2 (write-back).
        if let Some(v) = r1.writeback {
            let r2 = self.l2.access(v, AccessKind::Write);
            if let Some(v2) = r2.writeback {
                let r3 = self.l3.access(v2, AccessKind::Write);
                if let Some(v3) = r3.writeback {
                    memory_writebacks.push(v3);
                }
            }
        }
        if r1.hit {
            return HierarchyResult {
                served_by: ServedBy::L1d,
                cache_latency: latency,
                memory_writebacks,
            };
        }

        latency += self.l2.config().latency;
        // The fill into L1 comes from L2; the L2 sees a read regardless
        // of the demand kind (write-allocate fetches the line first).
        let r2 = self.l2.access(addr, AccessKind::Read);
        if let Some(v) = r2.writeback {
            let r3 = self.l3.access(v, AccessKind::Write);
            if let Some(v3) = r3.writeback {
                memory_writebacks.push(v3);
            }
        }
        if r2.hit {
            return HierarchyResult {
                served_by: ServedBy::L2,
                cache_latency: latency,
                memory_writebacks,
            };
        }

        latency += self.l3.config().latency;
        let r3 = self.l3.access(addr, AccessKind::Read);
        if let Some(v3) = r3.writeback {
            memory_writebacks.push(v3);
        }
        if r3.hit {
            return HierarchyResult {
                served_by: ServedBy::L3,
                cache_latency: latency,
                memory_writebacks,
            };
        }

        HierarchyResult {
            served_by: ServedBy::Memory,
            cache_latency: latency,
            memory_writebacks,
        }
    }

    /// `clwb`-style flush: cleans the line in all levels, returning
    /// `true` if any level held it dirty (a write-back to memory is
    /// then required).
    pub fn clwb(&mut self, addr: PhysAddr) -> bool {
        let d1 = self.l1d.flush_line(addr);
        let d2 = self.l2.flush_line(addr);
        let d3 = self.l3.flush_line(addr);
        d1 || d2 || d3
    }

    /// Per-level counters.
    pub fn level_stats(&self) -> (LevelStats, LevelStats, LevelStats) {
        (self.l1d.stats(), self.l2.stats(), self.l3.stats())
    }

    /// Returns `true` if any level currently holds the line.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        self.l1d.contains(addr) || self.l2.contains(addr) || self.l3.contains(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn h() -> Hierarchy {
        Hierarchy::new(&MachineConfig::setup_i())
    }

    #[test]
    fn cold_miss_goes_to_memory() {
        let mut hier = h();
        let r = hier.access(PhysAddr::new(0x1000), AccessKind::Read);
        assert_eq!(r.served_by, ServedBy::Memory);
        assert_eq!(r.cache_latency, 3 + 12 + 20);
    }

    #[test]
    fn second_access_hits_l1() {
        let mut hier = h();
        hier.access(PhysAddr::new(0x1000), AccessKind::Read);
        let r = hier.access(PhysAddr::new(0x1000), AccessKind::Read);
        assert_eq!(r.served_by, ServedBy::L1d);
        assert_eq!(r.cache_latency, 3);
    }

    #[test]
    fn l1_eviction_falls_to_l2() {
        let mut hier = h();
        let base = PhysAddr::new(0);
        // L1D: 64 sets x 8 ways. Touch 9 lines in the same set
        // (stride = sets * line = 4096) to evict the first.
        for i in 0..9 {
            hier.access(base + i * 4096, AccessKind::Read);
        }
        let r = hier.access(base, AccessKind::Read);
        assert_eq!(r.served_by, ServedBy::L2);
    }

    #[test]
    fn dirty_eviction_writes_back_into_l2() {
        let mut hier = h();
        let base = PhysAddr::new(0);
        hier.access(base, AccessKind::Write);
        for i in 1..=8 {
            hier.access(base + i * 4096, AccessKind::Read);
        }
        // base was evicted dirty from L1 into L2; flushing it from L2
        // must report dirty.
        assert!(hier.clwb(base) || hier.contains(base));
    }

    #[test]
    fn clwb_reports_dirty_once() {
        let mut hier = h();
        let a = PhysAddr::new(0x40);
        hier.access(a, AccessKind::Write);
        assert!(hier.clwb(a));
        assert!(!hier.clwb(a));
    }

    #[test]
    fn stats_accumulate_per_level() {
        let mut hier = h();
        hier.access(PhysAddr::new(0), AccessKind::Read);
        hier.access(PhysAddr::new(0), AccessKind::Read);
        let (l1, l2, l3) = hier.level_stats();
        assert_eq!(l1.hits, 1);
        assert_eq!(l1.misses, 1);
        assert_eq!(l2.misses, 1);
        assert_eq!(l3.misses, 1);
        assert_eq!(l2.hits, 0);
        assert_eq!(l3.hits, 0);
    }
}
