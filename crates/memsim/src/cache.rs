//! A set-associative, write-back/write-allocate cache with LRU
//! replacement and an MSHR-occupancy model.
//!
//! The cache is *functional for tags only*: it tracks which lines are
//! present and dirty so that hit/miss/writeback behaviour (and thus
//! latency and downstream traffic) is faithful, but it does not store
//! data — data movement in the simulator is carried by the workload and
//! OS models.

use serde::{Deserialize, Serialize};

use crate::addr::PhysAddr;
use crate::config::CacheConfig;
use crate::stats::LevelStats;

/// Outcome of a cache lookup-and-fill.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CacheAccessResult {
    /// Whether the access hit.
    pub hit: bool,
    /// Physical line address of a dirty victim that must be written
    /// back to the next level, if the fill evicted one.
    pub writeback: Option<PhysAddr>,
}

/// Kind of access presented to a cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AccessKind {
    /// Demand or injected load.
    Read,
    /// Demand or injected store (marks the line dirty).
    Write,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Higher = more recently used.
    lru: u64,
}

impl Line {
    const INVALID: Line = Line {
        tag: 0,
        valid: false,
        dirty: false,
        lru: 0,
    };
}

/// A single cache level.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: u64,
    lines: Vec<Line>,
    lru_clock: u64,
    stats: LevelStats,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::sets`]).
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        let total = sets * u64::from(cfg.ways);
        Self {
            cfg,
            sets,
            lines: vec![Line::INVALID; total as usize],
            lru_clock: 0,
            stats: LevelStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> LevelStats {
        self.stats
    }

    fn index_of(&self, line_addr: u64) -> (u64, u64) {
        let set = (line_addr / self.cfg.line_bytes) & (self.sets - 1);
        let tag = line_addr / self.cfg.line_bytes / self.sets;
        (set, tag)
    }

    fn set_slice(&mut self, set: u64) -> &mut [Line] {
        let ways = self.cfg.ways as usize;
        let start = set as usize * ways;
        &mut self.lines[start..start + ways]
    }

    /// Looks up `addr` (any byte address), filling the line on a miss.
    ///
    /// Returns whether the access hit and any dirty victim evicted by
    /// the fill. The line is marked dirty on `Write`.
    pub fn access(&mut self, addr: PhysAddr, kind: AccessKind) -> CacheAccessResult {
        let line_addr = addr.cache_line().raw();
        let (set, tag) = self.index_of(line_addr);
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let sets = self.sets;
        let line_bytes = self.cfg.line_bytes;

        let ways = self.set_slice(set);
        // Hit path.
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = clock;
            if kind == AccessKind::Write {
                line.dirty = true;
            }
            self.stats.hits += 1;
            return CacheAccessResult {
                hit: true,
                writeback: None,
            };
        }

        // Miss: pick an invalid way, else the LRU way.
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
            .expect("cache set has at least one way");
        let writeback = (victim.valid && victim.dirty)
            .then(|| PhysAddr::new((victim.tag * sets + set) * line_bytes));
        *victim = Line {
            tag,
            valid: true,
            dirty: kind == AccessKind::Write,
            lru: clock,
        };
        self.stats.misses += 1;
        if writeback.is_some() {
            self.stats.writebacks += 1;
        }
        CacheAccessResult {
            hit: false,
            writeback,
        }
    }

    /// Returns `true` if the line containing `addr` is present.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        let line_addr = addr.cache_line().raw();
        let set = (line_addr / self.cfg.line_bytes) & (self.sets - 1);
        let tag = line_addr / self.cfg.line_bytes / self.sets;
        let ways = self.cfg.ways as usize;
        let start = set as usize * ways;
        self.lines[start..start + ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates the line containing `addr`, returning `true` if the
    /// line was present and dirty (i.e. a `clwb`/`clflush`-style
    /// operation would generate a write-back).
    pub fn flush_line(&mut self, addr: PhysAddr) -> bool {
        let line_addr = addr.cache_line().raw();
        let (set, tag) = self.index_of(line_addr);
        let ways = self.set_slice(set);
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            let was_dirty = line.dirty;
            // clwb semantics: the line stays resident but becomes clean.
            line.dirty = false;
            if was_dirty {
                self.stats.writebacks += 1;
            }
            was_dirty
        } else {
            false
        }
    }

    /// Invalidates every line, returning the number of dirty lines that
    /// would have been written back.
    pub fn flush_all(&mut self) -> u64 {
        let mut dirty = 0;
        for line in &mut self.lines {
            if line.valid && line.dirty {
                dirty += 1;
            }
            *line = Line::INVALID;
        }
        self.stats.writebacks += dirty;
        dirty
    }

    /// Number of currently valid lines (for tests and diagnostics).
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B cache.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            latency: 1,
            mshrs: 4,
            line_bytes: 64,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        let a = PhysAddr::new(0x1000);
        assert!(!c.access(a, AccessKind::Read).hit);
        assert!(c.access(a, AccessKind::Read).hit);
        assert!(c.access(a + 63, AccessKind::Read).hit, "same line hits");
        assert!(!c.access(a + 64, AccessKind::Read).hit, "next line misses");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three lines mapping to the same set (set stride = 4 sets * 64B = 256B).
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(256);
        let d = PhysAddr::new(512);
        c.access(a, AccessKind::Read);
        c.access(b, AccessKind::Read);
        c.access(a, AccessKind::Read); // a is now MRU
        c.access(d, AccessKind::Read); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn dirty_victim_writeback_address() {
        let mut c = tiny();
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(256);
        let d = PhysAddr::new(512);
        c.access(a, AccessKind::Write);
        c.access(b, AccessKind::Read);
        let res = c.access(d, AccessKind::Read); // evicts a (LRU), which is dirty
        assert_eq!(res.writeback, Some(a));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_victim_no_writeback() {
        let mut c = tiny();
        c.access(PhysAddr::new(0), AccessKind::Read);
        c.access(PhysAddr::new(256), AccessKind::Read);
        let res = c.access(PhysAddr::new(512), AccessKind::Read);
        assert_eq!(res.writeback, None);
    }

    #[test]
    fn flush_line_clwb_semantics() {
        let mut c = tiny();
        let a = PhysAddr::new(0x40);
        c.access(a, AccessKind::Write);
        assert!(c.flush_line(a), "dirty line reports writeback");
        assert!(c.contains(a), "clwb keeps the line resident");
        assert!(!c.flush_line(a), "second flush finds a clean line");
        assert!(!c.flush_line(PhysAddr::new(0x4000)), "absent line");
    }

    #[test]
    fn flush_all_counts_dirty() {
        let mut c = tiny();
        c.access(PhysAddr::new(0), AccessKind::Write);
        c.access(PhysAddr::new(64), AccessKind::Write);
        c.access(PhysAddr::new(128), AccessKind::Read);
        assert_eq!(c.flush_all(), 2);
        assert_eq!(c.valid_lines(), 0);
    }

    #[test]
    fn write_marks_dirty_on_hit_too() {
        let mut c = tiny();
        let a = PhysAddr::new(0);
        c.access(a, AccessKind::Read);
        c.access(a, AccessKind::Write);
        assert!(c.flush_line(a));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        for i in 0..4 {
            c.access(PhysAddr::new(i * 64), AccessKind::Read);
        }
        for i in 0..4 {
            assert!(c.contains(PhysAddr::new(i * 64)));
        }
        assert_eq!(c.valid_lines(), 4);
    }
}
