//! A data-TLB model.
//!
//! Both page-granularity dirty-tracking baselines lean on the address
//! translation machinery (the page-table walker sets the A/D bits),
//! and gem5 models TLBs; this TLB lets the OS layer charge realistic
//! translation costs: hits are free (folded into the L1 latency),
//! misses pay a multi-level page-table walk.

use crate::addr::VirtAddr;
use crate::Cycles;

/// Cycles for a four-level page-table walk on a TLB miss (walker
/// cache hits keep this well below four full memory accesses).
pub const PAGE_WALK_CYCLES: Cycles = 30;

/// A fully-associative data TLB with LRU replacement.
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (vpn, lru)
    capacity: usize,
    clock: u64,
    /// Translation hits.
    pub hits: u64,
    /// Translation misses (page walks performed).
    pub misses: u64,
}

impl Tlb {
    /// Builds an empty TLB with `capacity` entries (64 is typical for
    /// an L1 dTLB).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translates `vaddr`: returns the cycle cost of the translation
    /// (0 on a hit, [`PAGE_WALK_CYCLES`] on a miss) and installs the
    /// mapping.
    pub fn access(&mut self, vaddr: VirtAddr) -> Cycles {
        let vpn = vaddr.page_number();
        self.clock += 1;
        if let Some(e) = self.entries.iter_mut().find(|(v, _)| *v == vpn) {
            e.1 = self.clock;
            self.hits += 1;
            return 0;
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, l))| *l)
                .map(|(i, _)| i)
                .expect("capacity > 0");
            self.entries.swap_remove(lru);
        }
        self.entries.push((vpn, self.clock));
        PAGE_WALK_CYCLES
    }

    /// Flushes all entries (address-space switch without ASIDs).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Currently resident translations.
    pub fn resident(&self) -> usize {
        self.entries.len()
    }

    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_then_hits() {
        let mut t = Tlb::new(4);
        assert_eq!(t.access(VirtAddr::new(0x1000)), PAGE_WALK_CYCLES);
        assert_eq!(t.access(VirtAddr::new(0x1fff)), 0, "same page hits");
        assert_eq!(t.hits, 1);
        assert_eq!(t.misses, 1);
        assert!((t.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.access(VirtAddr::new(0x1000)); // page 1
        t.access(VirtAddr::new(0x2000)); // page 2
        t.access(VirtAddr::new(0x1000)); // page 1 -> MRU
        t.access(VirtAddr::new(0x3000)); // evicts page 2
        assert_eq!(t.access(VirtAddr::new(0x1000)), 0);
        assert_eq!(t.access(VirtAddr::new(0x2000)), PAGE_WALK_CYCLES);
    }

    #[test]
    fn flush_forces_walks() {
        let mut t = Tlb::new(8);
        t.access(VirtAddr::new(0x5000));
        assert_eq!(t.resident(), 1);
        t.flush();
        assert_eq!(t.resident(), 0);
        assert_eq!(t.access(VirtAddr::new(0x5000)), PAGE_WALK_CYCLES);
    }

    #[test]
    fn capacity_bounded() {
        let mut t = Tlb::new(4);
        for i in 0..100u64 {
            t.access(VirtAddr::new(i * 4096));
        }
        assert_eq!(t.resident(), 4);
        assert_eq!(t.misses, 100);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        Tlb::new(0);
    }

    #[test]
    fn empty_tlb_ratio_zero() {
        assert_eq!(Tlb::new(4).miss_ratio(), 0.0);
    }
}
