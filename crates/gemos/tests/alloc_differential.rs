//! Differential property tests: the lock-free hierarchical frame
//! allocator against the serial free-list reference.
//!
//! A [`FrameAlloc`] and a [`PhysMemory`] built over the same layout
//! are driven through identical random alloc/free/reserve sequences.
//! The serial `FrameAlloc::alloc` path implements the exact same
//! deterministic policy as the reference (always the lowest free
//! frame), so the comparison is *exact*: identical frame numbers,
//! identical out-of-memory occurrences, identical free errors,
//! identical `available_frames` after every single operation — plus
//! frame conservation (held + available == installed) and
//! no-double-hand-out invariants that each side must uphold
//! independently. A scoped-thread smoke test then hammers the
//! reservation-based `alloc_for` path concurrently and checks exact
//! accounting afterwards, which the reference cannot do at all.

use proptest::prelude::*;
use prosper_gemos::llalloc::FrameAlloc;
use prosper_gemos::physmem::{PhysMemory, Pool};
use prosper_memsim::config::MemoryLayout;
use prosper_memsim::PAGE_SIZE;
use std::collections::BTreeSet;

/// Small enough that random sequences actually exhaust both pools.
const DRAM_FRAMES: u64 = 24;
const NVM_FRAMES: u64 = 18;

fn small_layout() -> MemoryLayout {
    MemoryLayout {
        dram_bytes: DRAM_FRAMES * PAGE_SIZE,
        nvm_bytes: NVM_FRAMES * PAGE_SIZE,
    }
}

#[derive(Clone, Debug)]
enum Op {
    /// Allocate one frame from the given pool on both allocators.
    Alloc(Pool),
    /// Free a currently-held frame (picked by index into the held
    /// set) on both allocators.
    FreeHeld(usize),
    /// Free a raw, probably-invalid frame number on both allocators —
    /// exercises `OutOfRange` / `DoubleFree` parity.
    FreeRaw(u64),
    /// Reserve a contiguous NVM region of `pages` frames on both.
    ReserveNvm(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => prop_oneof![Just(Pool::Dram), Just(Pool::Nvm)].prop_map(Op::Alloc),
        3 => any::<usize>().prop_map(Op::FreeHeld),
        1 => (0u64..DRAM_FRAMES + NVM_FRAMES + 8).prop_map(Op::FreeRaw),
        2 => (1u64..5).prop_map(Op::ReserveNvm),
    ]
}

/// Drives the lock-free allocator and the serial reference in
/// lock-step over the same layout.
struct Differential {
    lockfree: FrameAlloc,
    reference: PhysMemory,
    /// Every frame currently handed out, in hand-out order.
    held: Vec<u64>,
}

impl Differential {
    fn new() -> Self {
        Differential {
            lockfree: FrameAlloc::new(small_layout()),
            reference: PhysMemory::new(small_layout()),
            held: Vec::new(),
        }
    }

    fn alloc(&mut self, pool: Pool) {
        let lf = self.lockfree.alloc(pool);
        let rf = self.reference.alloc(pool);
        assert_eq!(lf, rf, "alloc({pool:?}) diverged");
        if let Ok(pfn) = lf {
            assert!(
                !self.held.contains(&pfn),
                "frame {pfn} handed out twice while still held"
            );
            self.held.push(pfn);
        }
    }

    fn free_held(&mut self, index: usize) {
        if self.held.is_empty() {
            return;
        }
        let pfn = self.held.swap_remove(index % self.held.len());
        let lf = self.lockfree.free(pfn);
        let rf = self.reference.free(pfn);
        assert_eq!(lf, rf, "free({pfn}) diverged");
        assert_eq!(lf, Ok(()), "freeing a held frame must succeed");
    }

    fn free_raw(&mut self, pfn: u64) {
        // Only compare errors: a raw pfn that happens to be held is
        // a legitimate free and must go through `free_held`'s
        // bookkeeping instead.
        if self.held.contains(&pfn) {
            return;
        }
        let lf = self.lockfree.free(pfn);
        let rf = self.reference.free(pfn);
        assert_eq!(lf, rf, "free({pfn}) error diverged");
        assert!(lf.is_err(), "freeing an unheld frame must fail");
    }

    fn reserve_nvm(&mut self, pages: u64) {
        let bytes = pages * PAGE_SIZE;
        let lf = self.lockfree.reserve_nvm_region(bytes);
        let rf = self.reference.reserve_nvm_region(bytes);
        assert_eq!(lf, rf, "reserve_nvm_region({pages} pages) diverged");
        if let Ok(base) = lf {
            let base_pfn = base.raw() / PAGE_SIZE;
            for pfn in base_pfn..base_pfn + pages {
                assert!(
                    !self.held.contains(&pfn),
                    "reserved frame {pfn} was already held"
                );
                self.held.push(pfn);
            }
        }
    }

    /// The invariants that must hold after *every* operation:
    /// identical availability on both sides, and exact frame
    /// conservation against the held set.
    fn check_accounting(&self) {
        for (pool, installed) in [(Pool::Dram, DRAM_FRAMES), (Pool::Nvm, NVM_FRAMES)] {
            let lf = self.lockfree.available_frames(pool);
            let rf = self.reference.available_frames(pool);
            assert_eq!(lf, rf, "available_frames({pool:?}) diverged");
            let held_in_pool = self
                .held
                .iter()
                .filter(|&&pfn| match pool {
                    Pool::Dram => pfn < DRAM_FRAMES,
                    Pool::Nvm => pfn >= DRAM_FRAMES,
                })
                .count() as u64;
            assert_eq!(
                held_in_pool + lf,
                installed,
                "{pool:?} frames not conserved: {held_in_pool} held + {lf} available != {installed}"
            );
        }
        // The lock-free side's NVM bitmap must agree with the held set
        // exactly (the reference has no equivalent introspection).
        let nvm_held: BTreeSet<u64> = self
            .held
            .iter()
            .copied()
            .filter(|&pfn| pfn >= DRAM_FRAMES)
            .collect();
        let nvm_bitmap: BTreeSet<u64> = self.lockfree.nvm_allocated_pfns().into_iter().collect();
        assert_eq!(nvm_bitmap, nvm_held, "NVM bitmap diverged from held set");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random alloc/free/reserve sequences: every operation must
    /// return the identical result on both allocators, and after
    /// every operation both report identical availability with exact
    /// frame conservation.
    #[test]
    fn lockfree_matches_reference_on_random_sequences(
        ops in prop::collection::vec(arb_op(), 1..120),
    ) {
        let mut d = Differential::new();
        d.check_accounting();
        for op in &ops {
            match *op {
                Op::Alloc(pool) => d.alloc(pool),
                Op::FreeHeld(index) => d.free_held(index),
                Op::FreeRaw(pfn) => d.free_raw(pfn),
                Op::ReserveNvm(pages) => d.reserve_nvm(pages),
            }
            d.check_accounting();
        }
        // Drain everything: both sides must come back to a full pool.
        while !d.held.is_empty() {
            d.free_held(0);
        }
        d.check_accounting();
        prop_assert_eq!(d.lockfree.available_frames(Pool::Dram), DRAM_FRAMES);
        prop_assert_eq!(d.lockfree.available_frames(Pool::Nvm), NVM_FRAMES);
    }

    /// OOM parity under sustained pressure: allocate past exhaustion
    /// in both pools, interleaving frees, and require that the two
    /// allocators run dry at exactly the same operations.
    #[test]
    fn oom_parity_under_pressure(
        frees in prop::collection::vec(any::<usize>(), 0..16),
    ) {
        let mut d = Differential::new();
        let mut free_iter = frees.iter();
        // 2x the installed frames guarantees both pools hit OOM even
        // with every interleaved free landing in the same pool.
        for i in 0..2 * (DRAM_FRAMES + NVM_FRAMES) {
            let pool = if i % 2 == 0 { Pool::Dram } else { Pool::Nvm };
            d.alloc(pool);
            if i % 7 == 3 {
                if let Some(&index) = free_iter.next() {
                    d.free_held(index);
                }
            }
            d.check_accounting();
        }
        // Both must be reporting OOM on at least one pool by now.
        let dram_dry = d.lockfree.available_frames(Pool::Dram) == 0;
        let nvm_dry = d.lockfree.available_frames(Pool::Nvm) == 0;
        prop_assert!(dram_dry || nvm_dry, "pressure loop never exhausted a pool");
    }
}

/// Concurrent smoke test for the reservation path: scoped threads
/// hammer `alloc_for`/`free` on the lock-free allocator, then the
/// main thread checks exact accounting — every kept frame unique,
/// held + available == installed, and a full drain restores both
/// pools to their installed capacity.
#[test]
fn concurrent_alloc_free_keeps_exact_accounting() {
    const WORKERS: u32 = 8;
    const ROUNDS: usize = 20;
    const BURST: usize = 24;
    let dram_frames = 4096u64;
    let nvm_frames = 512u64;
    let alloc = FrameAlloc::new(MemoryLayout {
        dram_bytes: dram_frames * PAGE_SIZE,
        nvm_bytes: nvm_frames * PAGE_SIZE,
    });

    let kept: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let alloc = &alloc;
                scope.spawn(move || {
                    let mut mine: Vec<u64> = Vec::new();
                    for round in 0..ROUNDS {
                        let pool = if round % 4 == 3 {
                            Pool::Nvm
                        } else {
                            Pool::Dram
                        };
                        let mut burst: Vec<u64> = Vec::with_capacity(BURST);
                        for _ in 0..BURST {
                            let pfn = alloc
                                .alloc_for(pool, w)
                                .expect("arena sized so concurrent bursts never OOM");
                            burst.push(pfn);
                        }
                        // Free the even half immediately, keep the odd
                        // half to stress cross-thread accounting.
                        for (i, pfn) in burst.into_iter().enumerate() {
                            if i % 2 == 0 {
                                alloc.free(pfn).expect("freeing own frame");
                            } else {
                                mine.push(pfn);
                            }
                        }
                    }
                    mine
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // No frame was ever handed to two workers at once.
    let all_kept: Vec<u64> = kept.into_iter().flatten().collect();
    let unique: BTreeSet<u64> = all_kept.iter().copied().collect();
    assert_eq!(
        unique.len(),
        all_kept.len(),
        "concurrent allocation handed out a frame twice"
    );

    // Exact conservation while the kept frames are still held.
    let kept_dram = all_kept.iter().filter(|&&pfn| pfn < dram_frames).count() as u64;
    let kept_nvm = all_kept.len() as u64 - kept_dram;
    assert_eq!(
        alloc.available_frames(Pool::Dram) + kept_dram,
        dram_frames,
        "DRAM frames not conserved after concurrent hammering"
    );
    assert_eq!(
        alloc.available_frames(Pool::Nvm) + kept_nvm,
        nvm_frames,
        "NVM frames not conserved after concurrent hammering"
    );
    let nvm_held: BTreeSet<u64> = all_kept
        .iter()
        .copied()
        .filter(|&p| p >= dram_frames)
        .collect();
    let nvm_bitmap: BTreeSet<u64> = alloc.nvm_allocated_pfns().into_iter().collect();
    assert_eq!(nvm_bitmap, nvm_held, "NVM bitmap diverged from kept set");

    // Full drain restores both pools exactly.
    for pfn in all_kept {
        alloc.free(pfn).expect("draining kept frames");
    }
    assert_eq!(alloc.available_frames(Pool::Dram), dram_frames);
    assert_eq!(alloc.available_frames(Pool::Nvm), nvm_frames);
    assert!(alloc.nvm_allocated_pfns().is_empty());
}
