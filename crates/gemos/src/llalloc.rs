//! Lock-free two-level hierarchical frame allocator.
//!
//! The serial [`crate::physmem::PhysMemory`] free-list allocator
//! becomes the bottleneck long before NVM bandwidth does once many
//! tenants checkpoint concurrently: every alloc/free serializes on
//! `&mut self`. [`FrameAlloc`] replaces it on the hot path with the
//! design of the llfree allocator (a page allocator built for hybrid
//! DRAM+NVM machines with multicore scalability *and* crash
//! consistency as its two goals):
//!
//! * **Lower level** — one atomic `u64` bitfield word per 64 frames
//!   (bit set = allocated). Claiming a frame is a `fetch_or` on the
//!   word; freeing is a `fetch_and`. The bitfield is the *only*
//!   ground truth — every counter above it is reconstructible by
//!   popcount, which is what makes the allocator crash-recoverable
//!   without logging.
//! * **Upper level** — a tree of atomic free-counters: one counter
//!   per fixed-size *subtree* of [`SUBTREE_FRAMES`] frames, plus one
//!   root counter per pool. An alloc reserves a unit at the root,
//!   then at a subtree, then claims a bit; a free releases in the
//!   opposite order. The root counter makes exhaustion a single
//!   atomic check; the subtree counters let the search skip full
//!   regions without touching their cache lines.
//! * **Per-worker reservations** — each worker keeps a preferred
//!   subtree and allocates from it until it drains, so concurrent
//!   workers mostly touch disjoint cache lines. Draining triggers a
//!   *steal* ([`CrashSite::AllocReservationSteal`]): the worker
//!   claims the emptiest unreserved subtree. Reservations are purely
//!   volatile — recovery starts every worker unreserved.
//!
//! The whole API is `&self`: no `Mutex`, no `&mut` — only
//! [`AtomicU64`]s.
//!
//! # Crash consistency
//!
//! The NVM pool's bitfield is persisted through the same staging/seal
//! discipline as the persistent stacks: [`FrameAlloc::persist_nvm`]
//! stages every subtree's durable words into a [`DurableAllocTree`]
//! (crash window [`CrashSite::AllocSubtreePersist`] after each
//! subtree, seal not yet written), then writes the seal — the single
//! durability point. Recovery discards an unsealed staging buffer and
//! rebuilds all counters by popcount from the last sealed snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use prosper_memsim::addr::PhysAddr;
use prosper_memsim::config::MemoryLayout;
use prosper_memsim::PAGE_SIZE;
use prosper_telemetry as telemetry;

use crate::crash::{CrashInjected, CrashSite, FaultInjector};
use crate::physmem::{FreeError, OutOfMemory, Pool};

/// Frames covered by one bitfield word.
const WORD_FRAMES: u64 = 64;
/// Bitfield words per subtree.
const SUBTREE_WORDS: usize = 8;
/// Frames covered by one subtree counter (8 words × 64 bits).
pub const SUBTREE_FRAMES: u64 = SUBTREE_WORDS as u64 * WORD_FRAMES;
/// Per-worker reservation slots. Workers above this share slots
/// (modulo), which only costs contention, never correctness.
pub const WORKER_SLOTS: usize = 16;

/// Atomically decrements `c` if it is non-zero. Returns `false` when
/// the counter was already zero (the resource is exhausted).
fn try_dec(c: &AtomicU64) -> bool {
    c.fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1))
        .is_ok()
}

/// One observed allocator protocol event. Each corresponds to one
/// successful atomic instruction of the two-level protocol; the probe
/// records it while holding the probe lock *around* that instruction,
/// so log order equals true atomic order. The event vocabulary
/// mirrors `prosper-analysis::allocmodel`'s trace events — the same
/// history checker validates both ("one checker, two witnesses").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocProbeEvent {
    /// Root-counter gate passed.
    Gate {
        /// Probe operation id.
        op: u64,
    },
    /// Root-counter gate failed: pool exhausted.
    Oom {
        /// Probe operation id.
        op: u64,
    },
    /// A subtree counter was decremented for this op.
    SubtreeAcquire {
        /// Probe operation id.
        op: u64,
        /// Subtree index within the pool tree.
        subtree: u32,
        /// True when the unit came from a reservation steal.
        stolen: bool,
    },
    /// The bitfield bit was claimed (`fetch_or` won).
    Claim {
        /// Probe operation id.
        op: u64,
        /// Absolute frame number handed out.
        pfn: u64,
    },
    /// The bitfield bit was cleared by a free.
    FreeClear {
        /// Probe operation id.
        op: u64,
        /// Absolute frame number returned.
        pfn: u64,
    },
    /// The subtree counter was re-incremented by a free.
    FreeSubtree {
        /// Probe operation id.
        op: u64,
        /// Subtree index within the pool tree.
        subtree: u32,
    },
    /// The root counter was re-incremented by a free.
    FreeRoot {
        /// Probe operation id.
        op: u64,
    },
    /// One bitfield word was staged into the durable tree.
    StageWord {
        /// Staging sequence (epoch).
        seq: u64,
        /// Word index.
        word: u32,
        /// Staged word value.
        value: u64,
    },
    /// The seal record was written — the durability point.
    Seal {
        /// Staging sequence (epoch).
        seq: u64,
    },
}

/// Event recorder for the probed allocator paths
/// ([`FrameAlloc::alloc_for_probed`] and friends).
///
/// The probe's lock is held around each instrumented atomic
/// instruction *and* the corresponding log append, so the recorded
/// order is the real linearization order — the property that lets
/// `prosper-analysis`'s allocator history checker replay the log with
/// exact counters and reject any forged reordering. Probed paths pay
/// for that lock; the regular paths compile it away entirely (they
/// pass no probe).
#[derive(Debug, Default)]
pub struct AllocProbe {
    log: Mutex<Vec<AllocProbeEvent>>,
    next_op: AtomicU64,
}

impl AllocProbe {
    /// An empty probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh operation id for one probed alloc/free.
    pub fn begin_op(&self) -> u64 {
        if telemetry::enabled() {
            telemetry::with(|tel| {
                tel.registry().counter("prosper.allocmodel.probe_ops").inc();
            });
        }
        self.next_op.fetch_add(1, Ordering::AcqRel)
    }

    /// The recorded event log, in linearization order.
    pub fn events(&self) -> Vec<AllocProbeEvent> {
        self.log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Runs `f` (one atomic instruction) under the probe lock and
    /// appends the event it reports, keeping log order equal to
    /// atomic order.
    fn atomic<R>(&self, f: impl FnOnce() -> (R, Option<AllocProbeEvent>)) -> R {
        let mut log = self.log.lock().unwrap_or_else(PoisonError::into_inner);
        let (r, ev) = f();
        if let Some(ev) = ev {
            log.push(ev);
            if telemetry::enabled() {
                telemetry::with(|tel| {
                    tel.registry()
                        .counter("prosper.allocmodel.probe_events")
                        .inc();
                });
            }
        }
        r
    }
}

/// A probed path's context: the probe plus the running operation id.
type ProbeCtx<'a> = Option<(&'a AllocProbe, u64)>;

/// Runs `f` under the probe lock when probing, bare otherwise.
fn probe_atomic<R>(probe: ProbeCtx<'_>, f: impl FnOnce() -> (R, Option<AllocProbeEvent>)) -> R {
    match probe {
        Some((p, _)) => p.atomic(f),
        None => f().0,
    }
}

/// One pool's two-level tree: the atomic bitfield plus the counter
/// hierarchy above it.
#[derive(Debug)]
struct PoolTree {
    /// First frame number this tree covers.
    base_pfn: u64,
    /// Usable frames (padding bits beyond this are permanently set).
    frames: u64,
    /// Bit set = allocated. The ground truth.
    bitmap: Vec<AtomicU64>,
    /// Free frames per subtree of [`SUBTREE_WORDS`] words.
    subtree_free: Vec<AtomicU64>,
    /// Free frames in the whole pool — the exhaustion gate.
    total_free: AtomicU64,
    /// Per-worker reserved subtree, encoded as `index + 1` (0 = none).
    reservations: Vec<AtomicU64>,
}

impl PoolTree {
    fn new(base_pfn: u64, frames: u64) -> Self {
        let words = (frames.div_ceil(WORD_FRAMES) as usize).max(1);
        let bitmap: Vec<AtomicU64> = (0..words)
            .map(|wi| {
                // Padding bits past `frames` are born allocated so the
                // claim scan can never hand them out.
                let word_base = wi as u64 * WORD_FRAMES;
                let usable = frames.saturating_sub(word_base).min(WORD_FRAMES);
                AtomicU64::new(if usable >= WORD_FRAMES {
                    0
                } else {
                    !((1u64 << usable) - 1)
                })
            })
            .collect();
        let subtrees = words.div_ceil(SUBTREE_WORDS);
        let subtree_free = (0..subtrees)
            .map(|s| {
                let lo = s as u64 * SUBTREE_FRAMES;
                AtomicU64::new(frames.saturating_sub(lo).min(SUBTREE_FRAMES))
            })
            .collect();
        Self {
            base_pfn,
            frames,
            bitmap,
            subtree_free,
            total_free: AtomicU64::new(frames),
            reservations: (0..WORKER_SLOTS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn subtree_count(&self) -> usize {
        self.subtree_free.len()
    }

    /// Word range `[w0, w1)` of subtree `s`.
    fn subtree_words(&self, s: usize) -> (usize, usize) {
        let w0 = s * SUBTREE_WORDS;
        (w0, (w0 + SUBTREE_WORDS).min(self.bitmap.len()))
    }

    /// Claims the lowest clear bit in subtree `s`. The caller must
    /// hold one unit of `subtree_free[s]`, which guarantees a clear
    /// bit exists; a `None` means a racing free/claim moved it behind
    /// the scan cursor and the caller should rescan.
    fn claim_in_subtree(&self, s: usize, probe: ProbeCtx<'_>) -> Option<u64> {
        let (w0, w1) = self.subtree_words(s);
        let op = probe.map_or(0, |(_, o)| o);
        for wi in w0..w1 {
            loop {
                let cur = self.bitmap[wi].load(Ordering::Acquire);
                if cur == u64::MAX {
                    break;
                }
                let bit = (!cur).trailing_zeros() as u64;
                let mask = 1u64 << bit;
                let pfn = self.base_pfn + wi as u64 * WORD_FRAMES + bit;
                let won = probe_atomic(probe, || {
                    let prev = self.bitmap[wi].fetch_or(mask, Ordering::AcqRel);
                    let ok = prev & mask == 0;
                    (
                        ok,
                        (ok && probe.is_some()).then_some(AllocProbeEvent::Claim { op, pfn }),
                    )
                });
                if won {
                    return Some(pfn);
                }
                // Raced with another claimer on that bit: rescan.
            }
        }
        None
    }

    /// Lowest-index subtree with free frames whose counter we manage
    /// to decrement — the deterministic serial policy (globally lowest
    /// free frame, matching the `PhysMemory` reference exactly).
    fn take_lowest_subtree(&self, probe: ProbeCtx<'_>) -> Option<usize> {
        let op = probe.map_or(0, |(_, o)| o);
        loop {
            let s = (0..self.subtree_count())
                .find(|&s| self.subtree_free[s].load(Ordering::Acquire) > 0)?;
            let took = probe_atomic(probe, || {
                let ok = try_dec(&self.subtree_free[s]);
                (
                    ok,
                    (ok && probe.is_some()).then_some(AllocProbeEvent::SubtreeAcquire {
                        op,
                        subtree: s as u32,
                        stolen: false,
                    }),
                )
            });
            if took {
                return Some(s);
            }
        }
    }

    /// The subtree with the most free frames, skipping (when possible)
    /// subtrees reserved by other workers — the steal target that
    /// maximizes cache-line disjointness. Ties break to the lowest
    /// index for determinism.
    fn steal_target(&self, slot: usize) -> Option<usize> {
        let reserved: Vec<u64> = self
            .reservations
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != slot)
            .map(|(_, r)| r.load(Ordering::Acquire))
            .collect();
        let best = |skip_reserved: bool| {
            (0..self.subtree_count())
                .filter(|&s| !(skip_reserved && reserved.contains(&(s as u64 + 1))))
                .map(|s| (s, self.subtree_free[s].load(Ordering::Acquire)))
                .filter(|&(_, f)| f > 0)
                .max_by_key(|&(s, f)| (f, std::cmp::Reverse(s)))
                .map(|(s, _)| s)
        };
        best(true).or_else(|| best(false))
    }

    /// Releases the claim on `pfn`'s bit and returns the counter
    /// units. Returns `false` if the bit was already clear (a
    /// double-free — counters untouched).
    fn release(&self, pfn: u64, probe: ProbeCtx<'_>) -> bool {
        let rel = pfn - self.base_pfn;
        let wi = (rel / WORD_FRAMES) as usize;
        let mask = 1u64 << (rel % WORD_FRAMES);
        let op = probe.map_or(0, |(_, o)| o);
        let cleared = probe_atomic(probe, || {
            let prev = self.bitmap[wi].fetch_and(!mask, Ordering::AcqRel);
            let ok = prev & mask != 0;
            (
                ok,
                (ok && probe.is_some()).then_some(AllocProbeEvent::FreeClear { op, pfn }),
            )
        });
        if !cleared {
            return false;
        }
        let s = wi / SUBTREE_WORDS;
        // Subtree before root: the invariant `sum(subtree_free) >=
        // total_free + in-flight allocs` is what guarantees every
        // alloc that passed the root gate finds a subtree.
        probe_atomic(probe, || {
            self.subtree_free[s].fetch_add(1, Ordering::AcqRel);
            (
                (),
                probe.is_some().then_some(AllocProbeEvent::FreeSubtree {
                    op,
                    subtree: s as u32,
                }),
            )
        });
        probe_atomic(probe, || {
            self.total_free.fetch_add(1, Ordering::AcqRel);
            (
                (),
                probe.is_some().then_some(AllocProbeEvent::FreeRoot { op }),
            )
        });
        true
    }

    /// Tries to claim exactly `pfn`: root gate, subtree counter, then
    /// the bit. Rolls back on any conflict. The reservation path uses
    /// this to assemble contiguous regions.
    fn try_claim_frame(&self, pfn: u64) -> bool {
        if !try_dec(&self.total_free) {
            return false;
        }
        let rel = pfn - self.base_pfn;
        let wi = (rel / WORD_FRAMES) as usize;
        let s = wi / SUBTREE_WORDS;
        if !try_dec(&self.subtree_free[s]) {
            self.total_free.fetch_add(1, Ordering::AcqRel);
            return false;
        }
        let mask = 1u64 << (rel % WORD_FRAMES);
        let prev = self.bitmap[wi].fetch_or(mask, Ordering::AcqRel);
        if prev & mask != 0 {
            self.subtree_free[s].fetch_add(1, Ordering::AcqRel);
            self.total_free.fetch_add(1, Ordering::AcqRel);
            return false;
        }
        true
    }

    /// First allocated frame in `[start, start + pages)`, if any — the
    /// optimistic pre-scan of the reservation search.
    fn first_conflict(&self, start: u64, pages: u64) -> Option<u64> {
        (start..start + pages).find(|&pfn| {
            let rel = pfn - self.base_pfn;
            let wi = (rel / WORD_FRAMES) as usize;
            self.bitmap[wi].load(Ordering::Acquire) & (1u64 << (rel % WORD_FRAMES)) != 0
        })
    }

    /// Overwrites the bitfield with `words` and rebuilds every counter
    /// by popcount. Only sound before the tree is shared (recovery
    /// construction). Never panics: extra words are ignored, missing
    /// words leave the freshly-initialized state.
    fn restore_words(&self, words: &[u64]) {
        for (wi, &w) in words.iter().enumerate().take(self.bitmap.len()) {
            // Keep padding bits allocated whatever the snapshot says.
            let word_base = wi as u64 * WORD_FRAMES;
            let usable = self.frames.saturating_sub(word_base).min(WORD_FRAMES);
            let pad = if usable >= WORD_FRAMES {
                0
            } else {
                !((1u64 << usable) - 1)
            };
            self.bitmap[wi].store(w | pad, Ordering::Release);
        }
        let mut total = 0u64;
        for s in 0..self.subtree_count() {
            let (w0, w1) = self.subtree_words(s);
            let lo = s as u64 * SUBTREE_FRAMES;
            let capacity = self.frames.saturating_sub(lo).min(SUBTREE_FRAMES);
            let set: u64 = (w0..w1)
                .map(|wi| u64::from(self.bitmap[wi].load(Ordering::Acquire).count_ones()))
                .sum();
            let pad = (w1 - w0) as u64 * WORD_FRAMES - capacity;
            let free = capacity.saturating_sub(set.saturating_sub(pad));
            self.subtree_free[s].store(free, Ordering::Release);
            total += free;
        }
        self.total_free.store(total, Ordering::Release);
        for r in &self.reservations {
            r.store(0, Ordering::Release);
        }
    }

    /// Every allocated frame number, lowest first (padding excluded).
    fn allocated_pfns(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (wi, w) in self.bitmap.iter().enumerate() {
            let mut bits = w.load(Ordering::Acquire);
            while bits != 0 {
                let bit = bits.trailing_zeros() as u64;
                let rel = wi as u64 * WORD_FRAMES + bit;
                if rel < self.frames {
                    out.push(self.base_pfn + rel);
                }
                bits &= bits - 1;
            }
        }
        out
    }
}

/// The lock-free hierarchical frame allocator over the hybrid layout.
/// Drop-in replacement for [`crate::physmem::PhysMemory`], but every
/// operation takes `&self`, so concurrent workers allocate and free
/// without any lock.
#[derive(Debug)]
pub struct FrameAlloc {
    layout: MemoryLayout,
    dram: PoolTree,
    nvm: PoolTree,
}

impl FrameAlloc {
    /// Creates an allocator over `layout`, all frames free.
    pub fn new(layout: MemoryLayout) -> Self {
        let dram_frames = layout.dram_bytes / PAGE_SIZE;
        let nvm_frames = layout.nvm_bytes / PAGE_SIZE;
        Self {
            layout,
            dram: PoolTree::new(0, dram_frames),
            nvm: PoolTree::new(dram_frames, nvm_frames),
        }
    }

    /// The layout this allocator serves.
    pub fn layout(&self) -> MemoryLayout {
        self.layout
    }

    fn tree(&self, pool: Pool) -> &PoolTree {
        match pool {
            Pool::Dram => &self.dram,
            Pool::Nvm => &self.nvm,
        }
    }

    /// The tree owning `pfn`, or `None` when out of range.
    fn tree_of(&self, pfn: u64) -> Option<&PoolTree> {
        if pfn < self.dram.frames {
            Some(&self.dram)
        } else if pfn < self.nvm.base_pfn + self.nvm.frames {
            Some(&self.nvm)
        } else {
            None
        }
    }

    fn alloc_inner(
        &self,
        pool: Pool,
        worker: Option<u32>,
        mut inj: Option<&mut FaultInjector>,
        probe: ProbeCtx<'_>,
    ) -> Result<Result<u64, OutOfMemory>, CrashInjected> {
        let t = self.tree(pool);
        let op = probe.map_or(0, |(_, o)| o);
        // Root gate: one atomic check decides exhaustion.
        let gated = probe_atomic(probe, || {
            let ok = try_dec(&t.total_free);
            let ev = probe.is_some().then_some(if ok {
                AllocProbeEvent::Gate { op }
            } else {
                AllocProbeEvent::Oom { op }
            });
            (ok, ev)
        });
        if !gated {
            return Ok(Err(OutOfMemory { pool }));
        }
        loop {
            let s = match worker {
                None => t.take_lowest_subtree(probe),
                Some(w) => {
                    let slot = w as usize % WORKER_SLOTS;
                    let reserved = t.reservations[slot].load(Ordering::Acquire);
                    let held = reserved
                        .checked_sub(1)
                        .map(|s| s as usize)
                        .filter(|&s| s < t.subtree_count())
                        .filter(|&s| {
                            probe_atomic(probe, || {
                                let ok = try_dec(&t.subtree_free[s]);
                                (
                                    ok,
                                    (ok && probe.is_some()).then_some(
                                        AllocProbeEvent::SubtreeAcquire {
                                            op,
                                            subtree: s as u32,
                                            stolen: false,
                                        },
                                    ),
                                )
                            })
                        });
                    match held {
                        Some(s) => Some(s),
                        None => {
                            // The reserved subtree drained (or none was
                            // held): steal a fresh one. Crash window —
                            // reservations are volatile, so a power
                            // failure here must leave the durable tree
                            // untouched.
                            let site = CrashSite::AllocReservationSteal { worker: w };
                            if let Some(inj) = inj.as_deref_mut() {
                                if inj.observe(site) {
                                    t.total_free.fetch_add(1, Ordering::AcqRel);
                                    return Err(CrashInjected { site });
                                }
                            }
                            if telemetry::enabled() {
                                telemetry::with(|tel| {
                                    tel.registry()
                                        .counter("prosper.alloc.reservation_steals")
                                        .inc();
                                });
                            }
                            let stolen = t.steal_target(slot).filter(|&s| {
                                probe_atomic(probe, || {
                                    let ok = try_dec(&t.subtree_free[s]);
                                    (
                                        ok,
                                        (ok && probe.is_some()).then_some(
                                            AllocProbeEvent::SubtreeAcquire {
                                                op,
                                                subtree: s as u32,
                                                stolen: true,
                                            },
                                        ),
                                    )
                                })
                            });
                            if let Some(s) = stolen {
                                t.reservations[slot].store(s as u64 + 1, Ordering::Release);
                            }
                            stolen
                        }
                    }
                }
            };
            let Some(s) = s else {
                // Transient: the root gate passed, so free frames
                // exist; racing counters just moved them. Rescan.
                std::hint::spin_loop();
                continue;
            };
            loop {
                if let Some(pfn) = t.claim_in_subtree(s, probe) {
                    return Ok(Ok(pfn));
                }
                // We hold a unit of this subtree's counter, so a clear
                // bit exists; a racing free moved it behind the scan.
                std::hint::spin_loop();
            }
        }
    }

    /// Allocates one frame from `pool` — the deterministic serial
    /// policy (always the **lowest** free frame, exactly matching the
    /// [`crate::physmem::PhysMemory`] reference).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the pool is exhausted.
    pub fn alloc(&self, pool: Pool) -> Result<u64, OutOfMemory> {
        match self.alloc_inner(pool, None, None, None) {
            Ok(r) => r,
            // Unreachable without an injector, but never panic here.
            Err(_) => Err(OutOfMemory { pool }),
        }
    }

    /// [`Self::alloc`] with every protocol atomic recorded into
    /// `probe`, in linearization order.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the pool is exhausted.
    pub fn alloc_probed(&self, pool: Pool, probe: &AllocProbe) -> Result<u64, OutOfMemory> {
        let op = probe.begin_op();
        match self.alloc_inner(pool, None, None, Some((probe, op))) {
            Ok(r) => r,
            Err(_) => Err(OutOfMemory { pool }),
        }
    }

    /// Allocates one frame from `pool` on `worker`'s reserved subtree
    /// — the scalable path: workers mostly touch disjoint cache
    /// lines, stealing a fresh subtree only when theirs drains.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the pool is exhausted.
    pub fn alloc_for(&self, pool: Pool, worker: u32) -> Result<u64, OutOfMemory> {
        match self.alloc_inner(pool, Some(worker), None, None) {
            Ok(r) => r,
            Err(_) => Err(OutOfMemory { pool }),
        }
    }

    /// [`Self::alloc_for`] with every protocol atomic recorded into
    /// `probe`, in linearization order.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the pool is exhausted.
    pub fn alloc_for_probed(
        &self,
        pool: Pool,
        worker: u32,
        probe: &AllocProbe,
    ) -> Result<u64, OutOfMemory> {
        let op = probe.begin_op();
        match self.alloc_inner(pool, Some(worker), None, Some((probe, op))) {
            Ok(r) => r,
            Err(_) => Err(OutOfMemory { pool }),
        }
    }

    /// [`Self::alloc_for`] with a crash boundary at the reservation
    /// steal ([`CrashSite::AllocReservationSteal`]).
    ///
    /// # Errors
    ///
    /// The outer error is the injected crash; the inner is pool
    /// exhaustion.
    pub fn alloc_for_with_faults(
        &self,
        pool: Pool,
        worker: u32,
        inj: &mut FaultInjector,
    ) -> Result<Result<u64, OutOfMemory>, CrashInjected> {
        self.alloc_inner(pool, Some(worker), Some(inj), None)
    }

    /// Returns a frame to its pool.
    ///
    /// # Errors
    ///
    /// Returns [`FreeError::OutOfRange`] for a frame number outside
    /// installed memory and [`FreeError::DoubleFree`] when the frame
    /// is not currently allocated.
    pub fn free(&self, pfn: u64) -> Result<(), FreeError> {
        self.free_inner(pfn, None)
    }

    /// [`Self::free`] with every protocol atomic recorded into
    /// `probe`, in linearization order.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::free`].
    pub fn free_probed(&self, pfn: u64, probe: &AllocProbe) -> Result<(), FreeError> {
        let op = probe.begin_op();
        self.free_inner(pfn, Some((probe, op)))
    }

    fn free_inner(&self, pfn: u64, probe: ProbeCtx<'_>) -> Result<(), FreeError> {
        let Some(t) = self.tree_of(pfn) else {
            return Err(FreeError::OutOfRange { pfn });
        };
        if t.release(pfn, probe) {
            Ok(())
        } else {
            if telemetry::enabled() {
                telemetry::with(|tel| {
                    tel.registry()
                        .counter("prosper.alloc.double_frees_rejected")
                        .inc();
                });
            }
            Err(FreeError::DoubleFree { pfn })
        }
    }

    /// Reserves a contiguous NVM region of `bytes` (page-rounded),
    /// returning its base physical address. First-fit over the whole
    /// pool — freed frames are reused, matching the fixed reference.
    /// Frames are claimed one by one through the counter hierarchy
    /// and rolled back wholesale on any conflict, so concurrent
    /// allocs never observe a half-reserved region as theirs.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] if no contiguous run of free frames is
    /// long enough.
    pub fn reserve_nvm_region(&self, bytes: u64) -> Result<PhysAddr, OutOfMemory> {
        let pages = bytes.div_ceil(PAGE_SIZE).max(1);
        let t = &self.nvm;
        let limit = t.base_pfn + t.frames;
        let mut start = t.base_pfn;
        'search: while start + pages <= limit {
            if let Some(c) = t.first_conflict(start, pages) {
                start = c + 1;
                continue;
            }
            let mut claimed = 0u64;
            while claimed < pages {
                if t.try_claim_frame(start + claimed) {
                    claimed += 1;
                } else {
                    for pfn in start..start + claimed {
                        t.release(pfn, None);
                    }
                    start += claimed + 1;
                    continue 'search;
                }
            }
            return Ok(PhysAddr::new(start * PAGE_SIZE));
        }
        Err(OutOfMemory { pool: Pool::Nvm })
    }

    /// Frames currently free in `pool` — one relaxed load of the root
    /// counter.
    pub fn available_frames(&self, pool: Pool) -> u64 {
        self.tree(pool).total_free.load(Ordering::Acquire)
    }

    /// Every allocated NVM frame number, lowest first — what the
    /// durable tree protects and what crash verification compares.
    pub fn nvm_allocated_pfns(&self) -> Vec<u64> {
        self.nvm.allocated_pfns()
    }

    /// Number of NVM subtrees (persist-cycle crash windows).
    pub fn nvm_subtrees(&self) -> usize {
        self.nvm.subtree_count()
    }

    /// Number of NVM bitfield words — how many `StageWord` stores one
    /// persist epoch issues before its seal.
    pub fn nvm_bitmap_words(&self) -> usize {
        self.nvm.bitmap.len()
    }

    /// First NVM frame number (the pool's `base_pfn`).
    pub fn nvm_base_pfn(&self) -> u64 {
        self.nvm.base_pfn
    }

    /// Persists the NVM pool's bitfield into `durable` through the
    /// staging/seal discipline: every subtree's words are staged
    /// (unsealed), then the seal record is written — the single
    /// durability point. Returns the sealed sequence number.
    pub fn persist_nvm(&self, durable: &mut DurableAllocTree) -> u64 {
        let mut inj = FaultInjector::disabled();
        // A disabled injector never fires, so this cannot fail.
        self.persist_nvm_with_faults(durable, &mut inj)
            .map_or(durable.committed_sequence(), |seq| seq)
    }

    /// [`Self::persist_nvm`] with a crash boundary after each
    /// subtree's words are staged ([`CrashSite::AllocSubtreePersist`]
    /// — seal not yet written, so recovery discards the staging).
    ///
    /// # Errors
    ///
    /// Returns the injected crash; `durable` is left with an unsealed
    /// staging buffer, exactly as a power failure would.
    pub fn persist_nvm_with_faults(
        &self,
        durable: &mut DurableAllocTree,
        inj: &mut FaultInjector,
    ) -> Result<u64, CrashInjected> {
        durable.begin_stage();
        for s in 0..self.nvm.subtree_count() {
            let (w0, w1) = self.nvm.subtree_words(s);
            for wi in w0..w1 {
                durable.stage_word(wi, self.nvm.bitmap[wi].load(Ordering::Acquire));
            }
            let site = CrashSite::AllocSubtreePersist { subtree: s as u32 };
            if inj.observe(site) {
                return Err(CrashInjected { site });
            }
        }
        let seq = durable.seal_and_apply();
        if telemetry::enabled() {
            telemetry::with(|tel| {
                let r = tel.registry();
                r.counter("prosper.alloc.subtree_persists")
                    .add(self.nvm.subtree_count() as u64);
                r.gauge("prosper.alloc.nvm_free_frames")
                    .set(i64::try_from(self.available_frames(Pool::Nvm)).unwrap_or(i64::MAX));
            });
        }
        Ok(seq)
    }

    /// [`Self::persist_nvm`] with every staged-word and seal store
    /// recorded into `probe`, in issue order. Returns the sealed
    /// sequence number.
    pub fn persist_nvm_probed(&self, durable: &mut DurableAllocTree, probe: &AllocProbe) -> u64 {
        durable.begin_stage();
        let seq = durable.committed_sequence() + 1;
        for s in 0..self.nvm.subtree_count() {
            let (w0, w1) = self.nvm.subtree_words(s);
            for wi in w0..w1 {
                probe.atomic(|| {
                    let value = self.nvm.bitmap[wi].load(Ordering::Acquire);
                    durable.stage_word(wi, value);
                    (
                        (),
                        Some(AllocProbeEvent::StageWord {
                            seq,
                            word: wi as u32,
                            value,
                        }),
                    )
                });
            }
        }
        probe.atomic(|| {
            let sealed = durable.seal_and_apply();
            (sealed, Some(AllocProbeEvent::Seal { seq: sealed }))
        })
    }

    /// Rebuilds an allocator after a crash: `durable` recovers its
    /// last sealed snapshot (replaying a sealed-but-unapplied staging
    /// buffer, discarding an unsealed one), the NVM tree's bitfield
    /// is restored from it with every counter recomputed by popcount,
    /// and the DRAM pool starts fresh (volatile frames did not
    /// survive). Reservations start empty. Never panics — this runs
    /// on the recovery path.
    pub fn recover(layout: MemoryLayout, durable: &mut DurableAllocTree) -> Self {
        durable.recover();
        let alloc = Self::new(layout);
        alloc.nvm.restore_words(durable.committed_words());
        alloc
    }
}

/// The NVM-resident durable copy of the allocator's NVM bitfield,
/// maintained through the two-step staging/seal discipline: staged
/// words are worthless until the seal record is written; recovery
/// replays a sealed buffer idempotently and discards an unsealed one.
#[derive(Clone, Debug, Default)]
pub struct DurableAllocTree {
    /// Last sealed-and-applied bitfield snapshot.
    committed: Vec<u64>,
    /// Sequence of the last sealed snapshot.
    committed_sequence: u64,
    /// Staged `(word index, word value)` pairs (NVM staging buffer).
    staging: Vec<(usize, u64)>,
    /// Seal marker — durably written after all words are staged.
    sealed: bool,
    /// Sequence the open staging buffer would commit as.
    staging_sequence: u64,
}

impl DurableAllocTree {
    /// An empty durable tree (nothing committed yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a fresh staging buffer, discarding any previous one.
    pub fn begin_stage(&mut self) {
        self.staging.clear();
        self.sealed = false;
        self.staging_sequence = self.committed_sequence + 1;
    }

    /// Stages one bitfield word into the open buffer.
    pub fn stage_word(&mut self, idx: usize, word: u64) {
        self.staging.push((idx, word));
    }

    /// Writes the seal marker and applies the staged words — the
    /// durability point. Returns the committed sequence.
    pub fn seal_and_apply(&mut self) -> u64 {
        self.sealed = true;
        self.apply_staged();
        self.committed_sequence
    }

    /// Applies a sealed staging buffer into the committed snapshot and
    /// retires it. Idempotent: staged words carry absolute values.
    fn apply_staged(&mut self) {
        for &(idx, word) in &self.staging {
            if self.committed.len() <= idx {
                self.committed.resize(idx + 1, 0);
            }
            self.committed[idx] = word;
        }
        self.committed_sequence = self.staging_sequence.max(self.committed_sequence);
        self.staging.clear();
        self.sealed = false;
        self.staging_sequence = 0;
    }

    /// Crash recovery: a sealed buffer is replayed (the crash hit
    /// between seal and apply-complete); an unsealed one is discarded
    /// (the crash hit mid-staging — [`CrashSite::AllocSubtreePersist`]).
    /// Never panics — this runs on the recovery path.
    pub fn recover(&mut self) {
        if self.sealed {
            self.apply_staged();
        } else {
            self.staging.clear();
            self.staging_sequence = 0;
        }
    }

    /// The last sealed bitfield snapshot.
    pub fn committed_words(&self) -> &[u64] {
        &self.committed
    }

    /// Sequence of the last sealed snapshot (0 = never persisted).
    pub fn committed_sequence(&self) -> u64 {
        self.committed_sequence
    }

    /// Whether an unapplied staging buffer is open (sealed or not).
    pub fn staging_open(&self) -> bool {
        !self.staging.is_empty()
    }

    /// Whether the open staging buffer is sealed.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::CrashPlan;

    fn layout(dram_frames: u64, nvm_frames: u64) -> MemoryLayout {
        MemoryLayout {
            dram_bytes: dram_frames * PAGE_SIZE,
            nvm_bytes: nvm_frames * PAGE_SIZE,
        }
    }

    #[test]
    fn serial_policy_hands_out_lowest_free_frame() {
        let a = FrameAlloc::new(layout(8, 8));
        assert_eq!(a.alloc(Pool::Dram).unwrap(), 0);
        assert_eq!(a.alloc(Pool::Dram).unwrap(), 1);
        assert_eq!(a.alloc(Pool::Nvm).unwrap(), 8);
        a.free(0).unwrap();
        assert_eq!(a.alloc(Pool::Dram).unwrap(), 0);
    }

    #[test]
    fn exhaustion_and_double_free_detected() {
        let a = FrameAlloc::new(layout(2, 2));
        let x = a.alloc(Pool::Dram).unwrap();
        let _ = a.alloc(Pool::Dram).unwrap();
        assert_eq!(a.alloc(Pool::Dram).unwrap_err().pool, Pool::Dram);
        a.free(x).unwrap();
        assert_eq!(a.free(x).unwrap_err(), FreeError::DoubleFree { pfn: x });
        assert_eq!(a.free(99).unwrap_err(), FreeError::OutOfRange { pfn: 99 });
        assert_eq!(a.available_frames(Pool::Dram), 1);
    }

    #[test]
    fn padding_bits_are_never_handed_out() {
        // 70 frames: the second word has 58 padding bits.
        let a = FrameAlloc::new(layout(70, 0));
        for expect in 0..70 {
            assert_eq!(a.alloc(Pool::Dram).unwrap(), expect);
        }
        assert!(a.alloc(Pool::Dram).is_err());
    }

    #[test]
    fn worker_reservations_spread_subtrees() {
        // 2 subtrees of 512 frames each.
        let a = FrameAlloc::new(layout(2 * SUBTREE_FRAMES, 0));
        let p0 = a.alloc_for(Pool::Dram, 0).unwrap();
        let p1 = a.alloc_for(Pool::Dram, 1).unwrap();
        // Worker 0 stole the emptier subtree first; worker 1 then
        // skipped 0's reservation.
        assert_ne!(
            p0 / SUBTREE_FRAMES,
            p1 / SUBTREE_FRAMES,
            "workers should land on disjoint subtrees"
        );
        // Subsequent allocs stay on the reservation (no steal).
        let p0b = a.alloc_for(Pool::Dram, 0).unwrap();
        assert_eq!(p0 / SUBTREE_FRAMES, p0b / SUBTREE_FRAMES);
    }

    #[test]
    fn reservation_reuses_freed_frames_first_fit() {
        let a = FrameAlloc::new(layout(0, 8));
        let x = a.alloc(Pool::Nvm).unwrap();
        let y = a.alloc(Pool::Nvm).unwrap();
        a.free(x).unwrap();
        a.free(y).unwrap();
        let base = a.reserve_nvm_region(8 * PAGE_SIZE).unwrap();
        assert_eq!(base.raw(), 0);
        assert_eq!(a.available_frames(Pool::Nvm), 0);
        assert!(a.reserve_nvm_region(PAGE_SIZE).is_err());
    }

    #[test]
    fn reservation_skips_holes() {
        let a = FrameAlloc::new(layout(0, 8));
        let f: Vec<u64> = (0..3).map(|_| a.alloc(Pool::Nvm).unwrap()).collect();
        a.free(f[0]).unwrap();
        a.free(f[1]).unwrap();
        // Free run [0,2), hole at 2, tail [3,8).
        let base = a.reserve_nvm_region(3 * PAGE_SIZE).unwrap();
        assert_eq!(base.raw(), 3 * PAGE_SIZE);
    }

    #[test]
    fn persist_seal_recover_round_trip() {
        let a = FrameAlloc::new(layout(4, 2 * SUBTREE_FRAMES));
        let d0 = a.alloc(Pool::Dram).unwrap();
        let n0 = a.alloc(Pool::Nvm).unwrap();
        let n1 = a.alloc(Pool::Nvm).unwrap();
        a.free(n0).unwrap();
        let mut durable = DurableAllocTree::new();
        assert_eq!(a.persist_nvm(&mut durable), 1);

        let recovered = FrameAlloc::recover(a.layout(), &mut durable);
        // NVM survives exactly; DRAM starts fresh.
        assert_eq!(recovered.nvm_allocated_pfns(), vec![n1]);
        assert_eq!(recovered.available_frames(Pool::Dram), 4);
        assert_eq!(
            recovered.available_frames(Pool::Nvm),
            2 * SUBTREE_FRAMES - 1
        );
        // The freed frame is allocatable again, lowest-first.
        assert_eq!(recovered.alloc(Pool::Nvm).unwrap(), n0);
        let _ = d0;
    }

    #[test]
    fn crash_mid_persist_discards_unsealed_staging() {
        let a = FrameAlloc::new(layout(0, 2 * SUBTREE_FRAMES));
        let n0 = a.alloc(Pool::Nvm).unwrap();
        let mut durable = DurableAllocTree::new();
        a.persist_nvm(&mut durable);

        // Allocate more, then crash during the next persist cycle.
        let _n1 = a.alloc(Pool::Nvm).unwrap();
        let mut inj = FaultInjector::new(CrashPlan::AtSite(CrashSite::AllocSubtreePersist {
            subtree: 0,
        }));
        let err = a
            .persist_nvm_with_faults(&mut durable, &mut inj)
            .unwrap_err();
        assert_eq!(err.site, CrashSite::AllocSubtreePersist { subtree: 0 });
        assert!(durable.staging_open() && !durable.is_sealed());

        // Recovery lands on the last *sealed* snapshot: only n0.
        let recovered = FrameAlloc::recover(a.layout(), &mut durable);
        assert_eq!(recovered.nvm_allocated_pfns(), vec![n0]);
        assert_eq!(durable.committed_sequence(), 1);
    }

    #[test]
    fn sealed_staging_is_replayed_on_recovery() {
        let a = FrameAlloc::new(layout(0, SUBTREE_FRAMES));
        let n0 = a.alloc(Pool::Nvm).unwrap();
        let mut durable = DurableAllocTree::new();
        // Stage and seal by hand, modeling a crash after the seal but
        // before the apply finished.
        durable.begin_stage();
        durable.stage_word(0, 1u64 << (n0 % WORD_FRAMES));
        durable.sealed = true;
        durable.recover();
        assert_eq!(durable.committed_sequence(), 1);
        let recovered = FrameAlloc::recover(a.layout(), &mut durable);
        assert_eq!(recovered.nvm_allocated_pfns(), vec![n0]);
    }

    #[test]
    fn steal_crash_site_fires_and_leaves_tree_consistent() {
        let a = FrameAlloc::new(layout(SUBTREE_FRAMES, 0));
        let mut inj = FaultInjector::new(CrashPlan::AtSite(CrashSite::AllocReservationSteal {
            worker: 3,
        }));
        // First alloc for worker 3 must steal (no reservation yet).
        let err = a
            .alloc_for_with_faults(Pool::Dram, 3, &mut inj)
            .unwrap_err();
        assert_eq!(err.site, CrashSite::AllocReservationSteal { worker: 3 });
        // The rolled-back gate leaves accounting exact.
        assert_eq!(a.available_frames(Pool::Dram), SUBTREE_FRAMES);
        assert_eq!(a.alloc(Pool::Dram).unwrap(), 0);
    }

    #[test]
    fn concurrent_alloc_free_accounting_is_exact() {
        let frames = 4 * SUBTREE_FRAMES;
        let a = FrameAlloc::new(layout(frames, 0));
        let threads = 4;
        let per_thread = 200usize;
        std::thread::scope(|scope| {
            for w in 0..threads {
                let a = &a;
                scope.spawn(move || {
                    let mut held = Vec::new();
                    for i in 0..per_thread {
                        let pfn = a.alloc_for(Pool::Dram, w).unwrap();
                        held.push(pfn);
                        if i % 3 == 0 {
                            let pfn = held.swap_remove(held.len() / 2);
                            a.free(pfn).unwrap();
                        }
                    }
                    for pfn in held {
                        a.free(pfn).unwrap();
                    }
                });
            }
        });
        assert_eq!(a.available_frames(Pool::Dram), frames);
        assert!(a.dram.allocated_pfns().is_empty());
        let sum: u64 = a
            .dram
            .subtree_free
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .sum();
        assert_eq!(sum, frames);
    }
}
