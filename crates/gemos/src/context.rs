//! Context-switch modelling.
//!
//! The paper measures ~870 extra cycles per context switch for saving
//! and restoring the Prosper tracker state (Section V, "Context switch
//! overhead of Prosper"): on switch-out the OS instructs the tracker to
//! flush its lookup table, overlaps other switch work, then polls the
//! quiescence counters; on switch-in it reloads the MSR parameters of
//! the incoming context.
//!
//! Mechanisms that carry per-context hardware state implement
//! [`ContextSwitchParticipant`]; the [`ContextSwitcher`] charges the
//! baseline switch cost plus each participant's save/restore cost.

use prosper_memsim::machine::Machine;
use prosper_memsim::Cycles;

/// Baseline OS context-switch cost (register save/restore, runqueue
/// bookkeeping, address-space switch) — charged for every switch, with
/// or without Prosper.
pub const BASELINE_SWITCH_CYCLES: Cycles = 2_000;

/// Hardware state that must be saved/restored around a context switch.
pub trait ContextSwitchParticipant {
    /// Quiesces and saves the outgoing context's state; returns the
    /// cycles the OS spent on it (flush request + overlap + poll).
    fn switch_out(&mut self, machine: &mut Machine) -> Cycles;

    /// Restores the incoming context's state (MSR loads); returns the
    /// cycles spent.
    fn switch_in(&mut self, machine: &mut Machine) -> Cycles;
}

/// Outcome of one modelled context switch.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SwitchCost {
    /// Baseline OS cost.
    pub baseline: Cycles,
    /// Extra cycles added by participants (tracker save/restore).
    pub participant: Cycles,
}

impl SwitchCost {
    /// Total cycles of the switch.
    pub fn total(&self) -> Cycles {
        self.baseline + self.participant
    }
}

/// Performs context switches on a machine, charging all costs.
#[derive(Debug, Default)]
pub struct ContextSwitcher {
    /// Switches performed.
    pub switches: u64,
    /// Accumulated participant overhead.
    pub participant_cycles: Cycles,
}

impl ContextSwitcher {
    /// Creates a switcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Switches from the context owning `outgoing` to the context
    /// owning `incoming`, charging the machine. Either participant may
    /// be absent (non-persistent process).
    pub fn switch(
        &mut self,
        machine: &mut Machine,
        outgoing: Option<&mut dyn ContextSwitchParticipant>,
        incoming: Option<&mut dyn ContextSwitchParticipant>,
    ) -> SwitchCost {
        let mut cost = SwitchCost {
            baseline: BASELINE_SWITCH_CYCLES,
            participant: 0,
        };
        if let Some(out) = outgoing {
            cost.participant += out.switch_out(machine);
        }
        machine.advance(BASELINE_SWITCH_CYCLES);
        if let Some(inc) = incoming {
            cost.participant += inc.switch_in(machine);
        }
        self.switches += 1;
        self.participant_cycles += cost.participant;
        cost
    }

    /// Mean participant overhead per switch.
    pub fn mean_participant_cycles(&self) -> f64 {
        if self.switches == 0 {
            0.0
        } else {
            self.participant_cycles as f64 / self.switches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosper_memsim::config::MachineConfig;

    #[derive(Debug)]
    struct Fixed(Cycles, Cycles);

    impl ContextSwitchParticipant for Fixed {
        fn switch_out(&mut self, machine: &mut Machine) -> Cycles {
            machine.advance(self.0);
            self.0
        }
        fn switch_in(&mut self, machine: &mut Machine) -> Cycles {
            machine.advance(self.1);
            self.1
        }
    }

    #[test]
    fn switch_charges_baseline_plus_participants() {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut sw = ContextSwitcher::new();
        let mut a = Fixed(500, 300);
        let mut b = Fixed(100, 200);
        let cost = sw.switch(&mut machine, Some(&mut a), Some(&mut b));
        assert_eq!(cost.baseline, BASELINE_SWITCH_CYCLES);
        assert_eq!(cost.participant, 500 + 200);
        assert_eq!(cost.total(), BASELINE_SWITCH_CYCLES + 700);
        assert_eq!(machine.now(), BASELINE_SWITCH_CYCLES + 700);
    }

    #[test]
    fn switch_without_participants_is_baseline_only() {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut sw = ContextSwitcher::new();
        let cost = sw.switch(&mut machine, None, None);
        assert_eq!(cost.participant, 0);
        assert_eq!(cost.total(), BASELINE_SWITCH_CYCLES);
    }

    #[test]
    fn mean_participant_overhead() {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut sw = ContextSwitcher::new();
        let mut a = Fixed(400, 470);
        for _ in 0..10 {
            sw.switch(&mut machine, Some(&mut a), None);
        }
        assert_eq!(sw.switches, 10);
        assert!((sw.mean_participant_cycles() - 400.0).abs() < 1e-9);
        assert_eq!(ContextSwitcher::new().mean_participant_cycles(), 0.0);
    }
}
