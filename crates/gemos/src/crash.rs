//! Crash injection and restore verification.
//!
//! The paper validates correctness by killing the gem5 process mid-run
//! and confirming that the application inside GemOS resumes from its
//! last checkpoint. We model the same discipline: a [`CrashHarness`]
//! owns the volatile state (dropped at a crash) and the persistent
//! state (an NVM [`MemoryImage`] plus checkpointed registers), and a
//! [`Persistent`] implementation knows how to commit and recover.

use prosper_memsim::addr::VirtRange;

use crate::image::MemoryImage;
use crate::process::RegisterFile;

/// State that survives a crash and can be recovered.
///
/// Implementors commit volatile state into their persistent image at
/// checkpoints; after a crash, [`Self::recover`] must reconstruct the
/// committed view even if the crash interrupted a commit.
pub trait Persistent {
    /// Runs the commit protocol, making the current volatile state the
    /// new recovery point.
    fn commit(&mut self);

    /// Rebuilds a consistent state after a crash (applies or discards
    /// any half-finished commit).
    fn recover(&mut self);

    /// The recovered view of the given range.
    fn recovered_image(&self) -> &MemoryImage;
}

/// A checkpointed register snapshot stored in NVM.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct RegisterCheckpoint {
    /// The saved registers.
    pub regs: RegisterFile,
    /// Monotonic checkpoint sequence number.
    pub sequence: u64,
    /// Valid flag: written last during commit so a torn register
    /// checkpoint is detected and the previous one used.
    pub valid: bool,
}

/// Where in the commit protocol a crash is injected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrashPoint {
    /// Before the commit started: recovery sees the previous state.
    BeforeCommit,
    /// After the commit fully completed.
    AfterCommit,
}

/// A named step boundary of the checkpoint pipeline at which a
/// simulated power failure can fire.
///
/// The taxonomy covers the whole-process two-phase commit (stage every
/// thread's runs and the register file, seal one process commit
/// record, then apply), plus the OS-side pipeline steps around it
/// (bitmap inspection/clearing and the context-switch save/restore
/// protocol). Exhaustive enumeration of these sites is how recovery
/// invariants are validated — the same discipline as killing gem5
/// mid-run, but deterministic and complete.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum CrashSite {
    /// Before any commit state has been staged.
    PreStage,
    /// Thread `tid` has staged `runs_staged` of its copy runs; the
    /// staging buffer is incomplete and unsealed.
    MidStage {
        /// Thread whose staging was interrupted.
        tid: u32,
        /// Runs staged so far.
        runs_staged: u32,
    },
    /// Every thread's runs and the register file are staged; the
    /// process commit record is not yet sealed.
    PreSeal,
    /// The process commit record is sealed (the commit point); nothing
    /// has been applied yet.
    PostSeal,
    /// Thread `tid` has applied `runs_applied` staged runs to its
    /// persistent stack; the apply is incomplete.
    MidApply {
        /// Thread whose apply was interrupted.
        tid: u32,
        /// Runs applied so far.
        runs_applied: u32,
    },
    /// Pipelined-commit overlap window: thread `tid` has staged
    /// `runs_staged` of sequence N+1's copy runs while sealed record
    /// N's apply is still draining on other threads. The N+1 staging
    /// is unsealed (seal(N+1) cannot happen before apply(N) finishes),
    /// so recovery redoes record N and discards the staged-ahead
    /// buffers.
    MidPipelineStage {
        /// Thread staging ahead for the next sequence.
        tid: u32,
        /// Next-sequence runs staged so far on that thread.
        runs_staged: u32,
    },
    /// Thread `tid`'s staging buffer is fully applied and its stack
    /// sequence bumped; later threads are not yet applied.
    PostApplyThread {
        /// Thread whose apply just completed.
        tid: u32,
    },
    /// All stacks are applied; the register file is not.
    PostApplyPreRegisters,
    /// Thread `tid`'s register slot is written; later threads' are not.
    MidRegisterApply {
        /// Thread whose registers were just applied.
        tid: u32,
    },
    /// The whole-process commit completed and its record was retired.
    PostCommit,
    /// Bitmap words of thread `tid`'s inspection window were cleared,
    /// but the resulting copy runs were never committed.
    MidBitmapClear {
        /// Thread whose bitmap was being cleared.
        tid: u32,
    },
    /// Context switch-out: the lookup table flushed, but the outgoing
    /// thread's MSR state was not yet saved.
    MidSwitchSave,
    /// Context switch-in: the incoming thread's MSRs are restored, but
    /// the switch has not completed.
    MidSwitchRestore,
    /// Spine-mode commit: thread `tid`'s sealed staging buffer was
    /// appended to its delta spine as an immutable batch; later
    /// threads' batches are not yet appended. The process record seal
    /// already passed, so recovery redoes the batch appends.
    BatchSeal {
        /// Thread whose batch was just appended.
        tid: u32,
    },
    /// Spine merge in progress on thread `tid`: `batches_folded`
    /// newest batches are folded into the persistent image, the spine
    /// itself is untouched. Recovery simply re-merges — a partial
    /// fold wrote a value-identical subset of the full fold.
    MidMerge {
        /// Thread whose merge was interrupted.
        tid: u32,
        /// Newest-first batches folded so far.
        batches_folded: u32,
    },
    /// Spine merge on thread `tid` fully folded and the batches
    /// retired (spine truncated); the durable image already carries
    /// every batch's surviving bytes.
    MergeRetire {
        /// Thread whose merge just retired its batches.
        tid: u32,
    },
    /// Lock-free allocator NVM-tree persist: subtree `subtree`'s
    /// durable bitmap word is staged, but the persist cycle's seal
    /// record is not yet written. The staging is unsealed, so recovery
    /// discards it and rebuilds the tree's counters from the last
    /// *sealed* snapshot — allocations granted since then are redone
    /// by the caller, never half-recorded.
    AllocSubtreePersist {
        /// Subtree whose durable word was just staged.
        subtree: u32,
    },
    /// Lock-free allocator reservation steal: worker `worker` drained
    /// its reserved subtree and is claiming another. Reservations are
    /// purely volatile accelerator state — recovery starts every
    /// worker unreserved — and this boundary proves the durable tree
    /// is independent of reservation churn.
    AllocReservationSteal {
        /// Worker whose reservation is moving.
        worker: u32,
    },
}

impl std::fmt::Display for CrashSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashSite::PreStage => write!(f, "pre-stage"),
            CrashSite::MidStage { tid, runs_staged } => {
                write!(f, "mid-stage(tid={tid}, runs={runs_staged})")
            }
            CrashSite::PreSeal => write!(f, "pre-seal"),
            CrashSite::PostSeal => write!(f, "post-seal"),
            CrashSite::MidApply { tid, runs_applied } => {
                write!(f, "mid-apply(tid={tid}, runs={runs_applied})")
            }
            CrashSite::MidPipelineStage { tid, runs_staged } => {
                write!(f, "mid-pipeline-stage(tid={tid}, runs={runs_staged})")
            }
            CrashSite::PostApplyThread { tid } => write!(f, "post-apply-thread(tid={tid})"),
            CrashSite::PostApplyPreRegisters => write!(f, "post-apply-pre-registers"),
            CrashSite::MidRegisterApply { tid } => write!(f, "mid-register-apply(tid={tid})"),
            CrashSite::PostCommit => write!(f, "post-commit"),
            CrashSite::MidBitmapClear { tid } => write!(f, "mid-bitmap-clear(tid={tid})"),
            CrashSite::MidSwitchSave => write!(f, "mid-switch-save"),
            CrashSite::MidSwitchRestore => write!(f, "mid-switch-restore"),
            CrashSite::BatchSeal { tid } => write!(f, "batch-seal(tid={tid})"),
            CrashSite::MidMerge {
                tid,
                batches_folded,
            } => {
                write!(f, "mid-merge(tid={tid}, folded={batches_folded})")
            }
            CrashSite::MergeRetire { tid } => write!(f, "merge-retire(tid={tid})"),
            CrashSite::AllocSubtreePersist { subtree } => {
                write!(f, "alloc-subtree-persist(subtree={subtree})")
            }
            CrashSite::AllocReservationSteal { worker } => {
                write!(f, "alloc-reservation-steal(worker={worker})")
            }
        }
    }
}

impl CrashSite {
    /// The name of every variant of this enum, in declaration order.
    ///
    /// `prosper-lint`'s `PA-CRASH002` rule parses the enum out of this
    /// file's source to check that every variant has an injection
    /// point and a crash-matrix reference; a test in
    /// `prosper-analysis` asserts the parsed list equals this constant
    /// so the source parser can never silently drift from the compiled
    /// enum.
    pub const VARIANT_NAMES: &'static [&'static str] = &[
        "PreStage",
        "MidStage",
        "PreSeal",
        "PostSeal",
        "MidApply",
        "MidPipelineStage",
        "PostApplyThread",
        "PostApplyPreRegisters",
        "MidRegisterApply",
        "PostCommit",
        "MidBitmapClear",
        "MidSwitchSave",
        "MidSwitchRestore",
        "BatchSeal",
        "MidMerge",
        "MergeRetire",
        "AllocSubtreePersist",
        "AllocReservationSteal",
    ];

    /// `true` for sites at or after the seal: the commit point has
    /// passed, so recovery must redo (finish) the interrupted commit
    /// rather than discard it. `MidPipelineStage` is post-seal for the
    /// *draining* sequence N — the overlap window opens only after
    /// seal(N), and the staged-ahead N+1 buffers are still unsealed —
    /// so recovery lands on N. The spine sites (`BatchSeal`,
    /// `MidMerge`, `MergeRetire`) only exist after the process record
    /// sealed — the batch append and the deferred merge both operate
    /// on committed data — so they are post-seal too. The allocator
    /// sites (`AllocSubtreePersist`, `AllocReservationSteal`) are
    /// *not* post-seal: the subtree staging is unsealed (discarded on
    /// recovery) and reservations are volatile.
    pub fn is_post_seal(&self) -> bool {
        matches!(
            self,
            CrashSite::PostSeal
                | CrashSite::MidApply { .. }
                | CrashSite::MidPipelineStage { .. }
                | CrashSite::PostApplyThread { .. }
                | CrashSite::PostApplyPreRegisters
                | CrashSite::MidRegisterApply { .. }
                | CrashSite::PostCommit
                | CrashSite::BatchSeal { .. }
                | CrashSite::MidMerge { .. }
                | CrashSite::MergeRetire { .. }
        )
    }
}

/// When a [`FaultInjector`] fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CrashPlan {
    /// Never fire — record the boundaries crossed (enumeration runs).
    #[default]
    Record,
    /// Fire at the `n`-th boundary crossing (zero-based), whatever
    /// site it is. This is how an exhaustive sweep addresses every
    /// crash point of a run deterministically.
    AtIndex(u64),
    /// Fire at the first boundary matching this site.
    AtSite(CrashSite),
}

/// The error returned through the pipeline when an injected crash
/// fires: the interrupted operation must stop immediately, leaving
/// persistent state exactly as a real power failure would.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CrashInjected {
    /// The boundary at which the simulated power failure fired.
    pub site: CrashSite,
}

impl std::fmt::Display for CrashInjected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected crash at {}", self.site)
    }
}

impl std::error::Error for CrashInjected {}

/// Deterministic crash-point fault injector.
///
/// Pipeline code calls [`FaultInjector::observe`] at every named step
/// boundary; the injector records the boundary and, per its
/// [`CrashPlan`], decides whether the simulated power failure fires
/// there. A `Record` run enumerates every boundary a workload crosses;
/// re-running with `AtIndex(i)` for each recorded index visits every
/// crash point exhaustively.
///
/// # Examples
///
/// ```
/// use prosper_gemos::crash::{CrashPlan, CrashSite, FaultInjector};
///
/// let mut inj = FaultInjector::new(CrashPlan::AtIndex(1));
/// assert!(!inj.observe(CrashSite::PreStage));
/// assert!(inj.observe(CrashSite::PreSeal)); // fires here
/// assert!(!inj.observe(CrashSite::PostSeal)); // at most one firing
/// assert_eq!(inj.fired().unwrap().1, CrashSite::PreSeal);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultInjector {
    plan: CrashPlan,
    crossed: Vec<CrashSite>,
    fired: Option<(u64, CrashSite)>,
}

impl FaultInjector {
    /// Creates an injector with the given plan.
    pub fn new(plan: CrashPlan) -> Self {
        Self {
            plan,
            crossed: Vec::new(),
            fired: None,
        }
    }

    /// An injector that never fires (normal operation / enumeration).
    pub fn disabled() -> Self {
        Self::new(CrashPlan::Record)
    }

    /// An injector firing at the `n`-th boundary crossing.
    pub fn at_index(n: u64) -> Self {
        Self::new(CrashPlan::AtIndex(n))
    }

    /// An injector firing at the first boundary matching `site`.
    pub fn at_site(site: CrashSite) -> Self {
        Self::new(CrashPlan::AtSite(site))
    }

    /// Reports crossing a step boundary; returns `true` if the
    /// simulated power failure fires here. Fires at most once per
    /// injector.
    pub fn observe(&mut self, site: CrashSite) -> bool {
        let idx = self.crossed.len() as u64;
        self.crossed.push(site);
        if self.fired.is_some() {
            return false;
        }
        let fire = match self.plan {
            CrashPlan::Record => false,
            CrashPlan::AtIndex(n) => idx == n,
            CrashPlan::AtSite(s) => s == site,
        };
        if fire {
            self.fired = Some((idx, site));
        }
        fire
    }

    /// Every boundary crossed so far, in order.
    pub fn crossed(&self) -> &[CrashSite] {
        &self.crossed
    }

    /// The boundary the crash fired at, if it fired.
    pub fn fired(&self) -> Option<(u64, CrashSite)> {
        self.fired
    }
}

/// Drives crash/recover cycles over a [`Persistent`] implementation,
/// verifying the recovered image against ground truth.
#[derive(Debug)]
pub struct CrashHarness {
    /// Ground truth as of the last *completed* commit.
    committed_truth: MemoryImage,
    /// Live ground truth (what the workload has written so far).
    live_truth: MemoryImage,
    commits: u64,
}

impl Default for CrashHarness {
    fn default() -> Self {
        Self::new()
    }
}

impl CrashHarness {
    /// Creates a harness with empty ground truth.
    pub fn new() -> Self {
        Self {
            committed_truth: MemoryImage::new(),
            live_truth: MemoryImage::new(),
            commits: 0,
        }
    }

    /// Records a ground-truth write (mirror every workload store here).
    pub fn record_write(&mut self, addr: prosper_memsim::addr::VirtAddr, bytes: &[u8]) {
        self.live_truth.write(addr, bytes);
    }

    /// Live ground-truth image.
    pub fn live_truth(&self) -> &MemoryImage {
        &self.live_truth
    }

    /// Commits through `target` and snapshots the ground truth.
    pub fn commit(&mut self, target: &mut dyn Persistent) {
        target.commit();
        self.committed_truth = self.live_truth.clone();
        self.commits += 1;
    }

    /// Number of completed commits.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Crashes at `point`, recovers `target`, and verifies the
    /// recovered image matches the appropriate ground truth over
    /// `range`.
    ///
    /// Returns `Ok(())` on a consistent recovery.
    ///
    /// # Errors
    ///
    /// Returns the first mismatching address on an inconsistent
    /// recovery.
    pub fn crash_and_verify(
        &self,
        target: &mut dyn Persistent,
        point: CrashPoint,
        range: VirtRange,
    ) -> Result<(), prosper_memsim::addr::VirtAddr> {
        // The crash itself: volatile state is lost. `target` models
        // this inside recover(); the harness only checks the outcome.
        let _ = point;
        target.recover();
        let expected = &self.committed_truth;
        match expected.first_mismatch(target.recovered_image(), range) {
            None => Ok(()),
            Some(addr) => Err(addr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosper_memsim::addr::VirtAddr;

    /// A trivially correct persistent store: commit clones the volatile
    /// image.
    #[derive(Default, Debug)]
    struct CloneStore {
        volatile: MemoryImage,
        persistent: MemoryImage,
    }

    impl Persistent for CloneStore {
        fn commit(&mut self) {
            self.persistent = self.volatile.clone();
        }
        fn recover(&mut self) {
            self.volatile = self.persistent.clone();
        }
        fn recovered_image(&self) -> &MemoryImage {
            if self.persistent.matches(
                &self.volatile,
                VirtRange::new(VirtAddr::new(0), VirtAddr::new(0)),
            ) {
                &self.volatile
            } else {
                &self.persistent
            }
        }
    }

    fn range() -> VirtRange {
        VirtRange::new(VirtAddr::new(0x1000), VirtAddr::new(0x2000))
    }

    #[test]
    fn recovery_sees_last_commit_not_later_writes() {
        let mut h = CrashHarness::new();
        let mut store = CloneStore::default();
        h.record_write(VirtAddr::new(0x1000), b"first");
        store.volatile.write(VirtAddr::new(0x1000), b"first");
        h.commit(&mut store);
        // Post-commit writes are lost at the crash.
        h.record_write(VirtAddr::new(0x1000), b"later");
        store.volatile.write(VirtAddr::new(0x1000), b"later");
        // But the harness verifies against the *committed* truth.
        assert!(h
            .crash_and_verify(&mut store, CrashPoint::BeforeCommit, range())
            .is_ok());
        assert_eq!(h.commits(), 1);
    }

    #[test]
    fn broken_persistence_is_detected() {
        /// A store that "forgets" data on recover.
        #[derive(Default, Debug)]
        struct Lossy {
            volatile: MemoryImage,
        }
        impl Persistent for Lossy {
            fn commit(&mut self) {}
            fn recover(&mut self) {
                self.volatile = MemoryImage::new();
            }
            fn recovered_image(&self) -> &MemoryImage {
                &self.volatile
            }
        }
        let mut h = CrashHarness::new();
        let mut store = Lossy::default();
        h.record_write(VirtAddr::new(0x1500), &[7; 16]);
        store.volatile.write(VirtAddr::new(0x1500), &[7; 16]);
        h.commit(&mut store);
        let err = h
            .crash_and_verify(&mut store, CrashPoint::AfterCommit, range())
            .unwrap_err();
        assert_eq!(err, VirtAddr::new(0x1500));
    }

    #[test]
    fn injector_at_site_fires_once_on_match() {
        let mut inj = FaultInjector::at_site(CrashSite::PostSeal);
        assert!(!inj.observe(CrashSite::PreStage));
        assert!(!inj.observe(CrashSite::PreSeal));
        assert!(inj.observe(CrashSite::PostSeal));
        assert!(!inj.observe(CrashSite::PostSeal), "fires at most once");
        assert_eq!(inj.fired(), Some((2, CrashSite::PostSeal)));
        assert_eq!(inj.crossed().len(), 4);
    }

    #[test]
    fn recording_injector_never_fires() {
        let mut inj = FaultInjector::disabled();
        for _ in 0..8 {
            assert!(!inj.observe(CrashSite::MidStage {
                tid: 1,
                runs_staged: 2
            }));
        }
        assert_eq!(inj.fired(), None);
        assert_eq!(inj.crossed().len(), 8);
    }

    #[test]
    fn post_seal_classification_matches_protocol() {
        assert!(!CrashSite::PreStage.is_post_seal());
        assert!(!CrashSite::MidStage {
            tid: 0,
            runs_staged: 1
        }
        .is_post_seal());
        assert!(!CrashSite::PreSeal.is_post_seal());
        assert!(CrashSite::PostSeal.is_post_seal());
        assert!(CrashSite::MidApply {
            tid: 0,
            runs_applied: 1
        }
        .is_post_seal());
        assert!(
            CrashSite::MidPipelineStage {
                tid: 1,
                runs_staged: 1
            }
            .is_post_seal(),
            "overlap window opens only after seal(N); recovery lands on N"
        );
        assert!(CrashSite::PostApplyPreRegisters.is_post_seal());
        assert!(CrashSite::PostCommit.is_post_seal());
        assert!(!CrashSite::MidBitmapClear { tid: 0 }.is_post_seal());
        assert!(!CrashSite::MidSwitchSave.is_post_seal());
        // Spine sites operate on already-committed data: post-seal.
        assert!(CrashSite::BatchSeal { tid: 0 }.is_post_seal());
        assert!(CrashSite::MidMerge {
            tid: 0,
            batches_folded: 1
        }
        .is_post_seal());
        assert!(CrashSite::MergeRetire { tid: 1 }.is_post_seal());
        // Allocator sites: unsealed staging / volatile reservations.
        assert!(!CrashSite::AllocSubtreePersist { subtree: 2 }.is_post_seal());
        assert!(!CrashSite::AllocReservationSteal { worker: 1 }.is_post_seal());
    }

    #[test]
    fn crash_injected_displays_site() {
        let err = CrashInjected {
            site: CrashSite::MidApply {
                tid: 3,
                runs_applied: 2,
            },
        };
        assert!(err.to_string().contains("mid-apply(tid=3, runs=2)"));
    }

    #[test]
    fn register_checkpoint_validity_flag() {
        let ckpt = RegisterCheckpoint {
            regs: RegisterFile::default(),
            sequence: 3,
            valid: true,
        };
        assert!(ckpt.valid);
        assert_eq!(ckpt.sequence, 3);
    }
}
