//! Crash injection and restore verification.
//!
//! The paper validates correctness by killing the gem5 process mid-run
//! and confirming that the application inside GemOS resumes from its
//! last checkpoint. We model the same discipline: a [`CrashHarness`]
//! owns the volatile state (dropped at a crash) and the persistent
//! state (an NVM [`MemoryImage`] plus checkpointed registers), and a
//! [`Persistent`] implementation knows how to commit and recover.

use prosper_memsim::addr::VirtRange;

use crate::image::MemoryImage;
use crate::process::RegisterFile;

/// State that survives a crash and can be recovered.
///
/// Implementors commit volatile state into their persistent image at
/// checkpoints; after a crash, [`Self::recover`] must reconstruct the
/// committed view even if the crash interrupted a commit.
pub trait Persistent {
    /// Runs the commit protocol, making the current volatile state the
    /// new recovery point.
    fn commit(&mut self);

    /// Rebuilds a consistent state after a crash (applies or discards
    /// any half-finished commit).
    fn recover(&mut self);

    /// The recovered view of the given range.
    fn recovered_image(&self) -> &MemoryImage;
}

/// A checkpointed register snapshot stored in NVM.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct RegisterCheckpoint {
    /// The saved registers.
    pub regs: RegisterFile,
    /// Monotonic checkpoint sequence number.
    pub sequence: u64,
    /// Valid flag: written last during commit so a torn register
    /// checkpoint is detected and the previous one used.
    pub valid: bool,
}

/// Where in the commit protocol a crash is injected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrashPoint {
    /// Before the commit started: recovery sees the previous state.
    BeforeCommit,
    /// After the commit fully completed.
    AfterCommit,
}

/// Drives crash/recover cycles over a [`Persistent`] implementation,
/// verifying the recovered image against ground truth.
#[derive(Debug)]
pub struct CrashHarness {
    /// Ground truth as of the last *completed* commit.
    committed_truth: MemoryImage,
    /// Live ground truth (what the workload has written so far).
    live_truth: MemoryImage,
    commits: u64,
}

impl Default for CrashHarness {
    fn default() -> Self {
        Self::new()
    }
}

impl CrashHarness {
    /// Creates a harness with empty ground truth.
    pub fn new() -> Self {
        Self {
            committed_truth: MemoryImage::new(),
            live_truth: MemoryImage::new(),
            commits: 0,
        }
    }

    /// Records a ground-truth write (mirror every workload store here).
    pub fn record_write(&mut self, addr: prosper_memsim::addr::VirtAddr, bytes: &[u8]) {
        self.live_truth.write(addr, bytes);
    }

    /// Live ground-truth image.
    pub fn live_truth(&self) -> &MemoryImage {
        &self.live_truth
    }

    /// Commits through `target` and snapshots the ground truth.
    pub fn commit(&mut self, target: &mut dyn Persistent) {
        target.commit();
        self.committed_truth = self.live_truth.clone();
        self.commits += 1;
    }

    /// Number of completed commits.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Crashes at `point`, recovers `target`, and verifies the
    /// recovered image matches the appropriate ground truth over
    /// `range`.
    ///
    /// Returns `Ok(())` on a consistent recovery.
    ///
    /// # Errors
    ///
    /// Returns the first mismatching address on an inconsistent
    /// recovery.
    pub fn crash_and_verify(
        &self,
        target: &mut dyn Persistent,
        point: CrashPoint,
        range: VirtRange,
    ) -> Result<(), prosper_memsim::addr::VirtAddr> {
        // The crash itself: volatile state is lost. `target` models
        // this inside recover(); the harness only checks the outcome.
        let _ = point;
        target.recover();
        let expected = &self.committed_truth;
        match expected.first_mismatch(target.recovered_image(), range) {
            None => Ok(()),
            Some(addr) => Err(addr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosper_memsim::addr::VirtAddr;

    /// A trivially correct persistent store: commit clones the volatile
    /// image.
    #[derive(Default, Debug)]
    struct CloneStore {
        volatile: MemoryImage,
        persistent: MemoryImage,
    }

    impl Persistent for CloneStore {
        fn commit(&mut self) {
            self.persistent = self.volatile.clone();
        }
        fn recover(&mut self) {
            self.volatile = self.persistent.clone();
        }
        fn recovered_image(&self) -> &MemoryImage {
            if self.persistent.matches(
                &self.volatile,
                VirtRange::new(VirtAddr::new(0), VirtAddr::new(0)),
            ) {
                &self.volatile
            } else {
                &self.persistent
            }
        }
    }

    fn range() -> VirtRange {
        VirtRange::new(VirtAddr::new(0x1000), VirtAddr::new(0x2000))
    }

    #[test]
    fn recovery_sees_last_commit_not_later_writes() {
        let mut h = CrashHarness::new();
        let mut store = CloneStore::default();
        h.record_write(VirtAddr::new(0x1000), b"first");
        store.volatile.write(VirtAddr::new(0x1000), b"first");
        h.commit(&mut store);
        // Post-commit writes are lost at the crash.
        h.record_write(VirtAddr::new(0x1000), b"later");
        store.volatile.write(VirtAddr::new(0x1000), b"later");
        // But the harness verifies against the *committed* truth.
        assert!(h
            .crash_and_verify(&mut store, CrashPoint::BeforeCommit, range())
            .is_ok());
        assert_eq!(h.commits(), 1);
    }

    #[test]
    fn broken_persistence_is_detected() {
        /// A store that "forgets" data on recover.
        #[derive(Default, Debug)]
        struct Lossy {
            volatile: MemoryImage,
        }
        impl Persistent for Lossy {
            fn commit(&mut self) {}
            fn recover(&mut self) {
                self.volatile = MemoryImage::new();
            }
            fn recovered_image(&self) -> &MemoryImage {
                &self.volatile
            }
        }
        let mut h = CrashHarness::new();
        let mut store = Lossy::default();
        h.record_write(VirtAddr::new(0x1500), &[7; 16]);
        store.volatile.write(VirtAddr::new(0x1500), &[7; 16]);
        h.commit(&mut store);
        let err = h
            .crash_and_verify(&mut store, CrashPoint::AfterCommit, range())
            .unwrap_err();
        assert_eq!(err, VirtAddr::new(0x1500));
    }

    #[test]
    fn register_checkpoint_validity_flag() {
        let ckpt = RegisterCheckpoint {
            regs: RegisterFile::default(),
            sequence: 3,
            valid: true,
        };
        assert!(ckpt.valid);
        assert_eq!(ckpt.sequence, 3);
    }
}
