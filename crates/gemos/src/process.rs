//! Processes, threads, register state, and VMAs.
//!
//! The checkpoint subsystem persists the full execution state of a
//! process: CPU registers per thread plus the mutable memory segments.
//! This module models the process container; the memory-persistence
//! mechanisms themselves plug into [`crate::checkpoint`].

use prosper_memsim::addr::{VirtAddr, VirtRange};
use serde::{Deserialize, Serialize};

use crate::pagetable::PageTable;

/// x86-64-style general-purpose register file plus instruction and
/// stack pointers — the non-memory state a checkpoint captures.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RegisterFile {
    /// General-purpose registers.
    pub gpr: [u64; 16],
    /// Instruction pointer.
    pub rip: u64,
    /// Stack pointer.
    pub rsp: u64,
    /// Flags.
    pub rflags: u64,
}

impl RegisterFile {
    /// Serialized size in bytes (what a register checkpoint writes to
    /// NVM).
    pub const CHECKPOINT_BYTES: u64 = 16 * 8 + 3 * 8;
}

/// Kind of a virtual memory area.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum VmaKind {
    /// A per-thread stack (grows downward on demand).
    Stack {
        /// Owning thread.
        tid: u32,
    },
    /// The process heap.
    Heap,
    /// Code/data/other mappings.
    Other,
}

/// A virtual memory area.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Vma {
    /// The address range.
    pub range: VirtRange,
    /// What the area holds.
    pub kind: VmaKind,
}

/// One software thread.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Thread {
    /// Thread id.
    pub tid: u32,
    /// Architectural register state.
    pub regs: RegisterFile,
}

/// A process: threads, VMAs, and a page table.
#[derive(Debug)]
pub struct Process {
    pid: u32,
    threads: Vec<Thread>,
    vmas: Vec<Vma>,
    page_table: PageTable,
}

impl Process {
    /// Creates a process with a single thread and no mappings.
    pub fn new(pid: u32) -> Self {
        Self {
            pid,
            threads: vec![Thread {
                tid: 0,
                regs: RegisterFile::default(),
            }],
            vmas: Vec::new(),
            page_table: PageTable::new(),
        }
    }

    /// Process id.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// The process's threads.
    pub fn threads(&self) -> &[Thread] {
        &self.threads
    }

    /// Mutable thread access (for register updates).
    pub fn threads_mut(&mut self) -> &mut [Thread] {
        &mut self.threads
    }

    /// Adds a thread with the next tid; returns the new tid.
    pub fn spawn_thread(&mut self) -> u32 {
        let tid = self
            .threads
            .iter()
            .map(|t| t.tid)
            .max()
            .map_or(0, |m| m + 1);
        self.threads.push(Thread {
            tid,
            regs: RegisterFile::default(),
        });
        tid
    }

    /// Registers a VMA.
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps an existing VMA.
    pub fn add_vma(&mut self, vma: Vma) {
        assert!(
            !self
                .vmas
                .iter()
                .any(|v| v.range.intersect(&vma.range).is_some()),
            "VMA {:?} overlaps an existing mapping",
            vma
        );
        self.vmas.push(vma);
    }

    /// All VMAs.
    pub fn vmas(&self) -> &[Vma] {
        &self.vmas
    }

    /// The stack VMA of `tid`, if registered. This is the range the OS
    /// programs into the Prosper stack-range MSRs (step 1 of Fig. 5).
    pub fn stack_vma(&self, tid: u32) -> Option<&Vma> {
        self.vmas
            .iter()
            .find(|v| matches!(v.kind, VmaKind::Stack { tid: t } if t == tid))
    }

    /// The heap VMA, if registered.
    pub fn heap_vma(&self) -> Option<&Vma> {
        self.vmas.iter().find(|v| v.kind == VmaKind::Heap)
    }

    /// The VMA containing `addr`, if any.
    pub fn vma_of(&self, addr: VirtAddr) -> Option<&Vma> {
        self.vmas.iter().find(|v| v.range.contains(addr))
    }

    /// The process page table.
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Mutable page-table access.
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    /// Total register-checkpoint bytes across threads.
    pub fn register_checkpoint_bytes(&self) -> u64 {
        self.threads.len() as u64 * RegisterFile::CHECKPOINT_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(start: u64, end: u64) -> VirtRange {
        VirtRange::new(VirtAddr::new(start), VirtAddr::new(end))
    }

    #[test]
    fn new_process_has_main_thread() {
        let p = Process::new(1);
        assert_eq!(p.pid(), 1);
        assert_eq!(p.threads().len(), 1);
        assert_eq!(p.threads()[0].tid, 0);
    }

    #[test]
    fn spawn_assigns_increasing_tids() {
        let mut p = Process::new(1);
        assert_eq!(p.spawn_thread(), 1);
        assert_eq!(p.spawn_thread(), 2);
        assert_eq!(p.threads().len(), 3);
    }

    #[test]
    fn vma_lookup_by_kind_and_address() {
        let mut p = Process::new(1);
        p.add_vma(Vma {
            range: r(0x7000_0000, 0x7000_8000),
            kind: VmaKind::Stack { tid: 0 },
        });
        p.add_vma(Vma {
            range: r(0x5000_0000, 0x5100_0000),
            kind: VmaKind::Heap,
        });
        assert!(p.stack_vma(0).is_some());
        assert!(p.stack_vma(1).is_none());
        assert!(p.heap_vma().is_some());
        assert_eq!(
            p.vma_of(VirtAddr::new(0x5000_0010)).unwrap().kind,
            VmaKind::Heap
        );
        assert!(p.vma_of(VirtAddr::new(0x100)).is_none());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_vma_rejected() {
        let mut p = Process::new(1);
        p.add_vma(Vma {
            range: r(0x1000, 0x3000),
            kind: VmaKind::Other,
        });
        p.add_vma(Vma {
            range: r(0x2000, 0x4000),
            kind: VmaKind::Heap,
        });
    }

    #[test]
    fn register_checkpoint_size() {
        let mut p = Process::new(1);
        p.spawn_thread();
        assert_eq!(
            p.register_checkpoint_bytes(),
            2 * RegisterFile::CHECKPOINT_BYTES
        );
    }

    #[test]
    fn register_file_roundtrips_values() {
        let mut p = Process::new(1);
        p.threads_mut()[0].regs.gpr[3] = 42;
        p.threads_mut()[0].regs.rip = 0x400000;
        assert_eq!(p.threads()[0].regs.gpr[3], 42);
        assert_eq!(p.threads()[0].regs.rip, 0x400000);
    }
}
