//! # prosper-gemos
//!
//! A GemOS-like operating-system model for the Prosper reproduction.
//!
//! The paper builds its end-to-end checkpoint solution on GemOS, a small
//! teaching OS running on gem5, extended with hybrid-memory (DRAM+NVM)
//! support and a periodic application checkpoint/restore subsystem. This
//! crate models the pieces of that OS the experiments exercise:
//!
//! * [`pte`] / [`pagetable`] — 4 KiB paging with present/writable/
//!   accessed/dirty bits, dirty-bit reset/collect walks (the Dirtybit
//!   baseline) and write-protect fault tracking (the SoftDirty-style
//!   baseline);
//! * [`physmem`] — the serial reference DRAM/NVM frame allocator over
//!   the hybrid layout (retained as the differential oracle);
//! * [`llalloc`] — the lock-free two-level hierarchical frame
//!   allocator that replaced it on the hot path: atomic bitfields
//!   under a tree of free-counters with per-worker subtree
//!   reservations, the NVM pool crash-persisted through the
//!   staging/seal discipline;
//! * [`image`] — sparse byte-addressable memory images used as ground
//!   truth and persistent copies in crash-consistency tests;
//! * [`process`] — processes, threads, register state, and VMAs;
//! * [`checkpoint`] — the [`checkpoint::MemoryPersistence`] plug-in
//!   trait implemented by Prosper and every baseline, plus the
//!   [`checkpoint::CheckpointManager`] that drives periodic-interval
//!   experiments end to end;
//! * [`context`] — context-switch cost modelling with tracker
//!   save/restore participants;
//! * [`crash`] — crash injection and restore verification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod context;
pub mod crash;
pub mod image;
pub mod llalloc;
pub mod pagetable;
pub mod physmem;
pub mod process;
pub mod pte;
pub mod restore;

pub use checkpoint::{CheckpointManager, CheckpointOutcome, MemoryPersistence};
pub use llalloc::{DurableAllocTree, FrameAlloc};
pub use pagetable::PageTable;
pub use process::Process;
