//! The OS checkpoint subsystem: the [`MemoryPersistence`] plug-in
//! trait and the [`CheckpointManager`] experiment driver.
//!
//! The paper's GemOS baseline captures all process state incrementally
//! at fixed consistency intervals (10 ms by default). The mutable
//! memory segments (stack, heap) are persisted by a pluggable
//! *mechanism* per region — Prosper, Dirtybit, SSP, Romulus, … — and
//! the register state is appended to every checkpoint. The manager
//! replays a workload trace through the machine model, invokes the
//! per-store hooks of each region's mechanism, and runs the
//! end-of-interval commit protocol, accumulating the costs that become
//! Figures 8–11.

use prosper_memsim::addr::{VirtAddr, VirtRange};
use prosper_memsim::machine::Machine;
use prosper_memsim::tlb::Tlb;
use prosper_memsim::Cycles;
use prosper_telemetry as telemetry;
use prosper_trace::interval::{Interval, IntervalCollector};
use prosper_trace::record::{AccessKind, MemAccess, Region, TraceEvent};
use prosper_trace::source::TraceSource;
use serde::{Deserialize, Serialize};

use crate::process::RegisterFile;

/// Outcome of one end-of-interval checkpoint for one region.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CheckpointOutcome {
    /// Bytes copied into NVM by this checkpoint.
    pub bytes_copied: u64,
    /// Cycles spent in the checkpoint operation (metadata inspection,
    /// clearing, and data copy).
    pub cycles: Cycles,
    /// The metadata-processing share of `cycles` (bitmap or page-table
    /// inspection and clearing).
    pub metadata_cycles: Cycles,
}

impl CheckpointOutcome {
    /// Sums two outcomes (e.g. stack + heap regions).
    pub fn merge(self, other: CheckpointOutcome) -> CheckpointOutcome {
        CheckpointOutcome {
            bytes_copied: self.bytes_copied + other.bytes_copied,
            cycles: self.cycles + other.cycles,
            metadata_cycles: self.metadata_cycles + other.metadata_cycles,
        }
    }
}

/// Context handed to [`MemoryPersistence::end_interval`].
#[derive(Clone, Copy, Debug)]
pub struct IntervalInfo {
    /// The tracked region (e.g. the reserved stack range).
    pub region: VirtRange,
    /// Maximum active stack region of the interval: `[min_sp, top)`.
    /// For non-stack regions this equals `region`.
    pub active: VirtRange,
    /// SP at the end of the interval (stack regions only).
    pub final_sp: VirtAddr,
}

/// A memory-persistence mechanism for one region of a process.
///
/// Implemented by Prosper (`prosper-core`) and by every baseline
/// (`prosper-baselines`). Mechanisms charge their runtime costs to the
/// [`Machine`]:
///
/// * costs on the store critical path (log writes, `clwb`s, NVM
///   residence penalties) are charged inside [`Self::on_store`];
/// * background traffic (tracker bitmap stores, consolidation threads)
///   is injected off the critical path;
/// * checkpoint-time costs are charged inside [`Self::end_interval`].
pub trait MemoryPersistence {
    /// Mechanism name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Prepares tracking state for a new interval (reset dirty bits,
    /// clear bitmaps, write-protect pages, ...).
    fn begin_interval(&mut self, machine: &mut Machine, region: VirtRange);

    /// Observes one store into the tracked region, charging any
    /// critical-path cost to the machine.
    fn on_store(&mut self, machine: &mut Machine, access: &MemAccess);

    /// Commits the interval: persists the region's modifications and
    /// returns what it cost.
    fn end_interval(&mut self, machine: &mut Machine, info: IntervalInfo) -> CheckpointOutcome;

    /// `true` if the mechanism keeps the tracked region in DRAM
    /// (Prosper, Dirtybit); `false` if the region must live in NVM
    /// (SSP, Romulus, flush/undo/redo), which adds NVM latency to every
    /// demand access (Table I, "Allows stack in DRAM").
    fn region_in_dram(&self) -> bool {
        true
    }
}

/// A no-op mechanism: the region is volatile, nothing is persisted.
/// Used as the "no persistence" normalisation baseline in Figures 8–10.
#[derive(Clone, Copy, Default, Debug)]
pub struct NoPersistence;

impl MemoryPersistence for NoPersistence {
    fn name(&self) -> &'static str {
        "None"
    }

    fn begin_interval(&mut self, _machine: &mut Machine, _region: VirtRange) {}

    fn on_store(&mut self, _machine: &mut Machine, _access: &MemAccess) {}

    fn end_interval(&mut self, _machine: &mut Machine, _info: IntervalInfo) -> CheckpointOutcome {
        CheckpointOutcome::default()
    }
}

/// Aggregate result of a checkpointed run.
#[derive(Clone, Copy, Default, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// Total simulated cycles including checkpoint time.
    pub total_cycles: Cycles,
    /// Cycles spent inside end-of-interval checkpoints.
    pub checkpoint_cycles: Cycles,
    /// Metadata share of the checkpoint cycles.
    pub metadata_cycles: Cycles,
    /// Bytes copied to NVM across all checkpoints.
    pub bytes_copied: u64,
    /// Number of completed intervals.
    pub intervals: u64,
    /// Stack stores observed.
    pub stack_stores: u64,
    /// Heap stores observed.
    pub heap_stores: u64,
}

impl RunResult {
    /// Mean checkpoint size in bytes.
    pub fn mean_checkpoint_bytes(&self) -> f64 {
        if self.intervals == 0 {
            0.0
        } else {
            self.bytes_copied as f64 / self.intervals as f64
        }
    }

    /// Mean cycles per checkpoint.
    pub fn mean_checkpoint_cycles(&self) -> f64 {
        if self.intervals == 0 {
            0.0
        } else {
            self.checkpoint_cycles as f64 / self.intervals as f64
        }
    }
}

/// Per-access latency penalty (cycles) charged when a region lives in
/// NVM instead of DRAM: the demand access bypasses the DRAM assumption
/// of the machine model and pays the device difference. Derived from
/// the PCM vs DDR4 read-latency gap net of cache hits; kept
/// deliberately moderate because most accesses still hit in cache.
const NVM_RESIDENCE_STORE_PENALTY: Cycles = 6;
const NVM_RESIDENCE_LOAD_PENALTY: Cycles = 2;

/// Drives a workload through the machine with per-region persistence
/// mechanisms, at a fixed checkpoint interval.
pub struct CheckpointManager<'m> {
    machine: &'m mut Machine,
    interval_budget: Cycles,
    /// Data TLB consulted by every demand access (mechanism-neutral
    /// translation costs).
    tlb: Tlb,
}

impl<'m> std::fmt::Debug for CheckpointManager<'m> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointManager")
            .field("interval_budget", &self.interval_budget)
            .finish()
    }
}

impl<'m> CheckpointManager<'m> {
    /// Creates a manager charging work to `machine`, with the given
    /// per-interval cycle budget.
    ///
    /// # Panics
    ///
    /// Panics if `interval_budget` is zero.
    pub fn new(machine: &'m mut Machine, interval_budget: Cycles) -> Self {
        assert!(interval_budget > 0, "interval budget must be positive");
        Self {
            machine,
            interval_budget,
            tlb: Tlb::new(64),
        }
    }

    /// Replays one collected interval through the machine, invoking the
    /// store hooks of the stack and (optionally) heap mechanisms.
    fn replay_interval(
        &mut self,
        interval: &Interval,
        stack_mech: &mut dyn MemoryPersistence,
        heap_mech: &mut Option<&mut dyn MemoryPersistence>,
        result: &mut RunResult,
    ) {
        let stack_in_dram = stack_mech.region_in_dram();
        let heap_in_dram = heap_mech.as_ref().is_none_or(|m| m.region_in_dram());
        for ev in &interval.events {
            match ev {
                TraceEvent::Compute(c) => self.machine.advance(*c),
                TraceEvent::Access(a) => {
                    let walk = self.tlb.access(a.vaddr);
                    if walk > 0 {
                        self.machine.advance(walk);
                    }
                    match a.kind {
                        AccessKind::Load => {
                            self.machine.load(a.vaddr, u64::from(a.size));
                            let in_dram = match a.region {
                                Region::Stack => stack_in_dram,
                                Region::Heap => heap_in_dram,
                                Region::Other => true,
                            };
                            if !in_dram {
                                self.machine.advance(NVM_RESIDENCE_LOAD_PENALTY);
                            }
                        }
                        AccessKind::Store => {
                            self.machine.store(a.vaddr, u64::from(a.size));
                            match a.region {
                                Region::Stack => {
                                    result.stack_stores += 1;
                                    if !stack_in_dram {
                                        self.machine.advance(NVM_RESIDENCE_STORE_PENALTY);
                                    }
                                    stack_mech.on_store(self.machine, a);
                                }
                                Region::Heap => {
                                    result.heap_stores += 1;
                                    if let Some(m) = heap_mech.as_deref_mut() {
                                        if !heap_in_dram {
                                            self.machine.advance(NVM_RESIDENCE_STORE_PENALTY);
                                        }
                                        m.on_store(self.machine, a);
                                    }
                                }
                                Region::Other => {}
                            }
                        }
                    }
                }
            }
        }
    }

    /// Runs `intervals` checkpoint intervals of `source` with
    /// `stack_mech` persisting the stack and, if provided, `heap_mech`
    /// persisting the heap region.
    ///
    /// Every checkpoint also persists the register state (one
    /// [`RegisterFile::CHECKPOINT_BYTES`] write per thread), as the
    /// GemOS baseline does.
    pub fn run<S: TraceSource>(
        &mut self,
        source: S,
        stack_mech: &mut dyn MemoryPersistence,
        mut heap_mech: Option<&mut dyn MemoryPersistence>,
        heap_region: VirtRange,
        intervals: u64,
    ) -> RunResult {
        let stack_region = source.stack().reserved_range();
        let stack_top = source.stack().top();
        let mut collector = IntervalCollector::new(source, self.interval_budget);
        let mut result = RunResult::default();

        stack_mech.begin_interval(self.machine, stack_region);
        if let Some(m) = heap_mech.as_deref_mut() {
            m.begin_interval(self.machine, heap_region);
        }

        let tel = telemetry::enabled();
        for _ in 0..intervals {
            let interval = collector.next_interval();
            self.replay_interval(&interval, stack_mech, &mut heap_mech, &mut result);

            let ckpt_start = self.machine.now();
            // The whole commit is one span; each region's mechanism
            // commit nests inside, categorised by mechanism name so
            // baselines are covered without their own instrumentation.
            if tel {
                telemetry::span_begin(telemetry::names::SPAN_CKPT_INTERVAL, "ckpt", ckpt_start);
            }
            // Stack region commit.
            let info = IntervalInfo {
                region: stack_region,
                active: VirtRange::new(interval.min_sp, stack_top),
                final_sp: interval.final_sp,
            };
            if tel {
                telemetry::span_begin(
                    telemetry::names::SPAN_CKPT_COMMIT_STACK,
                    stack_mech.name(),
                    self.machine.now(),
                );
            }
            let mut outcome = stack_mech.end_interval(self.machine, info);
            if tel {
                telemetry::span_end(telemetry::names::SPAN_CKPT_COMMIT_STACK, self.machine.now());
            }
            // Heap region commit.
            if let Some(m) = heap_mech.as_deref_mut() {
                let hinfo = IntervalInfo {
                    region: heap_region,
                    active: heap_region,
                    final_sp: interval.final_sp,
                };
                if tel {
                    telemetry::span_begin(
                        telemetry::names::SPAN_CKPT_COMMIT_HEAP,
                        m.name(),
                        self.machine.now(),
                    );
                }
                outcome = outcome.merge(m.end_interval(self.machine, hinfo));
                if tel {
                    telemetry::span_end(
                        telemetry::names::SPAN_CKPT_COMMIT_HEAP,
                        self.machine.now(),
                    );
                }
            }
            // Register state goes into every checkpoint.
            let reg_bytes = RegisterFile::CHECKPOINT_BYTES;
            if tel {
                telemetry::span_begin(
                    telemetry::names::SPAN_CKPT_REGISTERS,
                    "ckpt",
                    self.machine.now(),
                );
            }
            self.machine.bulk_copy_dram_to_nvm(reg_bytes);
            if tel {
                telemetry::span_end(telemetry::names::SPAN_CKPT_REGISTERS, self.machine.now());
            }

            // Prepare the next interval.
            stack_mech.begin_interval(self.machine, stack_region);
            if let Some(m) = heap_mech.as_deref_mut() {
                m.begin_interval(self.machine, heap_region);
            }

            let ckpt_cycles = self.machine.now() - ckpt_start;
            if tel {
                telemetry::span_end(telemetry::names::SPAN_CKPT_INTERVAL, self.machine.now());
                telemetry::with(|t| {
                    let r = t.registry();
                    r.counter("prosper.gemos.ckpt.intervals").inc();
                    r.counter("prosper.gemos.ckpt.bytes_copied")
                        .add(outcome.bytes_copied);
                    r.histogram("prosper.gemos.ckpt.cycles").record(ckpt_cycles);
                });
            }
            result.checkpoint_cycles += ckpt_cycles;
            result.metadata_cycles += outcome.metadata_cycles;
            result.bytes_copied += outcome.bytes_copied;
            result.intervals += 1;
        }
        if tel {
            telemetry::with(|t| {
                let r = t.registry();
                r.counter("prosper.gemos.run.stack_stores")
                    .add(result.stack_stores);
                r.counter("prosper.gemos.run.heap_stores")
                    .add(result.heap_stores);
            });
        }
        result.total_cycles = self.machine.now();
        result
    }

    /// Convenience: runs with only a stack mechanism.
    pub fn run_stack_only<S: TraceSource>(
        &mut self,
        source: S,
        stack_mech: &mut dyn MemoryPersistence,
        intervals: u64,
    ) -> RunResult {
        let dummy_heap = VirtRange::new(VirtAddr::new(0), VirtAddr::new(0));
        self.run(source, stack_mech, None, dummy_heap, intervals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosper_memsim::config::MachineConfig;
    use prosper_trace::workloads::{Workload, WorkloadProfile};

    /// A toy mechanism that copies a fixed 4 KiB per interval.
    #[derive(Default, Debug)]
    struct FixedCopy {
        begins: u64,
        stores_seen: u64,
    }

    impl MemoryPersistence for FixedCopy {
        fn name(&self) -> &'static str {
            "FixedCopy"
        }

        fn begin_interval(&mut self, _m: &mut Machine, _r: VirtRange) {
            self.begins += 1;
        }

        fn on_store(&mut self, _m: &mut Machine, _a: &MemAccess) {
            self.stores_seen += 1;
        }

        fn end_interval(&mut self, m: &mut Machine, _i: IntervalInfo) -> CheckpointOutcome {
            let cycles = m.bulk_copy_dram_to_nvm(4096);
            CheckpointOutcome {
                bytes_copied: 4096,
                cycles,
                metadata_cycles: 0,
            }
        }
    }

    #[test]
    fn manager_runs_intervals_and_accumulates() {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mgr = CheckpointManager::new(&mut machine, 20_000);
        let w = Workload::new(WorkloadProfile::gapbs_pr(), 1);
        let mut mech = FixedCopy::default();
        let res = mgr.run_stack_only(w, &mut mech, 5);
        assert_eq!(res.intervals, 5);
        assert_eq!(res.bytes_copied, 5 * 4096);
        assert!(res.checkpoint_cycles > 0);
        assert!(res.total_cycles > res.checkpoint_cycles);
        assert!(res.stack_stores > 0);
        assert_eq!(mech.begins, 6, "one begin per interval plus the initial");
        assert_eq!(mech.stores_seen, res.stack_stores);
    }

    #[test]
    fn no_persistence_copies_only_registers() {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mgr = CheckpointManager::new(&mut machine, 20_000);
        let w = Workload::new(WorkloadProfile::gapbs_pr(), 1);
        let mut none = NoPersistence;
        let res = mgr.run_stack_only(w, &mut none, 3);
        assert_eq!(res.bytes_copied, 0);
        assert_eq!(res.intervals, 3);
    }

    #[test]
    fn nvm_resident_mechanism_is_slower() {
        #[derive(Debug)]
        struct NvmResident;
        impl MemoryPersistence for NvmResident {
            fn name(&self) -> &'static str {
                "NvmResident"
            }
            fn begin_interval(&mut self, _m: &mut Machine, _r: VirtRange) {}
            fn on_store(&mut self, _m: &mut Machine, _a: &MemAccess) {}
            fn end_interval(&mut self, _m: &mut Machine, _i: IntervalInfo) -> CheckpointOutcome {
                CheckpointOutcome::default()
            }
            fn region_in_dram(&self) -> bool {
                false
            }
        }

        let run = |mech: &mut dyn MemoryPersistence| {
            let mut machine = Machine::new(MachineConfig::setup_i());
            let mut mgr = CheckpointManager::new(&mut machine, 20_000);
            let w = Workload::new(WorkloadProfile::gapbs_pr(), 1);
            mgr.run_stack_only(w, mech, 5).total_cycles
        };
        let dram = run(&mut NoPersistence);
        let nvm = run(&mut NvmResident);
        assert!(
            nvm > dram,
            "NVM residence must cost cycles: {nvm} vs {dram}"
        );
    }

    #[test]
    fn heap_mechanism_sees_only_heap_stores() {
        #[derive(Default, Debug)]
        struct Counter {
            stores: u64,
            heap_addrs_ok: bool,
        }
        impl Counter {
            fn new() -> Self {
                Self {
                    stores: 0,
                    heap_addrs_ok: true,
                }
            }
        }
        impl MemoryPersistence for Counter {
            fn name(&self) -> &'static str {
                "Counter"
            }
            fn begin_interval(&mut self, _m: &mut Machine, _r: VirtRange) {}
            fn on_store(&mut self, _m: &mut Machine, a: &MemAccess) {
                self.stores += 1;
                if a.region != prosper_trace::record::Region::Heap {
                    self.heap_addrs_ok = false;
                }
            }
            fn end_interval(&mut self, _m: &mut Machine, _i: IntervalInfo) -> CheckpointOutcome {
                CheckpointOutcome::default()
            }
        }

        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mgr = CheckpointManager::new(&mut machine, 20_000);
        let w = Workload::new(WorkloadProfile::ycsb_mem(), 2);
        let heap_region = VirtRange::new(
            VirtAddr::new(0x5555_0000_0000),
            VirtAddr::new(0x5556_0000_0000),
        );
        let mut stack = NoPersistence;
        let mut heap = Counter::new();
        let res = mgr.run(w, &mut stack, Some(&mut heap), heap_region, 4);
        assert_eq!(heap.stores, res.heap_stores);
        assert!(heap.stores > 0);
        assert!(heap.heap_addrs_ok, "heap hook only sees heap stores");
    }

    #[test]
    fn metadata_cycles_bounded_by_checkpoint_cycles() {
        #[derive(Debug)]
        struct MetaHeavy;
        impl MemoryPersistence for MetaHeavy {
            fn name(&self) -> &'static str {
                "MetaHeavy"
            }
            fn begin_interval(&mut self, _m: &mut Machine, _r: VirtRange) {}
            fn on_store(&mut self, _m: &mut Machine, _a: &MemAccess) {}
            fn end_interval(&mut self, m: &mut Machine, _i: IntervalInfo) -> CheckpointOutcome {
                let start = m.now();
                m.advance(500);
                let metadata_cycles = m.now() - start;
                m.bulk_copy_dram_to_nvm(256);
                CheckpointOutcome {
                    bytes_copied: 256,
                    cycles: m.now() - start,
                    metadata_cycles,
                }
            }
        }
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mgr = CheckpointManager::new(&mut machine, 20_000);
        let w = Workload::new(WorkloadProfile::gapbs_pr(), 3);
        let mut mech = MetaHeavy;
        let res = mgr.run_stack_only(w, &mut mech, 3);
        assert!(res.metadata_cycles > 0);
        assert!(res.metadata_cycles <= res.checkpoint_cycles);
        assert_eq!(res.bytes_copied, 3 * 256);
    }

    #[test]
    #[should_panic(expected = "interval budget must be positive")]
    fn zero_interval_budget_rejected() {
        let mut machine = Machine::new(MachineConfig::setup_i());
        CheckpointManager::new(&mut machine, 0);
    }

    #[test]
    fn outcome_merge_adds_fields() {
        let a = CheckpointOutcome {
            bytes_copied: 10,
            cycles: 20,
            metadata_cycles: 5,
        };
        let b = CheckpointOutcome {
            bytes_copied: 1,
            cycles: 2,
            metadata_cycles: 1,
        };
        let m = a.merge(b);
        assert_eq!(m.bytes_copied, 11);
        assert_eq!(m.cycles, 22);
        assert_eq!(m.metadata_cycles, 6);
    }

    #[test]
    fn run_result_means() {
        let r = RunResult {
            bytes_copied: 100,
            checkpoint_cycles: 50,
            intervals: 10,
            ..Default::default()
        };
        assert!((r.mean_checkpoint_bytes() - 10.0).abs() < 1e-12);
        assert!((r.mean_checkpoint_cycles() - 5.0).abs() < 1e-12);
        assert_eq!(RunResult::default().mean_checkpoint_bytes(), 0.0);
    }
}
