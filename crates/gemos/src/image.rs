//! Sparse byte-addressable memory images.
//!
//! Used as the data plane of the crash-consistency machinery: the
//! workload's ground-truth memory, the NVM persistent stack, and the
//! NVM staging buffer are all [`MemoryImage`]s. Copies between them
//! model the checkpoint data movement, and restore-after-crash
//! verification compares images byte for byte.

use std::collections::BTreeMap;

use prosper_memsim::addr::{VirtAddr, VirtRange};

/// Granularity of internal chunks (one 4 KiB page per chunk).
const CHUNK: u64 = 4096;

/// A sparse, byte-addressable memory image.
///
/// Unwritten bytes read as zero, matching demand-zeroed anonymous
/// memory.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct MemoryImage {
    chunks: BTreeMap<u64, Box<[u8; CHUNK as usize]>>,
}

impl MemoryImage {
    /// Creates an empty (all-zero) image.
    pub fn new() -> Self {
        Self::default()
    }

    fn chunk_mut(&mut self, id: u64) -> &mut [u8; CHUNK as usize] {
        self.chunks
            .entry(id)
            .or_insert_with(|| Box::new([0u8; CHUNK as usize]))
    }

    /// Writes `bytes` starting at `addr`.
    pub fn write(&mut self, addr: VirtAddr, bytes: &[u8]) {
        let mut pos = addr.raw();
        let mut remaining = bytes;
        while !remaining.is_empty() {
            let id = pos / CHUNK;
            let off = (pos % CHUNK) as usize;
            let take = remaining.len().min(CHUNK as usize - off);
            self.chunk_mut(id)[off..off + take].copy_from_slice(&remaining[..take]);
            pos += take as u64;
            remaining = &remaining[take..];
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read(&self, addr: VirtAddr, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut pos = addr.raw();
        let mut remaining = len;
        while remaining > 0 {
            let id = pos / CHUNK;
            let off = (pos % CHUNK) as usize;
            let take = remaining.min(CHUNK as usize - off);
            match self.chunks.get(&id) {
                Some(chunk) => out.extend_from_slice(&chunk[off..off + take]),
                None => out.extend(std::iter::repeat_n(0u8, take)),
            }
            pos += take as u64;
            remaining -= take;
        }
        out
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: VirtAddr, value: u64) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: VirtAddr) -> u64 {
        let bytes = self.read(addr, 8);
        u64::from_le_bytes(bytes.try_into().expect("read returned 8 bytes"))
    }

    /// Copies `len` bytes at `addr` from `src` into `self` (same
    /// addresses) — the checkpoint copy primitive.
    pub fn copy_range_from(&mut self, src: &MemoryImage, addr: VirtAddr, len: usize) {
        let data = src.read(addr, len);
        self.write(addr, &data);
    }

    /// Returns `true` if `self` and `other` agree over `range`.
    pub fn matches(&self, other: &MemoryImage, range: VirtRange) -> bool {
        // Compare chunk by chunk to stay cheap on sparse images.
        let mut pos = range.start().raw();
        let end = range.end().raw();
        while pos < end {
            let take = ((end - pos).min(CHUNK - pos % CHUNK)) as usize;
            if self.read(VirtAddr::new(pos), take) != other.read(VirtAddr::new(pos), take) {
                return false;
            }
            pos += take as u64;
        }
        true
    }

    /// First differing address within `range`, if any (for diagnostics).
    pub fn first_mismatch(&self, other: &MemoryImage, range: VirtRange) -> Option<VirtAddr> {
        let mut pos = range.start().raw();
        let end = range.end().raw();
        while pos < end {
            let take = ((end - pos).min(CHUNK - pos % CHUNK)) as usize;
            let a = self.read(VirtAddr::new(pos), take);
            let b = other.read(VirtAddr::new(pos), take);
            if let Some(i) = a.iter().zip(&b).position(|(x, y)| x != y) {
                return Some(VirtAddr::new(pos + i as u64));
            }
            pos += take as u64;
        }
        None
    }

    /// Number of materialised 4 KiB chunks (diagnostics).
    pub fn resident_chunks(&self) -> usize {
        self.chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let img = MemoryImage::new();
        assert_eq!(img.read(VirtAddr::new(0x5000), 4), vec![0, 0, 0, 0]);
        assert_eq!(img.resident_chunks(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut img = MemoryImage::new();
        img.write(VirtAddr::new(0x1234), b"hello");
        assert_eq!(img.read(VirtAddr::new(0x1234), 5), b"hello");
        assert_eq!(img.read(VirtAddr::new(0x1233), 1), vec![0]);
    }

    #[test]
    fn write_across_chunk_boundary() {
        let mut img = MemoryImage::new();
        let addr = VirtAddr::new(CHUNK - 2);
        img.write(addr, &[1, 2, 3, 4]);
        assert_eq!(img.read(addr, 4), vec![1, 2, 3, 4]);
        assert_eq!(img.resident_chunks(), 2);
    }

    #[test]
    fn u64_helpers() {
        let mut img = MemoryImage::new();
        img.write_u64(VirtAddr::new(0x100), 0xdead_beef_cafe_f00d);
        assert_eq!(img.read_u64(VirtAddr::new(0x100)), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn copy_range_between_images() {
        let mut a = MemoryImage::new();
        let mut b = MemoryImage::new();
        a.write(VirtAddr::new(0x2000), &[9; 128]);
        b.copy_range_from(&a, VirtAddr::new(0x2000), 128);
        let range = VirtRange::new(VirtAddr::new(0x2000), VirtAddr::new(0x2080));
        assert!(a.matches(&b, range));
    }

    #[test]
    fn mismatch_located() {
        let mut a = MemoryImage::new();
        let b = MemoryImage::new();
        a.write(VirtAddr::new(0x3005), &[1]);
        let range = VirtRange::new(VirtAddr::new(0x3000), VirtAddr::new(0x3010));
        assert!(!a.matches(&b, range));
        assert_eq!(a.first_mismatch(&b, range), Some(VirtAddr::new(0x3005)));
    }

    #[test]
    fn matches_empty_range() {
        let a = MemoryImage::new();
        let b = MemoryImage::new();
        let range = VirtRange::new(VirtAddr::new(0x100), VirtAddr::new(0x100));
        assert!(a.matches(&b, range));
        assert_eq!(a.first_mismatch(&b, range), None);
    }
}
