//! Physical frame allocators over the hybrid DRAM+NVM layout.
//!
//! The paper's GemOS port places process working memory in DRAM and
//! checkpoints in NVM. [`PhysMemory`] hands out 4 KiB frames from
//! either pool and supports contiguous NVM region reservations for
//! checkpoint areas (persistent stacks, staging buffers, commit
//! bitmaps).

use prosper_memsim::addr::PhysAddr;
use prosper_memsim::config::MemoryLayout;
use prosper_memsim::PAGE_SIZE;

/// Error returned when a pool is exhausted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OutOfMemory {
    /// Which pool ran dry.
    pub pool: Pool,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "out of {:?} frames", self.pool)
    }
}

impl std::error::Error for OutOfMemory {}

/// The two physical pools.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pool {
    /// Volatile pool backing process memory.
    Dram,
    /// Non-volatile pool backing checkpoints.
    Nvm,
}

/// Frame allocator over the hybrid layout.
#[derive(Clone, Debug)]
pub struct PhysMemory {
    layout: MemoryLayout,
    dram_next: u64,
    dram_free: Vec<u64>,
    nvm_next: u64,
    nvm_free: Vec<u64>,
}

impl PhysMemory {
    /// Creates an allocator over `layout`.
    pub fn new(layout: MemoryLayout) -> Self {
        Self {
            layout,
            dram_next: 0,
            dram_free: Vec::new(),
            nvm_next: layout.dram_bytes / PAGE_SIZE,
            nvm_free: Vec::new(),
        }
    }

    /// The layout this allocator serves.
    pub fn layout(&self) -> MemoryLayout {
        self.layout
    }

    fn pool_limit_pfn(&self, pool: Pool) -> u64 {
        match pool {
            Pool::Dram => self.layout.dram_bytes / PAGE_SIZE,
            Pool::Nvm => (self.layout.dram_bytes + self.layout.nvm_bytes) / PAGE_SIZE,
        }
    }

    /// Allocates one frame from `pool`, returning its frame number.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the pool is exhausted.
    pub fn alloc(&mut self, pool: Pool) -> Result<u64, OutOfMemory> {
        let limit = self.pool_limit_pfn(pool);
        let (free, next) = match pool {
            Pool::Dram => (&mut self.dram_free, &mut self.dram_next),
            Pool::Nvm => (&mut self.nvm_free, &mut self.nvm_next),
        };
        if let Some(pfn) = free.pop() {
            return Ok(pfn);
        }
        if *next >= limit {
            return Err(OutOfMemory { pool });
        }
        let pfn = *next;
        *next += 1;
        Ok(pfn)
    }

    /// Returns a frame to its pool.
    ///
    /// # Panics
    ///
    /// Panics if the frame number does not belong to either pool.
    pub fn free(&mut self, pfn: u64) {
        let dram_limit = self.layout.dram_bytes / PAGE_SIZE;
        if pfn < dram_limit {
            self.dram_free.push(pfn);
        } else if pfn < self.pool_limit_pfn(Pool::Nvm) {
            self.nvm_free.push(pfn);
        } else {
            panic!("frame {pfn} outside installed memory");
        }
    }

    /// Reserves a contiguous NVM region of `bytes` (page-rounded),
    /// returning its base physical address. Used for persistent stacks
    /// and staging buffers.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] if the NVM pool cannot satisfy the
    /// reservation contiguously.
    pub fn reserve_nvm_region(&mut self, bytes: u64) -> Result<PhysAddr, OutOfMemory> {
        let pages = bytes.div_ceil(PAGE_SIZE).max(1);
        let limit = self.pool_limit_pfn(Pool::Nvm);
        if self.nvm_next + pages > limit {
            return Err(OutOfMemory { pool: Pool::Nvm });
        }
        let base = self.nvm_next;
        self.nvm_next += pages;
        Ok(PhysAddr::new(base * PAGE_SIZE))
    }

    /// Frames still available in `pool` (ignoring the free list's
    /// fragmentation, which does not matter for 4 KiB frames).
    pub fn available_frames(&self, pool: Pool) -> u64 {
        let (free, next) = match pool {
            Pool::Dram => (&self.dram_free, self.dram_next),
            Pool::Nvm => (&self.nvm_free, self.nvm_next),
        };
        self.pool_limit_pfn(pool) - next + free.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PhysMemory {
        PhysMemory::new(MemoryLayout {
            dram_bytes: 4 * PAGE_SIZE,
            nvm_bytes: 4 * PAGE_SIZE,
        })
    }

    #[test]
    fn dram_and_nvm_frames_disjoint() {
        let mut pm = small();
        let d = pm.alloc(Pool::Dram).unwrap();
        let n = pm.alloc(Pool::Nvm).unwrap();
        assert!(d < 4);
        assert!((4..8).contains(&n));
    }

    #[test]
    fn exhaustion_reported() {
        let mut pm = small();
        for _ in 0..4 {
            pm.alloc(Pool::Dram).unwrap();
        }
        let err = pm.alloc(Pool::Dram).unwrap_err();
        assert_eq!(err.pool, Pool::Dram);
        assert!(err.to_string().contains("Dram"));
    }

    #[test]
    fn free_recycles() {
        let mut pm = small();
        let a = pm.alloc(Pool::Dram).unwrap();
        pm.free(a);
        assert_eq!(pm.alloc(Pool::Dram).unwrap(), a);
    }

    #[test]
    #[should_panic(expected = "outside installed memory")]
    fn free_bad_frame_panics() {
        small().free(99);
    }

    #[test]
    fn nvm_region_reservation() {
        let mut pm = small();
        let base = pm.reserve_nvm_region(2 * PAGE_SIZE + 1).unwrap();
        assert_eq!(base.raw(), 4 * PAGE_SIZE);
        // 3 pages consumed, 1 left.
        assert_eq!(pm.available_frames(Pool::Nvm), 1);
        assert!(pm.reserve_nvm_region(2 * PAGE_SIZE).is_err());
    }

    #[test]
    fn available_frames_counts_freelist() {
        let mut pm = small();
        let a = pm.alloc(Pool::Dram).unwrap();
        assert_eq!(pm.available_frames(Pool::Dram), 3);
        pm.free(a);
        assert_eq!(pm.available_frames(Pool::Dram), 4);
    }
}
