//! Physical frame allocators over the hybrid DRAM+NVM layout.
//!
//! The paper's GemOS port places process working memory in DRAM and
//! checkpoints in NVM. [`PhysMemory`] hands out 4 KiB frames from
//! either pool and supports contiguous NVM region reservations for
//! checkpoint areas (persistent stacks, staging buffers, commit
//! bitmaps).
//!
//! [`PhysMemory`] is the *serial reference implementation*: simple,
//! ordered, `&mut self`. The scalable lock-free allocator that
//! replaced it on the hot path is [`crate::llalloc::FrameAlloc`]; the
//! differential suite in `tests/alloc_differential.rs` drives both
//! against each other, which is why the reference allocates the
//! lowest free frame first — the same deterministic policy the
//! lock-free tree's serial mode uses.

use std::collections::BTreeSet;

use prosper_memsim::addr::PhysAddr;
use prosper_memsim::config::MemoryLayout;
use prosper_memsim::PAGE_SIZE;

/// Error returned when a pool is exhausted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OutOfMemory {
    /// Which pool ran dry.
    pub pool: Pool,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "out of {:?} frames", self.pool)
    }
}

impl std::error::Error for OutOfMemory {}

/// Error returned when a [`PhysMemory::free`] (or
/// [`crate::llalloc::FrameAlloc::free`]) is invalid.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FreeError {
    /// The frame is not currently allocated — either it was already
    /// freed (the classic double-free) or it was never handed out.
    DoubleFree {
        /// The offending frame number.
        pfn: u64,
    },
    /// The frame number lies outside installed memory.
    OutOfRange {
        /// The offending frame number.
        pfn: u64,
    },
}

impl std::fmt::Display for FreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DoubleFree { pfn } => write!(f, "double free of frame {pfn}"),
            Self::OutOfRange { pfn } => write!(f, "frame {pfn} outside installed memory"),
        }
    }
}

impl std::error::Error for FreeError {}

/// The two physical pools.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pool {
    /// Volatile pool backing process memory.
    Dram,
    /// Non-volatile pool backing checkpoints.
    Nvm,
}

/// Frame allocator over the hybrid layout.
#[derive(Clone, Debug)]
pub struct PhysMemory {
    layout: MemoryLayout,
    dram_next: u64,
    dram_free: BTreeSet<u64>,
    nvm_next: u64,
    nvm_free: BTreeSet<u64>,
}

impl PhysMemory {
    /// Creates an allocator over `layout`.
    pub fn new(layout: MemoryLayout) -> Self {
        Self {
            layout,
            dram_next: 0,
            dram_free: BTreeSet::new(),
            nvm_next: layout.dram_bytes / PAGE_SIZE,
            nvm_free: BTreeSet::new(),
        }
    }

    /// The layout this allocator serves.
    pub fn layout(&self) -> MemoryLayout {
        self.layout
    }

    fn pool_limit_pfn(&self, pool: Pool) -> u64 {
        match pool {
            Pool::Dram => self.layout.dram_bytes / PAGE_SIZE,
            Pool::Nvm => (self.layout.dram_bytes + self.layout.nvm_bytes) / PAGE_SIZE,
        }
    }

    /// Allocates one frame from `pool`, returning its frame number.
    /// Always hands out the **lowest** free frame — the deterministic
    /// policy the lock-free tree's serial mode mirrors, so the
    /// differential suite can compare pfn streams exactly.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] when the pool is exhausted.
    pub fn alloc(&mut self, pool: Pool) -> Result<u64, OutOfMemory> {
        let limit = self.pool_limit_pfn(pool);
        let (free, next) = match pool {
            Pool::Dram => (&mut self.dram_free, &mut self.dram_next),
            Pool::Nvm => (&mut self.nvm_free, &mut self.nvm_next),
        };
        if let Some(pfn) = free.pop_first() {
            return Ok(pfn);
        }
        if *next >= limit {
            return Err(OutOfMemory { pool });
        }
        let pfn = *next;
        *next += 1;
        Ok(pfn)
    }

    /// Returns a frame to its pool.
    ///
    /// # Errors
    ///
    /// Returns [`FreeError::OutOfRange`] when the frame number belongs
    /// to neither pool and [`FreeError::DoubleFree`] when the frame is
    /// not currently allocated (already free, or never handed out) —
    /// the silent double-free that used to push the same pfn onto the
    /// free list twice and hand one frame to two owners.
    pub fn free(&mut self, pfn: u64) -> Result<(), FreeError> {
        let dram_limit = self.layout.dram_bytes / PAGE_SIZE;
        let (free, next) = if pfn < dram_limit {
            (&mut self.dram_free, self.dram_next)
        } else if pfn < self.pool_limit_pfn(Pool::Nvm) {
            (&mut self.nvm_free, self.nvm_next)
        } else {
            return Err(FreeError::OutOfRange { pfn });
        };
        if pfn >= next || !free.insert(pfn) {
            return Err(FreeError::DoubleFree { pfn });
        }
        Ok(())
    }

    /// Reserves a contiguous NVM region of `bytes` (page-rounded),
    /// returning its base physical address. Used for persistent stacks
    /// and staging buffers.
    ///
    /// The search is first-fit over *all* free NVM frames — runs of
    /// consecutive frames on the free set as well as the
    /// never-allocated tail (fused with a free run that abuts it).
    /// Previously only the tail was consulted, so frames counted by
    /// [`Self::available_frames`] could be unreservable forever.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] if the NVM pool cannot satisfy the
    /// reservation contiguously.
    pub fn reserve_nvm_region(&mut self, bytes: u64) -> Result<PhysAddr, OutOfMemory> {
        let pages = bytes.div_ceil(PAGE_SIZE).max(1);
        let limit = self.pool_limit_pfn(Pool::Nvm);
        // Sorted maximal runs of consecutive free frames, with the
        // never-allocated tail [nvm_next, limit) fused onto a run
        // that ends exactly at nvm_next.
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for &pfn in &self.nvm_free {
            match runs.last_mut() {
                Some((_, end)) if *end == pfn => *end += 1,
                _ => runs.push((pfn, pfn + 1)),
            }
        }
        match runs.last_mut() {
            Some((_, end)) if *end == self.nvm_next => *end = limit,
            _ => runs.push((self.nvm_next, limit)),
        }
        let (start, _) = runs
            .into_iter()
            .find(|&(s, e)| e - s >= pages)
            .ok_or(OutOfMemory { pool: Pool::Nvm })?;
        for pfn in start..start + pages {
            if pfn >= self.nvm_next {
                self.nvm_next = pfn + 1;
            } else {
                self.nvm_free.remove(&pfn);
            }
        }
        Ok(PhysAddr::new(start * PAGE_SIZE))
    }

    /// Frames still available in `pool` (ignoring the free list's
    /// fragmentation, which does not matter for 4 KiB frames).
    pub fn available_frames(&self, pool: Pool) -> u64 {
        let (free, next) = match pool {
            Pool::Dram => (&self.dram_free, self.dram_next),
            Pool::Nvm => (&self.nvm_free, self.nvm_next),
        };
        self.pool_limit_pfn(pool) - next + free.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PhysMemory {
        PhysMemory::new(MemoryLayout {
            dram_bytes: 4 * PAGE_SIZE,
            nvm_bytes: 4 * PAGE_SIZE,
        })
    }

    #[test]
    fn dram_and_nvm_frames_disjoint() {
        let mut pm = small();
        let d = pm.alloc(Pool::Dram).unwrap();
        let n = pm.alloc(Pool::Nvm).unwrap();
        assert!(d < 4);
        assert!((4..8).contains(&n));
    }

    #[test]
    fn exhaustion_reported() {
        let mut pm = small();
        for _ in 0..4 {
            pm.alloc(Pool::Dram).unwrap();
        }
        let err = pm.alloc(Pool::Dram).unwrap_err();
        assert_eq!(err.pool, Pool::Dram);
        assert!(err.to_string().contains("Dram"));
    }

    #[test]
    fn free_recycles() {
        let mut pm = small();
        let a = pm.alloc(Pool::Dram).unwrap();
        pm.free(a).unwrap();
        assert_eq!(pm.alloc(Pool::Dram).unwrap(), a);
    }

    #[test]
    fn free_bad_frame_rejected() {
        let err = small().free(99).unwrap_err();
        assert_eq!(err, FreeError::OutOfRange { pfn: 99 });
        assert!(err.to_string().contains("outside installed memory"));
    }

    /// Regression: `free()` used to push the same pfn onto the free
    /// list twice, so two later allocs both received it.
    #[test]
    fn double_free_rejected_not_double_allocated() {
        let mut pm = small();
        let a = pm.alloc(Pool::Dram).unwrap();
        pm.free(a).unwrap();
        assert_eq!(pm.free(a).unwrap_err(), FreeError::DoubleFree { pfn: a });
        let x = pm.alloc(Pool::Dram).unwrap();
        let y = pm.alloc(Pool::Dram).unwrap();
        assert_ne!(x, y, "double-free handed one frame to two owners");
    }

    /// Freeing a frame that was never allocated is a double-free too.
    #[test]
    fn free_of_unallocated_frame_rejected() {
        let mut pm = small();
        assert_eq!(pm.free(2).unwrap_err(), FreeError::DoubleFree { pfn: 2 });
    }

    #[test]
    fn nvm_region_reservation() {
        let mut pm = small();
        let base = pm.reserve_nvm_region(2 * PAGE_SIZE + 1).unwrap();
        assert_eq!(base.raw(), 4 * PAGE_SIZE);
        // 3 pages consumed, 1 left.
        assert_eq!(pm.available_frames(Pool::Nvm), 1);
        assert!(pm.reserve_nvm_region(2 * PAGE_SIZE).is_err());
    }

    /// Regression: `reserve_nvm_region` only consulted the
    /// never-allocated tail, so freed frames counted by
    /// `available_frames` could never be reserved.
    #[test]
    fn reservation_reuses_freed_frames() {
        let mut pm = small();
        let a = pm.alloc(Pool::Nvm).unwrap();
        let b = pm.alloc(Pool::Nvm).unwrap();
        pm.free(a).unwrap();
        pm.free(b).unwrap();
        assert_eq!(pm.available_frames(Pool::Nvm), 4);
        // 4 frames available and contiguous (free run fuses with the
        // tail) — the whole pool is reservable again.
        let base = pm.reserve_nvm_region(4 * PAGE_SIZE).unwrap();
        assert_eq!(base.raw(), 4 * PAGE_SIZE);
        assert_eq!(pm.available_frames(Pool::Nvm), 0);
    }

    /// A free run *not* adjacent to the tail is still found first-fit.
    #[test]
    fn reservation_first_fit_over_free_runs() {
        let mut pm = small();
        let a = pm.alloc(Pool::Nvm).unwrap();
        let b = pm.alloc(Pool::Nvm).unwrap();
        let _c = pm.alloc(Pool::Nvm).unwrap();
        pm.free(a).unwrap();
        pm.free(b).unwrap();
        // Free run [4,6), hole at 6, tail [7,8).
        let base = pm.reserve_nvm_region(2 * PAGE_SIZE).unwrap();
        assert_eq!(base.raw(), a * PAGE_SIZE);
        assert_eq!(pm.available_frames(Pool::Nvm), 1);
        // The reserved frames are gone: a single-frame request now
        // lands on the tail.
        let tail = pm.reserve_nvm_region(PAGE_SIZE).unwrap();
        assert_eq!(tail.raw(), 7 * PAGE_SIZE);
    }

    #[test]
    fn available_frames_counts_freelist() {
        let mut pm = small();
        let a = pm.alloc(Pool::Dram).unwrap();
        assert_eq!(pm.available_frames(Pool::Dram), 3);
        pm.free(a).unwrap();
        assert_eq!(pm.available_frames(Pool::Dram), 4);
    }
}
