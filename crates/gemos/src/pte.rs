//! Page-table entries with the x86-64-style status bits the paper's
//! dirty-tracking baselines rely on.

use prosper_memsim::addr::PhysAddr;
use serde::{Deserialize, Serialize};

/// A page-table entry for one 4 KiB page.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Pte {
    /// Physical frame number backing the page.
    pub pfn: u64,
    /// Present bit: the translation is valid.
    pub present: bool,
    /// Writable bit: stores are allowed. The write-protect tracking
    /// baseline clears this to force faults on first write.
    pub writable: bool,
    /// Accessed bit, set by the page-table walker on any access.
    pub accessed: bool,
    /// Dirty bit, set by the page-table walker on a write. The
    /// Dirtybit (LDT-style) baseline resets and collects this.
    pub dirty: bool,
}

impl Pte {
    /// A present, writable, clean entry mapping frame `pfn`.
    pub fn new(pfn: u64) -> Self {
        Self {
            pfn,
            present: true,
            writable: true,
            accessed: false,
            dirty: false,
        }
    }

    /// Physical address of the frame's first byte.
    pub fn frame_addr(&self) -> PhysAddr {
        PhysAddr::new(self.pfn * prosper_memsim::PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_entry_is_clean_and_writable() {
        let pte = Pte::new(5);
        assert!(pte.present && pte.writable);
        assert!(!pte.accessed && !pte.dirty);
        assert_eq!(pte.frame_addr().raw(), 5 * 4096);
    }
}
