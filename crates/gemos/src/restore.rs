//! Full process checkpoint/restore: registers + memory, with
//! torn-write-safe register slots.
//!
//! The GemOS baseline persists the register state of every thread at
//! each checkpoint alongside the memory mechanisms. A crash can land
//! mid-write, so the store keeps **two register slots per thread**
//! (ping-pong) with a sequence number and a validity marker written
//! last; recovery picks the newest valid slot. The memory side is
//! delegated to whatever [`crate::crash::Persistent`] implementation
//! the process uses (Prosper's persistent stack in the full system).

use serde::{Deserialize, Serialize};

use crate::process::RegisterFile;

/// One persisted register slot.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct RegSlot {
    regs: RegisterFile,
    sequence: u64,
    /// Written last; a torn write leaves it false.
    valid: bool,
}

/// Torn-write-safe register checkpoint area for one thread.
#[derive(Clone, Default, Debug, Serialize, Deserialize)]
pub struct RegisterStore {
    slots: [RegSlot; 2],
    next_sequence: u64,
}

/// Error returned when no valid register checkpoint exists.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NoValidCheckpoint;

impl std::fmt::Display for NoValidCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("no valid register checkpoint found")
    }
}

impl std::error::Error for NoValidCheckpoint {}

impl RegisterStore {
    /// Creates an empty store (no checkpoint yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Persists `regs` into the older slot (ping-pong), marking it
    /// valid only after the payload is "written".
    pub fn checkpoint(&mut self, regs: RegisterFile) {
        self.next_sequence += 1;
        let idx = self.older_slot();
        // Model the write order: invalidate, write payload, validate.
        self.slots[idx].valid = false;
        self.slots[idx].regs = regs;
        self.slots[idx].sequence = self.next_sequence;
        self.slots[idx].valid = true;
    }

    /// Persists `regs` at an externally-supplied sequence number (the
    /// whole-process commit record's), into the older slot. Idempotent
    /// for a given `(regs, sequence)` pair: recovery can re-apply an
    /// interrupted register apply and recover the same state.
    pub fn checkpoint_at(&mut self, regs: RegisterFile, sequence: u64) {
        self.next_sequence = self.next_sequence.max(sequence);
        let idx = self.older_slot();
        self.slots[idx].valid = false;
        self.slots[idx].regs = regs;
        self.slots[idx].sequence = sequence;
        self.slots[idx].valid = true;
    }

    /// Begins a checkpoint but "crashes" before the validity marker is
    /// written — for crash-injection tests.
    pub fn checkpoint_torn(&mut self, regs: RegisterFile) {
        self.next_sequence += 1;
        let idx = self.older_slot();
        self.slots[idx].valid = false;
        self.slots[idx].regs = regs;
        self.slots[idx].sequence = self.next_sequence;
        // valid stays false: the crash hit here.
    }

    fn older_slot(&self) -> usize {
        if self.slots[0].sequence <= self.slots[1].sequence {
            0
        } else {
            1
        }
    }

    /// Recovers the newest valid register state.
    ///
    /// # Errors
    ///
    /// Returns [`NoValidCheckpoint`] if neither slot is valid (no
    /// checkpoint ever completed).
    pub fn recover(&self) -> Result<(RegisterFile, u64), NoValidCheckpoint> {
        self.slots
            .iter()
            .filter(|s| s.valid)
            .max_by_key(|s| s.sequence)
            .map(|s| (s.regs, s.sequence))
            .ok_or(NoValidCheckpoint)
    }
}

/// A whole-process checkpoint store: per-thread register stores plus a
/// sequence counter that ties register and memory state together.
#[derive(Clone, Default, Debug)]
pub struct ProcessCheckpointStore {
    registers: Vec<RegisterStore>,
    /// Sequence of the last complete whole-process checkpoint.
    pub committed_sequence: u64,
}

impl ProcessCheckpointStore {
    /// Creates a store for `threads` threads.
    pub fn new(threads: usize) -> Self {
        Self {
            registers: vec![RegisterStore::new(); threads],
            committed_sequence: 0,
        }
    }

    /// Number of threads covered.
    pub fn threads(&self) -> usize {
        self.registers.len()
    }

    /// Checkpoints all threads' registers and bumps the process
    /// sequence (memory mechanisms commit separately but under the
    /// same checkpoint boundary).
    ///
    /// # Panics
    ///
    /// Panics if `regs` does not provide one register file per thread.
    pub fn checkpoint(&mut self, regs: &[RegisterFile]) {
        assert_eq!(
            regs.len(),
            self.registers.len(),
            "one register file per thread"
        );
        for (store, r) in self.registers.iter_mut().zip(regs) {
            store.checkpoint(*r);
        }
        self.committed_sequence += 1;
    }

    /// Applies one thread's registers at an explicit whole-process
    /// sequence number — phase two of the two-phase process commit.
    /// Idempotent, so recovery can replay an interrupted apply.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn apply_thread_at(&mut self, tid: usize, regs: RegisterFile, sequence: u64) {
        self.registers[tid].checkpoint_at(regs, sequence);
    }

    /// Durably records `sequence` as the last complete whole-process
    /// checkpoint (written after every thread's slot is applied).
    pub fn set_committed_sequence(&mut self, sequence: u64) {
        self.committed_sequence = sequence;
    }

    /// Recovers all threads' registers.
    ///
    /// # Errors
    ///
    /// Returns [`NoValidCheckpoint`] if any thread lacks a valid slot.
    pub fn recover(&self) -> Result<Vec<RegisterFile>, NoValidCheckpoint> {
        self.registers
            .iter()
            .map(|s| s.recover().map(|(r, _)| r))
            .collect()
    }

    /// Recovers all threads' registers together with each slot's
    /// sequence number — the fault-injection harness asserts these
    /// never skew across threads.
    ///
    /// # Errors
    ///
    /// Returns [`NoValidCheckpoint`] if any thread lacks a valid slot.
    pub fn recover_detailed(&self) -> Result<Vec<(RegisterFile, u64)>, NoValidCheckpoint> {
        self.registers.iter().map(|s| s.recover()).collect()
    }

    /// Access to one thread's register store (crash-injection tests).
    pub fn thread_store_mut(&mut self, tid: usize) -> &mut RegisterStore {
        &mut self.registers[tid]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regs(marker: u64) -> RegisterFile {
        let mut r = RegisterFile::default();
        r.gpr[0] = marker;
        r.rip = 0x400000 + marker;
        r
    }

    #[test]
    fn empty_store_cannot_recover() {
        let s = RegisterStore::new();
        assert_eq!(s.recover(), Err(NoValidCheckpoint));
        assert!(NoValidCheckpoint.to_string().contains("no valid"));
    }

    #[test]
    fn recover_returns_latest() {
        let mut s = RegisterStore::new();
        s.checkpoint(regs(1));
        s.checkpoint(regs(2));
        s.checkpoint(regs(3));
        let (r, seq) = s.recover().unwrap();
        assert_eq!(r.gpr[0], 3);
        assert_eq!(seq, 3);
    }

    #[test]
    fn torn_write_falls_back_to_previous() {
        let mut s = RegisterStore::new();
        s.checkpoint(regs(1));
        s.checkpoint(regs(2));
        s.checkpoint_torn(regs(3));
        let (r, seq) = s.recover().unwrap();
        assert_eq!(r.gpr[0], 2, "torn slot skipped");
        assert_eq!(seq, 2);
    }

    #[test]
    fn torn_first_checkpoint_recovers_nothing() {
        let mut s = RegisterStore::new();
        s.checkpoint_torn(regs(1));
        assert_eq!(s.recover(), Err(NoValidCheckpoint));
    }

    #[test]
    fn ping_pong_alternates_slots() {
        let mut s = RegisterStore::new();
        s.checkpoint(regs(1));
        s.checkpoint(regs(2));
        // Both slots now valid with sequences 1 and 2; a torn third
        // write may only destroy the *older* one.
        s.checkpoint_torn(regs(3));
        let (r, _) = s.recover().unwrap();
        assert_eq!(r.gpr[0], 2);
    }

    #[test]
    fn checkpoint_at_is_idempotent_for_reapply() {
        let mut s = RegisterStore::new();
        s.checkpoint_at(regs(1), 1);
        s.checkpoint_at(regs(2), 2);
        // Recovery re-applies the same (regs, sequence) pair.
        s.checkpoint_at(regs(2), 2);
        let (r, seq) = s.recover().unwrap();
        assert_eq!(r.gpr[0], 2);
        assert_eq!(seq, 2);
    }

    #[test]
    fn recover_detailed_exposes_per_thread_sequences() {
        let mut p = ProcessCheckpointStore::new(2);
        p.apply_thread_at(0, regs(5), 4);
        p.apply_thread_at(1, regs(6), 4);
        p.set_committed_sequence(4);
        let detailed = p.recover_detailed().unwrap();
        assert!(detailed.iter().all(|(_, seq)| *seq == 4));
        assert_eq!(p.committed_sequence, 4);
    }

    #[test]
    fn process_store_covers_all_threads() {
        let mut p = ProcessCheckpointStore::new(3);
        p.checkpoint(&[regs(10), regs(20), regs(30)]);
        p.checkpoint(&[regs(11), regs(21), regs(31)]);
        assert_eq!(p.committed_sequence, 2);
        let rec = p.recover().unwrap();
        assert_eq!(rec.len(), 3);
        assert_eq!(rec[1].gpr[0], 21);
    }

    #[test]
    fn one_torn_thread_fails_whole_recovery() {
        let mut p = ProcessCheckpointStore::new(2);
        p.thread_store_mut(0).checkpoint(regs(1));
        p.thread_store_mut(1).checkpoint_torn(regs(2));
        assert!(p.recover().is_err());
    }

    #[test]
    #[should_panic(expected = "one register file per thread")]
    fn wrong_thread_count_rejected() {
        ProcessCheckpointStore::new(2).checkpoint(&[regs(1)]);
    }
}
