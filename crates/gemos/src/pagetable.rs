//! A per-process page table with the walks the dirty-tracking
//! baselines perform.
//!
//! Both page-granularity baselines in the paper require the OS to walk
//! the page table at interval boundaries:
//!
//! * the **Dirtybit** approach resets the PTE dirty bits at the start
//!   of an interval and collects them at the end;
//! * the **write-protect** approach clears the writable bits at the
//!   start and takes a page fault on the first write to each page.
//!
//! The walks return how many PTEs were visited so callers can charge
//! the OS processing cost to the machine model.

use std::collections::BTreeMap;

use prosper_memsim::addr::{PhysAddr, VirtAddr, VirtRange};
use prosper_memsim::PAGE_SIZE;

use crate::pte::Pte;

/// A sparse page table mapping virtual page numbers to PTEs.
#[derive(Clone, Default, Debug)]
pub struct PageTable {
    entries: BTreeMap<u64, Pte>,
}

/// Result of simulating a store through the page table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StoreWalk {
    /// Translation succeeded; dirty/accessed bits were updated by the
    /// hardware walker.
    Ok(PhysAddr),
    /// The page is present but write-protected: the OS takes a write
    /// fault (the write-protect tracking baseline's capture point).
    WriteFault,
    /// No translation: a demand-paging fault (stack growth).
    NotPresent,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps virtual page `vpn` to physical frame `pfn`.
    pub fn map(&mut self, vpn: u64, pfn: u64) {
        self.entries.insert(vpn, Pte::new(pfn));
    }

    /// Removes the mapping for `vpn`, returning the old entry.
    pub fn unmap(&mut self, vpn: u64) -> Option<Pte> {
        self.entries.remove(&vpn)
    }

    /// Returns the entry for `vpn`.
    pub fn entry(&self, vpn: u64) -> Option<&Pte> {
        self.entries.get(&vpn)
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.entries.len()
    }

    /// Translates a virtual address for a load; sets the accessed bit.
    pub fn load_walk(&mut self, vaddr: VirtAddr) -> Option<PhysAddr> {
        let pte = self.entries.get_mut(&vaddr.page_number())?;
        if !pte.present {
            return None;
        }
        pte.accessed = true;
        Some(pte.frame_addr() + vaddr.page_offset())
    }

    /// Translates a virtual address for a store, updating the
    /// accessed/dirty bits exactly as the hardware walker would.
    pub fn store_walk(&mut self, vaddr: VirtAddr) -> StoreWalk {
        let Some(pte) = self.entries.get_mut(&vaddr.page_number()) else {
            return StoreWalk::NotPresent;
        };
        if !pte.present {
            return StoreWalk::NotPresent;
        }
        if !pte.writable {
            return StoreWalk::WriteFault;
        }
        pte.accessed = true;
        pte.dirty = true;
        StoreWalk::Ok(pte.frame_addr() + vaddr.page_offset())
    }

    /// Dirtybit interval start: clears the dirty bit on every mapped
    /// page of `range`. Returns the number of PTEs walked.
    pub fn reset_dirty(&mut self, range: VirtRange) -> u64 {
        let mut walked = 0;
        for vpn in range.pages() {
            if let Some(pte) = self.entries.get_mut(&vpn) {
                pte.dirty = false;
                walked += 1;
            }
        }
        walked
    }

    /// Dirtybit interval end: collects the dirty pages of `range`.
    /// Returns `(dirty page numbers, PTEs walked)`.
    pub fn collect_dirty(&self, range: VirtRange) -> (Vec<u64>, u64) {
        let mut dirty = Vec::new();
        let mut walked = 0;
        for vpn in range.pages() {
            if let Some(pte) = self.entries.get(&vpn) {
                walked += 1;
                if pte.dirty {
                    dirty.push(vpn);
                }
            }
        }
        (dirty, walked)
    }

    /// Write-protect interval start: clears the writable bit on every
    /// mapped page of `range`. Returns the number of PTEs walked.
    pub fn write_protect(&mut self, range: VirtRange) -> u64 {
        let mut walked = 0;
        for vpn in range.pages() {
            if let Some(pte) = self.entries.get_mut(&vpn) {
                pte.writable = false;
                walked += 1;
            }
        }
        walked
    }

    /// Handles a write fault taken by the protect-based tracker: grants
    /// write access again so subsequent stores proceed fault-free.
    pub fn grant_write(&mut self, vaddr: VirtAddr) {
        if let Some(pte) = self.entries.get_mut(&vaddr.page_number()) {
            pte.writable = true;
            pte.dirty = true;
        }
    }

    /// Maps every page of `range` to consecutive frames starting at
    /// `first_pfn` (convenience for tests and the checkpoint manager).
    pub fn map_range(&mut self, range: VirtRange, first_pfn: u64) {
        for (i, vpn) in range.pages().enumerate() {
            self.map(vpn, first_pfn + i as u64);
        }
    }

    /// Total bytes of mapped memory.
    pub fn mapped_bytes(&self) -> u64 {
        self.entries.len() as u64 * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(range: VirtRange) -> PageTable {
        let mut pt = PageTable::new();
        pt.map_range(range, 100);
        pt
    }

    fn r(start: u64, end: u64) -> VirtRange {
        VirtRange::new(VirtAddr::new(start), VirtAddr::new(end))
    }

    #[test]
    fn map_and_translate() {
        let mut pt = table_with(r(0x10000, 0x12000));
        let pa = pt.load_walk(VirtAddr::new(0x10008)).unwrap();
        assert_eq!(pa.raw(), 100 * 4096 + 8);
        assert!(pt.entry(0x10).unwrap().accessed);
        assert_eq!(pt.mapped_pages(), 2);
        assert_eq!(pt.mapped_bytes(), 8192);
    }

    #[test]
    fn store_walk_sets_dirty() {
        let mut pt = table_with(r(0x10000, 0x11000));
        match pt.store_walk(VirtAddr::new(0x10100)) {
            StoreWalk::Ok(pa) => assert_eq!(pa.raw(), 100 * 4096 + 0x100),
            other => panic!("unexpected {other:?}"),
        }
        assert!(pt.entry(0x10).unwrap().dirty);
    }

    #[test]
    fn unmapped_store_faults() {
        let mut pt = PageTable::new();
        assert_eq!(
            pt.store_walk(VirtAddr::new(0x999000)),
            StoreWalk::NotPresent
        );
        assert_eq!(pt.load_walk(VirtAddr::new(0x999000)), None);
    }

    #[test]
    fn dirtybit_reset_and_collect() {
        let range = r(0x20000, 0x24000); // 4 pages
        let mut pt = table_with(range);
        pt.store_walk(VirtAddr::new(0x20010));
        pt.store_walk(VirtAddr::new(0x23010));
        let (dirty, walked) = pt.collect_dirty(range);
        assert_eq!(dirty, vec![0x20, 0x23]);
        assert_eq!(walked, 4);
        assert_eq!(pt.reset_dirty(range), 4);
        let (dirty, _) = pt.collect_dirty(range);
        assert!(dirty.is_empty());
    }

    #[test]
    fn write_protect_faults_then_granted() {
        let range = r(0x30000, 0x31000);
        let mut pt = table_with(range);
        assert_eq!(pt.write_protect(range), 1);
        let a = VirtAddr::new(0x30040);
        assert_eq!(pt.store_walk(a), StoreWalk::WriteFault);
        pt.grant_write(a);
        assert!(matches!(pt.store_walk(a), StoreWalk::Ok(_)));
        assert!(pt.entry(0x30).unwrap().dirty);
    }

    #[test]
    fn walks_skip_unmapped_pages() {
        let mut pt = table_with(r(0x40000, 0x41000));
        // Walk a wider range; only the mapped page counts.
        assert_eq!(pt.reset_dirty(r(0x3f000, 0x43000)), 1);
        let (_, walked) = pt.collect_dirty(r(0x3f000, 0x43000));
        assert_eq!(walked, 1);
    }

    #[test]
    fn unmap_removes_translation() {
        let mut pt = table_with(r(0x50000, 0x51000));
        assert!(pt.unmap(0x50).is_some());
        assert_eq!(pt.store_walk(VirtAddr::new(0x50000)), StoreWalk::NotPresent);
        assert!(pt.unmap(0x50).is_none());
    }
}
