//! SSP: sub-page shadow paging at cache-line granularity, as the
//! paper implements it for comparison (Section IV-A).
//!
//! SSP maintains **two physical pages per virtual page** in NVM and
//! redirects modifications between them at cache-line granularity
//! using hardware-assisted line remapping; a per-page line bitmap in
//! an extended TLB records which lines moved. A background **OS
//! consolidation thread** periodically merges the two physical pages
//! of inactive virtual pages (the invocation interval — 10 µs, 100 µs,
//! or 1 ms — is swept in Figures 8 and 9 because the original paper
//! does not specify it). At the end of each consistency interval SSP
//! writes back modified lines with `clwb`, sends the updated TLB
//! bitmap to the SSP cache, and applies it to the commit bitmap in
//! NVM.

use std::collections::BTreeMap;

use prosper_gemos::checkpoint::{CheckpointOutcome, IntervalInfo, MemoryPersistence};
use prosper_memsim::addr::{VirtAddr, VirtRange};
use prosper_memsim::machine::Machine;
use prosper_memsim::{Cycles, CACHE_LINE, PAGE_SIZE};
use prosper_trace::record::MemAccess;

/// Cycles the consolidation thread spends per page merge besides the
/// data movement itself (page-table fix-up, bookkeeping).
const PER_PAGE_MERGE_CYCLES: Cycles = 400;

/// Cycles to update the commit bitmap in NVM per page at interval end.
const PER_PAGE_COMMIT_CYCLES: Cycles = 80;

/// Per-page SSP state.
#[derive(Clone, Copy, Default, Debug)]
struct PageState {
    /// Lines modified since the page's last consolidation (bit per
    /// line).
    dirty_lines: u64,
    /// Interval sequence of the last write (recency for the
    /// inactive-page test).
    last_write_tick: u64,
}

/// The SSP mechanism.
#[derive(Debug)]
pub struct SspMechanism {
    /// Consolidation-thread invocation interval in cycles.
    consolidation_cycles: Cycles,
    /// Next consolidation deadline (absolute machine cycles).
    next_consolidation: Cycles,
    pages: BTreeMap<u64, PageState>,
    /// Pages with a non-empty line bitmap (keeps consolidation and
    /// commit O(dirty) instead of O(mapped)).
    dirty_pages: std::collections::BTreeSet<u64>,
    tick: u64,
    /// Pages merged by the consolidation thread across the run.
    pub pages_consolidated: u64,
    /// Lines written back at commits across the run.
    pub lines_committed: u64,
}

impl SspMechanism {
    /// Creates SSP with the given consolidation-thread interval in
    /// cycles.
    ///
    /// # Panics
    ///
    /// Panics if `consolidation_cycles` is zero.
    pub fn new(consolidation_cycles: Cycles) -> Self {
        assert!(
            consolidation_cycles > 0,
            "consolidation interval must be positive"
        );
        Self {
            consolidation_cycles,
            next_consolidation: consolidation_cycles,
            pages: BTreeMap::new(),
            dirty_pages: std::collections::BTreeSet::new(),
            tick: 0,
            pages_consolidated: 0,
            lines_committed: 0,
        }
    }

    /// SSP with a 10 µs consolidation interval (30 k cycles at 3 GHz).
    pub fn with_10us() -> Self {
        Self::new(30_000)
    }

    /// SSP with a 100 µs consolidation interval.
    pub fn with_100us() -> Self {
        Self::new(300_000)
    }

    /// SSP with a 1 ms consolidation interval.
    pub fn with_1ms() -> Self {
        Self::new(3_000_000)
    }

    /// Display name including the interval, as in Figure 8.
    pub fn variant_name(&self) -> &'static str {
        match self.consolidation_cycles {
            30_000 => "SSP-10us",
            300_000 => "SSP-100us",
            3_000_000 => "SSP-1ms",
            _ => "SSP",
        }
    }

    /// Runs the consolidation thread if its deadline passed. Inactive
    /// pages (not written in the current tick) have their two physical
    /// pages merged: the dirty lines are copied within NVM and the
    /// page's bitmap resets.
    ///
    /// Catch-up is bounded: an OS thread that overruns its period does
    /// not queue invocations, it just runs late. Without the bound the
    /// wakeup cost (≥ the scaled 10 µs period) would make the deadline
    /// unreachable and the loop would never exit.
    fn maybe_consolidate(&mut self, machine: &mut Machine) {
        let mut passes = 0;
        while machine.now() >= self.next_consolidation && passes < 2 {
            passes += 1;
            self.next_consolidation += self.consolidation_cycles;
            let current_tick = self.tick;
            let mut merged_lines = 0u64;
            let mut merged_pages = 0u64;
            self.dirty_pages.retain(|page| {
                let state = self
                    .pages
                    .get_mut(page)
                    .expect("dirty set only holds mapped pages");
                if state.dirty_lines != 0 && state.last_write_tick < current_tick {
                    merged_lines += u64::from(state.dirty_lines.count_ones());
                    state.dirty_lines = 0;
                    merged_pages += 1;
                    false
                } else {
                    true
                }
            });
            if merged_pages > 0 {
                self.pages_consolidated += merged_pages;
                // The merge itself moves lines inside NVM and, being an
                // OS thread sharing the core complex, interferes with
                // the application: the page-table fix-up is charged to
                // the core while the data movement occupies the bus.
                machine.advance(merged_pages * PER_PAGE_MERGE_CYCLES);
                for i in 0..merged_lines {
                    machine.persist_write(machine.nvm_base() + (i % 1024) * CACHE_LINE, CACHE_LINE);
                }
            }
            // Even an idle invocation costs the wakeup + scan.
            machine.advance(60 + self.dirty_pages.len() as u64 / 16);
            self.tick += 1;
        }
        // Missed invocations are skipped, not queued.
        if machine.now() >= self.next_consolidation {
            self.next_consolidation = machine.now() + self.consolidation_cycles;
        }
    }
}

impl MemoryPersistence for SspMechanism {
    fn name(&self) -> &'static str {
        self.variant_name()
    }

    fn begin_interval(&mut self, _machine: &mut Machine, _region: VirtRange) {}

    fn on_store(&mut self, machine: &mut Machine, access: &MemAccess) {
        // Catch up the consolidation thread first so a deadline that
        // elapsed before this store does not see the store itself.
        self.maybe_consolidate(machine);
        let page = access.vaddr.page_number();
        let line = (access.vaddr.page_offset()) / CACHE_LINE;
        let tick = self.tick;
        let state = self.pages.entry(page).or_default();
        state.dirty_lines |= 1 << line;
        state.last_write_tick = tick;
        self.dirty_pages.insert(page);
    }

    fn end_interval(&mut self, machine: &mut Machine, _info: IntervalInfo) -> CheckpointOutcome {
        let start = machine.now();
        // Commit: clwb every modified line, push the TLB bitmaps to the
        // SSP cache, and apply them to the commit bitmap in NVM.
        let mut lines = 0u64;
        let mut touched_pages = 0u64;
        let meta_start = machine.now();
        for page in std::mem::take(&mut self.dirty_pages) {
            let state = self
                .pages
                .get_mut(&page)
                .expect("dirty set only holds mapped pages");
            if state.dirty_lines == 0 {
                continue;
            }
            touched_pages += 1;
            let base = VirtAddr::new(page * PAGE_SIZE);
            let mut bits = state.dirty_lines;
            while bits != 0 {
                let line = bits.trailing_zeros() as u64;
                bits &= bits - 1;
                machine.clwb(base + line * CACHE_LINE);
                // The written-back line lands in the NVM shadow page.
                let shadow =
                    machine.nvm_base() + (page * PAGE_SIZE + line * CACHE_LINE) % (1 << 24);
                machine.persist_write(shadow, CACHE_LINE);
                lines += 1;
            }
            state.dirty_lines = 0;
        }
        machine.advance(touched_pages * PER_PAGE_COMMIT_CYCLES);
        let metadata_cycles = machine.now() - meta_start;
        self.lines_committed += lines;

        let bytes = lines * CACHE_LINE;
        if bytes > 0 {
            // Applying the commit bitmap persists the lines in NVM.
            machine.bulk_copy_nvm_to_nvm(touched_pages * 8);
        }

        CheckpointOutcome {
            bytes_copied: bytes,
            cycles: machine.now() - start,
            metadata_cycles,
        }
    }

    /// SSP's shadow pages live in NVM (Table I).
    fn region_in_dram(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosper_gemos::checkpoint::CheckpointManager;
    use prosper_memsim::config::MachineConfig;
    use prosper_trace::micro::{MicroBench, MicroSpec};
    use prosper_trace::workloads::{Workload, WorkloadProfile};

    fn run(mut mech: SspMechanism, intervals: u64) -> (SspMechanism, u64) {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mgr = CheckpointManager::new(&mut machine, 60_000);
        let w = Workload::new(WorkloadProfile::gapbs_pr(), 7);
        let res = mgr.run_stack_only(w, &mut mech, intervals);
        (mech, res.total_cycles)
    }

    #[test]
    fn commits_at_line_granularity() {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mgr = CheckpointManager::new(&mut machine, 30_000);
        let mut mech = SspMechanism::with_1ms();
        let bench = MicroBench::new(MicroSpec::Sparse { pages: 8 }, 7);
        let res = mgr.run_stack_only(bench, &mut mech, 2);
        assert!(res.bytes_copied > 0);
        assert_eq!(res.bytes_copied % CACHE_LINE, 0);
        // Line granularity beats page granularity for sparse writes...
        assert!(res.bytes_copied < 2 * 8 * PAGE_SIZE);
    }

    #[test]
    fn faster_consolidation_costs_more() {
        let (m10, c10) = run(SspMechanism::with_10us(), 5);
        let (m1ms, c1ms) = run(SspMechanism::with_1ms(), 5);
        assert!(
            c10 > c1ms,
            "SSP-10us {c10} must exceed SSP-1ms {c1ms} (Fig. 8 trend)"
        );
        assert!(m10.pages_consolidated >= m1ms.pages_consolidated);
    }

    #[test]
    fn variant_names_match_figures() {
        assert_eq!(SspMechanism::with_10us().variant_name(), "SSP-10us");
        assert_eq!(SspMechanism::with_100us().variant_name(), "SSP-100us");
        assert_eq!(SspMechanism::with_1ms().variant_name(), "SSP-1ms");
        assert_eq!(SspMechanism::new(123).variant_name(), "SSP");
    }

    #[test]
    fn consolidation_skips_active_pages() {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mech = SspMechanism::new(1_000);
        let region = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7001_0000));
        mech.begin_interval(&mut machine, region);
        let store = |mech: &mut SspMechanism, machine: &mut Machine, addr: u64| {
            let a = MemAccess {
                tid: 0,
                kind: prosper_trace::record::AccessKind::Store,
                vaddr: VirtAddr::new(addr),
                size: 8,
                region: prosper_trace::record::Region::Stack,
                sp: VirtAddr::new(addr),
            };
            mech.on_store(machine, &a);
        };
        // Write page A, advance past a consolidation deadline, write
        // page B: A is inactive and consolidates, B is current-tick.
        store(&mut mech, &mut machine, 0x7000_0000);
        machine.advance(2_000);
        store(&mut mech, &mut machine, 0x7000_1000);
        assert_eq!(mech.pages_consolidated, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        SspMechanism::new(0);
    }
}
