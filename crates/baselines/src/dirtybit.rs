//! The Dirtybit baseline: page-granularity dirty tracking using the
//! hardware dirty bit in the page table, modelled on LDT (the paper's
//! reference implementation).
//!
//! The stack stays in DRAM. During an interval the hardware page-table
//! walker sets the PTE dirty bit on the first write to each page (no
//! software cost). At interval end the OS walks the PTEs of the stack
//! range, collects dirty pages, copies each whole 4 KiB page to NVM,
//! and resets the bits for the next interval. The copy-size
//! amplification relative to Prosper (Figures 4 and 10) is the entire
//! point of this baseline.

use prosper_gemos::checkpoint::{CheckpointOutcome, IntervalInfo, MemoryPersistence};
use prosper_gemos::pagetable::{PageTable, StoreWalk};
use prosper_memsim::addr::{VirtAddr, VirtRange};
use prosper_memsim::machine::Machine;
use prosper_memsim::Cycles;
use prosper_memsim::PAGE_SIZE;
use prosper_telemetry as telemetry;
use prosper_trace::record::MemAccess;

/// OS cycles per PTE visited during a walk (loop + test + update).
const PER_PTE_WALK_CYCLES: Cycles = 8;

/// Cycles for a minor demand-paging fault (first touch of a stack
/// page): trap, frame allocation, PTE install, return.
const DEMAND_FAULT_CYCLES: Cycles = 2_500;

/// Page-granularity dirty-bit checkpointing.
#[derive(Debug)]
pub struct DirtybitMechanism {
    table: PageTable,
    region: VirtRange,
    next_pfn: u64,
    /// Bound the end-of-interval walk to the maximum active stack
    /// region (on by default — checkpoint mechanisms are inherently
    /// SP-aware per Table I). Disable for the SP-awareness ablation.
    sp_bounded: bool,
    /// Pages copied across all intervals.
    pub pages_copied: u64,
    /// Demand faults taken (first touches).
    pub demand_faults: u64,
    /// PTEs walked across all intervals (metadata work).
    pub ptes_walked: u64,
}

impl Default for DirtybitMechanism {
    fn default() -> Self {
        Self::new()
    }
}

impl DirtybitMechanism {
    /// Creates the mechanism with an empty page table (pages map on
    /// first touch, as the OS grows the stack on demand).
    pub fn new() -> Self {
        Self {
            table: PageTable::new(),
            region: VirtRange::new(VirtAddr::new(0), VirtAddr::new(0)),
            next_pfn: 0x1_0000,
            sp_bounded: true,
            pages_copied: 0,
            demand_faults: 0,
            ptes_walked: 0,
        }
    }

    /// Ablation variant: walk every mapped PTE of the reserved region
    /// instead of only the active stack region — what a checkpoint
    /// mechanism without the hardware-provided active-region watermark
    /// would have to do.
    pub fn without_sp_bounding() -> Self {
        Self {
            sp_bounded: false,
            ..Self::new()
        }
    }

    /// The page table (for tests and diagnostics).
    pub fn page_table(&self) -> &PageTable {
        &self.table
    }

    /// Charges an OS walk over `ptes` page-table entries: loop cycles
    /// plus one cache line of PTEs per eight entries.
    fn charge_walk(machine: &mut Machine, ptes: u64) {
        machine.advance(ptes * PER_PTE_WALK_CYCLES);
        for i in 0..ptes.div_ceil(8) {
            // PTE reads pollute the cache like any kernel access; use a
            // synthetic kernel address range for them.
            machine.load(VirtAddr::new(0x2000_0000 + i * 64), 8);
        }
    }
}

impl MemoryPersistence for DirtybitMechanism {
    fn name(&self) -> &'static str {
        "Dirtybit"
    }

    fn begin_interval(&mut self, machine: &mut Machine, region: VirtRange) {
        self.region = region;
        let walked = self.table.reset_dirty(region);
        Self::charge_walk(machine, walked);
    }

    fn on_store(&mut self, machine: &mut Machine, access: &MemAccess) {
        match self.table.store_walk(access.vaddr) {
            StoreWalk::Ok(_) => {}
            StoreWalk::NotPresent => {
                // Demand-grow the stack page.
                self.demand_faults += 1;
                machine.advance(DEMAND_FAULT_CYCLES);
                self.table.map(access.vaddr.page_number(), self.next_pfn);
                self.next_pfn += 1;
                let _ = self.table.store_walk(access.vaddr);
            }
            StoreWalk::WriteFault => unreachable!("dirtybit never write-protects"),
        }
    }

    fn end_interval(&mut self, machine: &mut Machine, info: IntervalInfo) -> CheckpointOutcome {
        let start = machine.now();
        // SP awareness: the OS restricts the walk to the pages of the
        // maximum active region (plus any mapped pages above it are by
        // construction inside `info.active` for a downward stack). The
        // ablation variant walks the whole reserved region instead.
        let walk_range = if self.sp_bounded {
            info.active.intersect(&info.region).unwrap_or(info.active)
        } else {
            info.region
        };
        let tel = telemetry::enabled();
        let meta_start = machine.now();
        if tel {
            telemetry::span_begin(telemetry::names::SPAN_CKPT_SCAN, "dirtybit", meta_start);
        }
        let (dirty, walked) = self.table.collect_dirty(walk_range);
        Self::charge_walk(machine, walked);
        let reset = self.table.reset_dirty(walk_range);
        Self::charge_walk(machine, reset);
        self.ptes_walked += walked + reset;
        if tel {
            telemetry::span_end(telemetry::names::SPAN_CKPT_SCAN, machine.now());
        }
        let metadata_cycles = machine.now() - meta_start;

        // Copy each dirty page, whole, into NVM.
        let bytes = dirty.len() as u64 * PAGE_SIZE;
        if tel {
            telemetry::span_begin(telemetry::names::SPAN_CKPT_COPY, "dirtybit", machine.now());
        }
        if bytes > 0 {
            machine.bulk_copy_dram_to_nvm(bytes);
        }
        if tel {
            telemetry::span_end(telemetry::names::SPAN_CKPT_COPY, machine.now());
        }
        self.pages_copied += dirty.len() as u64;

        CheckpointOutcome {
            bytes_copied: bytes,
            cycles: machine.now() - start,
            metadata_cycles,
        }
    }

    fn region_in_dram(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosper_gemos::checkpoint::CheckpointManager;
    use prosper_memsim::config::MachineConfig;
    use prosper_trace::micro::{MicroBench, MicroSpec};
    use prosper_trace::source::TraceSource;

    fn run(spec: MicroSpec, intervals: u64) -> (DirtybitMechanism, u64, u64) {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mgr = CheckpointManager::new(&mut machine, 30_000);
        let mut mech = DirtybitMechanism::new();
        let bench = MicroBench::new(spec, 7);
        let res = mgr.run_stack_only(bench, &mut mech, intervals);
        (mech, res.bytes_copied, res.intervals)
    }

    #[test]
    fn copies_whole_pages() {
        let (mech, bytes, _) = run(MicroSpec::Stream { array_bytes: 8192 }, 2);
        assert!(bytes > 0);
        assert_eq!(bytes % PAGE_SIZE, 0, "page-granular copies");
        assert_eq!(bytes, mech.pages_copied * PAGE_SIZE);
    }

    #[test]
    fn sparse_amplification_vs_actual_dirty_bytes() {
        // Sparse dirties ~4 bytes per page; Dirtybit still copies the
        // full 4 KiB — the Figure 4 amplification.
        let (_mech, bytes, intervals) = run(MicroSpec::Sparse { pages: 16 }, 2);
        assert!(intervals == 2);
        assert!(
            bytes >= 16 * PAGE_SIZE,
            "every touched page copied: {bytes}"
        );
    }

    #[test]
    fn demand_faults_only_on_first_touch() {
        let (mech, _, _) = run(MicroSpec::Stream { array_bytes: 8192 }, 4);
        // The array spans ~3 pages (plus frame overhead); faults do not
        // repeat per interval.
        assert!(mech.demand_faults < 10, "faults: {}", mech.demand_faults);
        assert!(mech.page_table().mapped_pages() >= 2);
    }

    #[test]
    fn sp_bounding_reduces_walk_work() {
        // Dirty pages sit near the top of an 8 MiB reserved region;
        // without SP bounding the OS walks every mapped PTE of the
        // reserved range, with bounding only the active window.
        let run = |mut mech: DirtybitMechanism| {
            let mut machine = Machine::new(MachineConfig::setup_i());
            let mut mgr = CheckpointManager::new(&mut machine, 30_000);
            let bench = MicroBench::new(
                MicroSpec::Random {
                    array_bytes: 16 * 1024,
                },
                7,
            );
            let res = mgr.run_stack_only(bench, &mut mech, 4);
            (mech.ptes_walked, res.bytes_copied)
        };
        let (bounded_walk, bounded_bytes) = run(DirtybitMechanism::new());
        let (full_walk, full_bytes) = run(DirtybitMechanism::without_sp_bounding());
        assert_eq!(bounded_bytes, full_bytes, "same dirty pages either way");
        assert!(
            bounded_walk <= full_walk,
            "SP bounding never walks more: {bounded_walk} vs {full_walk}"
        );
    }

    #[test]
    fn second_interval_without_writes_copies_nothing() {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mech = DirtybitMechanism::new();
        let bench = MicroBench::new(MicroSpec::Stream { array_bytes: 4096 }, 1);
        let region = bench.stack().reserved_range();
        mech.begin_interval(&mut machine, region);
        // One store, then a checkpoint.
        let a = prosper_trace::record::MemAccess {
            tid: 0,
            kind: prosper_trace::record::AccessKind::Store,
            vaddr: region.end() - 64u64,
            size: 8,
            region: prosper_trace::record::Region::Stack,
            sp: region.end() - 64u64,
        };
        mech.on_store(&mut machine, &a);
        let info = IntervalInfo {
            region,
            active: VirtRange::new(region.end() - 4096u64, region.end()),
            final_sp: region.end() - 64u64,
        };
        let o1 = mech.end_interval(&mut machine, info);
        assert_eq!(o1.bytes_copied, PAGE_SIZE);
        // Next interval: no stores => nothing dirty.
        mech.begin_interval(&mut machine, region);
        let o2 = mech.end_interval(&mut machine, info);
        assert_eq!(o2.bytes_copied, 0);
    }
}
