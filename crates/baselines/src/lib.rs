//! # prosper-baselines
//!
//! The memory-persistence mechanisms the paper compares Prosper
//! against, each implemented as a
//! [`prosper_gemos::checkpoint::MemoryPersistence`] plug-in or, for
//! the Figure 3 motivation study, as a trace-replay engine:
//!
//! * [`mechanism`] — the Table I capability matrix;
//! * [`dirtybit`] — LDT-style page-granularity dirty-bit checkpointing;
//! * [`writeprotect`] — SoftDirty-style write-protect fault tracking;
//! * [`romulus`] — Romulus adapted as a HW/SW co-design for the stack:
//!   twin main/backup copies in NVM, a hardware log of stack
//!   modifications, and an uncoalesced software copy at commit;
//! * [`ssp`] — sub-page shadow paging at cache-line granularity with a
//!   background page-consolidation OS thread (10 µs / 100 µs / 1 ms);
//! * [`logging`] — flush (`clwb`-per-store), undo, and redo logging,
//!   each replayable with and without stack-pointer awareness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dirtybit;
pub mod logging;
pub mod logmech;
pub mod mechanism;
pub mod romulus;
pub mod ssp;
pub mod writeprotect;

pub use dirtybit::DirtybitMechanism;
pub use romulus::RomulusMechanism;
pub use ssp::SspMechanism;
pub use writeprotect::WriteProtectMechanism;
