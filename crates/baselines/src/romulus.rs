//! Romulus adapted for stack persistence, as the paper implements it
//! (Section IV-A).
//!
//! Romulus keeps **twin copies** of the persistent data in NVM — a
//! *main* copy the application works on and a *backup* copy used for
//! recovery. The original is a user-space library; since the compiler
//! manages the stack, the paper re-casts it as a hardware–software
//! co-design: a hardware component logs the `(address, size)` of every
//! stack modification, and a software component copies the logged
//! ranges from main to backup at commit — **without coalescing**, so
//! overlapping addresses are copied repeatedly. Both copies live in
//! NVM, so every demand access to the stack also pays NVM residence.

use prosper_gemos::checkpoint::{CheckpointOutcome, IntervalInfo, MemoryPersistence};
use prosper_memsim::addr::{VirtAddr, VirtRange};
use prosper_memsim::machine::Machine;
use prosper_memsim::Cycles;
use prosper_trace::record::MemAccess;

/// Bytes per hardware log entry: 8-byte address + 8-byte size.
const LOG_ENTRY_BYTES: u64 = 16;

/// Software cycles per log entry during the commit copy (entry fetch,
/// bounds handling, issuing the copy).
const PER_ENTRY_COPY_CYCLES: Cycles = 30;

/// Romulus for the stack region.
#[derive(Debug, Default)]
pub struct RomulusMechanism {
    /// The hardware log of the current interval: (addr, size).
    log: Vec<(VirtAddr, u32)>,
    /// Entries logged across the run.
    pub entries_logged: u64,
    /// Bytes copied main → backup across the run (uncoalesced).
    pub bytes_copied: u64,
}

impl RomulusMechanism {
    /// Creates the mechanism with an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current interval's pending log length.
    pub fn pending_entries(&self) -> usize {
        self.log.len()
    }
}

impl MemoryPersistence for RomulusMechanism {
    fn name(&self) -> &'static str {
        "Romulus"
    }

    fn begin_interval(&mut self, _machine: &mut Machine, _region: VirtRange) {
        self.log.clear();
    }

    fn on_store(&mut self, machine: &mut Machine, access: &MemAccess) {
        // The hardware appends a log entry to NVM for every stack
        // modification — off the store's critical path, but real NVM
        // write traffic.
        self.log.push((access.vaddr, access.size));
        self.entries_logged += 1;
        let log_slot = machine.nvm_base() + (self.entries_logged % 4096) * LOG_ENTRY_BYTES;
        machine.persist_write(log_slot, LOG_ENTRY_BYTES);
    }

    fn end_interval(&mut self, machine: &mut Machine, _info: IntervalInfo) -> CheckpointOutcome {
        let start = machine.now();
        // Software walks the log and copies every entry main → backup
        // inside NVM, with no coalescing of overlapping entries.
        let meta_start = machine.now();
        machine.advance(self.log.len() as u64 * PER_ENTRY_COPY_CYCLES);
        let metadata_cycles = machine.now() - meta_start;

        let mut bytes = 0u64;
        for (_, size) in &self.log {
            bytes += u64::from(*size);
        }
        if bytes > 0 {
            machine.bulk_copy_nvm_to_nvm(bytes);
        }
        self.bytes_copied += bytes;
        self.log.clear();

        CheckpointOutcome {
            bytes_copied: bytes,
            cycles: machine.now() - start,
            metadata_cycles,
        }
    }

    /// Romulus keeps both copies in NVM (Table I).
    fn region_in_dram(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosper_gemos::checkpoint::CheckpointManager;
    use prosper_memsim::config::MachineConfig;
    use prosper_trace::micro::{MicroBench, MicroSpec};

    #[test]
    fn logs_every_stack_store_without_coalescing() {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mgr = CheckpointManager::new(&mut machine, 30_000);
        let mut mech = RomulusMechanism::new();
        let bench = MicroBench::new(MicroSpec::Random { array_bytes: 4096 }, 7);
        let res = mgr.run_stack_only(bench, &mut mech, 2);
        assert_eq!(mech.entries_logged, res.stack_stores);
        // Uncoalesced: repeated writes to the same slot are copied
        // repeatedly, so copy volume ≈ stores × 8 B, far above the
        // distinct dirty footprint (≤ array size).
        assert!(res.bytes_copied >= res.stack_stores * 8 * 9 / 10);
    }

    #[test]
    fn far_more_expensive_than_prosper() {
        let run_with = |mech: &mut dyn MemoryPersistence| {
            let mut machine = Machine::new(MachineConfig::setup_i());
            let mut mgr = CheckpointManager::new(&mut machine, 30_000);
            let bench = MicroBench::new(MicroSpec::Random { array_bytes: 8192 }, 7);
            mgr.run_stack_only(bench, mech, 3).total_cycles
        };
        let mut romulus = RomulusMechanism::new();
        let mut prosper = prosper_core::ProsperMechanism::with_defaults();
        let r = run_with(&mut romulus);
        let p = run_with(&mut prosper);
        assert!(r > p, "Romulus {r} must exceed Prosper {p}");
    }

    #[test]
    fn log_cleared_between_intervals() {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mech = RomulusMechanism::new();
        let region = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7001_0000));
        mech.begin_interval(&mut machine, region);
        let a = MemAccess {
            tid: 0,
            kind: prosper_trace::record::AccessKind::Store,
            vaddr: region.start(),
            size: 8,
            region: prosper_trace::record::Region::Stack,
            sp: region.start(),
        };
        mech.on_store(&mut machine, &a);
        assert_eq!(mech.pending_entries(), 1);
        let info = IntervalInfo {
            region,
            active: region,
            final_sp: region.start(),
        };
        let o = mech.end_interval(&mut machine, info);
        assert_eq!(o.bytes_copied, 8);
        assert_eq!(mech.pending_entries(), 0);
    }
}
