//! The Table I capability matrix.
//!
//! The paper compares mechanisms along four axes: whether they achieve
//! process persistence, work without compiler support, are stack-
//! pointer aware, and allow the stack to live in DRAM.

use serde::{Deserialize, Serialize};

/// Capability flags of a persistence mechanism (Table I columns).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Capabilities {
    /// Achieves process persistence (integrates with OS checkpoints).
    pub process_persistence: bool,
    /// Works without compiler support (crucial for the stack, which is
    /// used indirectly through the compiler/runtime).
    pub no_compiler_support: bool,
    /// Stack-pointer awareness: the commit-time cost is determined by
    /// the active stack region, not by every write in the interval.
    pub sp_aware: bool,
    /// Allows the stack region itself to live in DRAM.
    pub stack_in_dram: bool,
}

/// A named row of the capability matrix.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MechanismRow {
    /// Mechanism name.
    pub name: &'static str,
    /// Its capabilities.
    pub caps: Capabilities,
}

/// The full comparison table, Prosper included.
pub fn capability_table() -> Vec<MechanismRow> {
    vec![
        MechanismRow {
            name: "Flush/Undo/Redo logging",
            caps: Capabilities {
                process_persistence: false,
                no_compiler_support: false,
                sp_aware: false,
                stack_in_dram: false,
            },
        },
        MechanismRow {
            name: "Romulus",
            caps: Capabilities {
                process_persistence: false,
                no_compiler_support: false,
                sp_aware: false,
                stack_in_dram: false,
            },
        },
        MechanismRow {
            name: "SSP",
            caps: Capabilities {
                process_persistence: false,
                no_compiler_support: true,
                sp_aware: false,
                stack_in_dram: false,
            },
        },
        MechanismRow {
            name: "Dirtybit (page granularity)",
            caps: Capabilities {
                process_persistence: true,
                no_compiler_support: true,
                sp_aware: true,
                stack_in_dram: true,
            },
        },
        MechanismRow {
            name: "Prosper",
            caps: Capabilities {
                process_persistence: true,
                no_compiler_support: true,
                sp_aware: true,
                stack_in_dram: true,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prosper_has_all_capabilities() {
        let table = capability_table();
        let prosper = table.iter().find(|r| r.name == "Prosper").unwrap();
        assert!(prosper.caps.process_persistence);
        assert!(prosper.caps.no_compiler_support);
        assert!(prosper.caps.sp_aware);
        assert!(prosper.caps.stack_in_dram);
    }

    #[test]
    fn nvm_resident_mechanisms_flagged() {
        for row in capability_table() {
            if row.name == "Romulus" || row.name == "SSP" {
                assert!(!row.caps.stack_in_dram, "{} keeps stack in NVM", row.name);
                assert!(!row.caps.sp_aware, "{} is not SP aware", row.name);
            }
        }
    }

    #[test]
    fn table_covers_five_mechanism_classes() {
        assert_eq!(capability_table().len(), 5);
    }
}
