//! The flush / undo / redo logging schemes and the Figure 3 replay
//! engine.
//!
//! Section II-A of the paper replays stack traces on a real NVM system
//! to quantify what *stack-pointer awareness* would buy existing
//! logging-style mechanisms. The mechanisms themselves cannot be SP
//! aware (they must act on every write as it happens); the replay
//! grants them impossible future knowledge — "apply the mechanism only
//! to accesses inside the interval-final active stack region" — to
//! bound the benefit.
//!
//! We reproduce the replay on the NVM device model: each mechanism
//! charges its per-access persistence work, with and without SP
//! awareness, normalized to a DRAM-resident run with no persistence.

use prosper_memsim::addr::VirtAddr;
use prosper_memsim::machine::Machine;
use prosper_memsim::Cycles;
use prosper_trace::interval::IntervalCollector;
use prosper_trace::record::{AccessKind, Region, TraceEvent};
use prosper_trace::source::TraceSource;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The three logging-style schemes of Figure 3.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum LoggingScheme {
    /// `clwb` after every store: the line is written back to NVM
    /// immediately.
    Flush,
    /// Undo logging: before the first store to a location in an
    /// interval, read the old value and append it to an NVM log, then
    /// perform the store in NVM.
    Undo,
    /// Redo logging: append `(addr, value)` to an NVM log on every
    /// store; apply the log to the home locations at commit.
    Redo,
}

impl LoggingScheme {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            LoggingScheme::Flush => "flush",
            LoggingScheme::Undo => "undo",
            LoggingScheme::Redo => "redo",
        }
    }

    /// All three schemes in figure order.
    pub fn all() -> [LoggingScheme; 3] {
        [
            LoggingScheme::Flush,
            LoggingScheme::Undo,
            LoggingScheme::Redo,
        ]
    }
}

/// Result of one replay configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ReplayResult {
    /// Total cycles of the replay.
    pub cycles: Cycles,
    /// Persistence operations performed (clwbs or log appends).
    pub persistence_ops: u64,
    /// Operations that SP awareness skipped (0 without awareness).
    pub skipped_ops: u64,
}

/// Replays `intervals` intervals of the **stack accesses** of
/// `source` under `scheme`.
///
/// Following the paper's methodology, the replay program performs only
/// the accesses of the stack trace back to back (no compute, no
/// heap) — Section II-A's custom program on the Optane system did the
/// same with an "equivalent number of reads/writes in the trace".
///
/// With `sp_aware` set, persistence work is applied only to stack
/// stores at or above the interval-final SP — the oracle the paper
/// grants via trace post-processing. The stack region lives in NVM
/// for all schemes (none of them allows a DRAM stack; Table I).
pub fn replay_logging<S: TraceSource>(
    machine: &mut Machine,
    source: S,
    scheme: LoggingScheme,
    sp_aware: bool,
    interval_budget: Cycles,
    intervals: u64,
) -> ReplayResult {
    let mut collector = IntervalCollector::new(source, interval_budget);
    let mut result = ReplayResult {
        cycles: 0,
        persistence_ops: 0,
        skipped_ops: 0,
    };
    let nvm_base = machine.nvm_base();
    let mut log_cursor: u64 = 0;

    for _ in 0..intervals {
        let interval = collector.next_interval();
        // Undo logging logs each location once per interval.
        let mut undo_logged: HashSet<u64> = HashSet::new();
        let mut redo_entries: u64 = 0;

        for ev in &interval.events {
            match ev {
                TraceEvent::Compute(_) => {}
                TraceEvent::Access(a) => {
                    if a.region != Region::Stack {
                        continue;
                    }
                    match a.kind {
                        AccessKind::Load => {
                            machine.load(a.vaddr, u64::from(a.size));
                        }
                        AccessKind::Store => {
                            machine.store(a.vaddr, u64::from(a.size));
                        }
                    }
                    if a.kind != AccessKind::Store {
                        continue;
                    }
                    // SP awareness: skip work for stores below the
                    // interval-final SP (dead at the commit point).
                    if sp_aware && a.vaddr < interval.final_sp {
                        result.skipped_ops += 1;
                        continue;
                    }
                    result.persistence_ops += 1;
                    match scheme {
                        LoggingScheme::Flush => {
                            // Write the line back to the NVM-resident
                            // stack immediately.
                            machine.clwb(a.vaddr);
                            let slot = nvm_base + (a.vaddr.raw() % (1 << 20));
                            machine.persist_write(slot, 64);
                            machine.advance(40);
                        }
                        LoggingScheme::Undo => {
                            let granule = a.vaddr.raw() / 8;
                            if undo_logged.insert(granule) {
                                // Read old value + append to NVM log,
                                // ordered before the store.
                                machine.load(a.vaddr, 8);
                                let slot = nvm_base + (log_cursor % (1 << 20));
                                log_cursor += 16;
                                machine.persist_write(slot, 16);
                                machine.advance(60);
                            } else {
                                machine.advance(12); // logged-set check
                            }
                        }
                        LoggingScheme::Redo => {
                            // Append (addr, value) to the NVM log.
                            let slot = nvm_base + (log_cursor % (1 << 20));
                            log_cursor += 16;
                            machine.persist_write(slot, 16);
                            redo_entries += 1;
                            machine.advance(30);
                        }
                    }
                }
            }
        }
        // Commit work at the interval end.
        match scheme {
            LoggingScheme::Flush => machine.advance(100), // sfence
            LoggingScheme::Undo => {
                // Truncate the undo log.
                machine.advance(200 + undo_logged.len() as u64 / 8);
            }
            LoggingScheme::Redo => {
                // Apply the redo log to the home locations in NVM.
                machine.bulk_copy_nvm_to_nvm(redo_entries * 8);
                machine.advance(200);
            }
        }
    }
    result.cycles = machine.now();
    result
}

/// Replays the same stack trace with the stack in DRAM and no
/// persistence — the normalisation baseline of Figure 3.
pub fn replay_baseline<S: TraceSource>(
    machine: &mut Machine,
    source: S,
    interval_budget: Cycles,
    intervals: u64,
) -> Cycles {
    let mut collector = IntervalCollector::new(source, interval_budget);
    for _ in 0..intervals {
        let interval = collector.next_interval();
        for ev in &interval.events {
            match ev {
                TraceEvent::Compute(_) => {}
                TraceEvent::Access(a) => {
                    if a.region != Region::Stack {
                        continue;
                    }
                    match a.kind {
                        AccessKind::Load => machine.load(a.vaddr, u64::from(a.size)),
                        AccessKind::Store => machine.store(a.vaddr, u64::from(a.size)),
                    };
                }
            }
        }
    }
    machine.now()
}

/// Helper for tests and the Figure 3 harness: (addr used only to vary
/// the trace deterministically).
pub fn _doc_anchor() -> VirtAddr {
    VirtAddr::new(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosper_memsim::config::MachineConfig;
    use prosper_trace::workloads::{Workload, WorkloadProfile};

    fn replay(scheme: LoggingScheme, sp_aware: bool) -> (ReplayResult, Cycles) {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let w = Workload::new(WorkloadProfile::ycsb_mem(), 3);
        let r = replay_logging(&mut machine, w, scheme, sp_aware, 30_000, 5);
        (r, machine.now())
    }

    #[test]
    fn sp_awareness_skips_work_and_saves_time() {
        for scheme in LoggingScheme::all() {
            let (unaware, t_unaware) = replay(scheme, false);
            let (aware, t_aware) = replay(scheme, true);
            assert_eq!(unaware.skipped_ops, 0);
            assert!(
                aware.skipped_ops > 0,
                "{}: oracle skipped ops",
                scheme.name()
            );
            assert!(
                aware.persistence_ops < unaware.persistence_ops,
                "{}: fewer ops with awareness",
                scheme.name()
            );
            assert!(
                t_aware < t_unaware,
                "{}: {t_aware} < {t_unaware} (Fig. 3 trend)",
                scheme.name()
            );
        }
    }

    #[test]
    fn all_schemes_slower_than_dram_baseline() {
        let baseline = {
            let mut machine = Machine::new(MachineConfig::setup_i());
            let w = Workload::new(WorkloadProfile::ycsb_mem(), 3);
            replay_baseline(&mut machine, w, 30_000, 5)
        };
        for scheme in LoggingScheme::all() {
            let (_, cycles) = replay(scheme, true);
            assert!(
                cycles > baseline,
                "{} even with SP awareness is slower than DRAM ({cycles} vs {baseline})",
                scheme.name()
            );
        }
    }

    #[test]
    fn undo_logs_each_location_once_per_interval() {
        let (undo, _) = replay(LoggingScheme::Undo, false);
        let (redo, _) = replay(LoggingScheme::Redo, false);
        // Redo appends per store; undo only on first touch, so undo
        // performs at most as many *log appends*; persistence_ops
        // counts both kinds of visits equally here, so compare via
        // cycles instead: redo with duplicates must not be cheaper in
        // ops.
        assert!(redo.persistence_ops == undo.persistence_ops);
    }

    #[test]
    fn scheme_names() {
        let names: Vec<&str> = LoggingScheme::all().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["flush", "undo", "redo"]);
    }
}
