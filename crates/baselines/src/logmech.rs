//! Undo and redo logging as pluggable checkpoint-interval mechanisms.
//!
//! The Figure 3 study replays these schemes over recorded traces; this
//! module additionally packages them as
//! [`MemoryPersistence`] plug-ins so they can run
//! inside the end-to-end checkpoint manager next to Prosper, Dirtybit,
//! SSP, and Romulus. Both keep the tracked region in NVM (Table I) and
//! perform per-store work during the interval — the defining
//! inefficiency the paper's checkpoint approach avoids.

use std::collections::HashSet;

use prosper_gemos::checkpoint::{CheckpointOutcome, IntervalInfo, MemoryPersistence};
use prosper_memsim::addr::VirtRange;
use prosper_memsim::machine::Machine;
use prosper_memsim::Cycles;
use prosper_trace::record::MemAccess;

/// Bytes per log entry (address + payload word).
const LOG_ENTRY_BYTES: u64 = 16;

/// Core cycles to order a log append before the data store.
const UNDO_ORDER_CYCLES: Cycles = 60;

/// Core cycles per redo append (no read of the old value needed).
const REDO_APPEND_CYCLES: Cycles = 30;

/// Undo logging: before the first store to each 8-byte location in an
/// interval, the old value is read and appended to an NVM undo log;
/// commit truncates the log.
#[derive(Debug, Default)]
pub struct UndoLogMechanism {
    logged: HashSet<u64>,
    log_cursor: u64,
    /// Entries appended across the run.
    pub entries: u64,
}

impl UndoLogMechanism {
    /// Creates the mechanism with an empty log.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MemoryPersistence for UndoLogMechanism {
    fn name(&self) -> &'static str {
        "UndoLog"
    }

    fn begin_interval(&mut self, _machine: &mut Machine, _region: VirtRange) {
        self.logged.clear();
    }

    fn on_store(&mut self, machine: &mut Machine, access: &MemAccess) {
        let granule = access.vaddr.raw() / 8;
        if self.logged.insert(granule) {
            // Read the old value and append it, ordered before the
            // store itself.
            machine.load(access.vaddr, 8);
            let slot = machine.nvm_base() + (self.log_cursor % (1 << 20));
            self.log_cursor += LOG_ENTRY_BYTES;
            machine.persist_write(slot, LOG_ENTRY_BYTES);
            machine.advance(UNDO_ORDER_CYCLES);
            self.entries += 1;
        }
    }

    fn end_interval(&mut self, machine: &mut Machine, _info: IntervalInfo) -> CheckpointOutcome {
        let start = machine.now();
        // Commit = truncate the undo log (the data is already home in
        // NVM); cost scales with the entries to invalidate.
        let meta_start = machine.now();
        machine.advance(200 + self.logged.len() as u64 / 8);
        let metadata_cycles = machine.now() - meta_start;
        let bytes = self.logged.len() as u64 * LOG_ENTRY_BYTES;
        self.logged.clear();
        CheckpointOutcome {
            bytes_copied: bytes,
            cycles: machine.now() - start,
            metadata_cycles,
        }
    }

    fn region_in_dram(&self) -> bool {
        false
    }
}

/// Redo logging: every store appends `(addr, value)` to an NVM redo
/// log; commit applies the log to the home locations.
#[derive(Debug, Default)]
pub struct RedoLogMechanism {
    interval_entries: u64,
    log_cursor: u64,
    /// Entries appended across the run.
    pub entries: u64,
}

impl RedoLogMechanism {
    /// Creates the mechanism with an empty log.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MemoryPersistence for RedoLogMechanism {
    fn name(&self) -> &'static str {
        "RedoLog"
    }

    fn begin_interval(&mut self, _machine: &mut Machine, _region: VirtRange) {
        self.interval_entries = 0;
    }

    fn on_store(&mut self, machine: &mut Machine, access: &MemAccess) {
        let slot = machine.nvm_base() + (self.log_cursor % (1 << 20));
        self.log_cursor += LOG_ENTRY_BYTES;
        machine.persist_write(slot, LOG_ENTRY_BYTES);
        machine.advance(REDO_APPEND_CYCLES);
        let _ = access;
        self.interval_entries += 1;
        self.entries += 1;
    }

    fn end_interval(&mut self, machine: &mut Machine, _info: IntervalInfo) -> CheckpointOutcome {
        let start = machine.now();
        let meta_start = machine.now();
        machine.advance(200);
        let metadata_cycles = machine.now() - meta_start;
        // Apply the log to the home locations inside NVM.
        let bytes = self.interval_entries * 8;
        if bytes > 0 {
            machine.bulk_copy_nvm_to_nvm(bytes);
        }
        self.interval_entries = 0;
        CheckpointOutcome {
            bytes_copied: bytes,
            cycles: machine.now() - start,
            metadata_cycles,
        }
    }

    fn region_in_dram(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosper_core::ProsperMechanism;
    use prosper_gemos::checkpoint::CheckpointManager;
    use prosper_memsim::config::MachineConfig;
    use prosper_trace::workloads::{Workload, WorkloadProfile};

    fn run(mech: &mut dyn MemoryPersistence) -> (u64, u64) {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mgr = CheckpointManager::new(&mut machine, 40_000);
        let w = Workload::new(WorkloadProfile::gapbs_pr(), 13);
        let res = mgr.run_stack_only(w, mech, 4);
        (res.total_cycles, res.stack_stores)
    }

    #[test]
    fn undo_logs_each_location_once_per_interval() {
        let mut undo = UndoLogMechanism::new();
        let (_, stores) = run(&mut undo);
        assert!(undo.entries > 0);
        assert!(
            undo.entries < stores,
            "dedup: {} entries for {} stores",
            undo.entries,
            stores
        );
    }

    #[test]
    fn redo_logs_every_store() {
        let mut redo = RedoLogMechanism::new();
        let (_, stores) = run(&mut redo);
        assert_eq!(redo.entries, stores);
    }

    #[test]
    fn both_slower_than_prosper() {
        let (undo_cycles, _) = run(&mut UndoLogMechanism::new());
        let (redo_cycles, _) = run(&mut RedoLogMechanism::new());
        let (prosper_cycles, _) = run(&mut ProsperMechanism::with_defaults());
        assert!(
            undo_cycles > prosper_cycles,
            "{undo_cycles} > {prosper_cycles}"
        );
        assert!(
            redo_cycles > prosper_cycles,
            "{redo_cycles} > {prosper_cycles}"
        );
    }

    #[test]
    fn redo_appends_at_least_as_many_entries_as_undo() {
        let mut undo = UndoLogMechanism::new();
        let mut redo = RedoLogMechanism::new();
        run(&mut undo);
        run(&mut redo);
        assert!(redo.entries >= undo.entries);
    }
}
