//! The write-protect dirty-tracking baseline (SoftDirty-style).
//!
//! At the start of every interval the OS removes write permission from
//! all mapped pages of the tracked range; the first write to each page
//! then faults, the OS records the page dirty and restores the
//! permission. Compared with Dirtybit this adds a page-fault per dirty
//! page per interval — exactly the overhead LDT (and the paper) argue
//! against.

use prosper_gemos::checkpoint::{CheckpointOutcome, IntervalInfo, MemoryPersistence};
use prosper_gemos::pagetable::{PageTable, StoreWalk};
use prosper_memsim::addr::VirtRange;
use prosper_memsim::machine::Machine;
use prosper_memsim::Cycles;
use prosper_memsim::PAGE_SIZE;
use prosper_trace::record::MemAccess;

/// Cycles for a write-protection fault: trap, VMA lookup, permission
/// fix-up, TLB shootdown of the stale entry, return.
const PROTECT_FAULT_CYCLES: Cycles = 4_000;

/// Cycles for a minor demand-paging fault.
const DEMAND_FAULT_CYCLES: Cycles = 2_500;

/// OS cycles per PTE visited during the protect walk.
const PER_PTE_WALK_CYCLES: Cycles = 10;

/// Write-protect-based page-granularity checkpointing.
#[derive(Debug)]
pub struct WriteProtectMechanism {
    table: PageTable,
    next_pfn: u64,
    /// Pages recorded dirty in the current interval (the fault log —
    /// no end-of-interval PTE walk is needed to *find* dirty pages).
    dirty_log: Vec<u64>,
    /// Protection faults taken across the run.
    pub protect_faults: u64,
    /// Demand faults taken across the run.
    pub demand_faults: u64,
}

impl Default for WriteProtectMechanism {
    fn default() -> Self {
        Self::new()
    }
}

impl WriteProtectMechanism {
    /// Creates the mechanism with an empty page table.
    pub fn new() -> Self {
        Self {
            table: PageTable::new(),
            next_pfn: 0x8_0000,
            dirty_log: Vec::new(),
            protect_faults: 0,
            demand_faults: 0,
        }
    }
}

impl MemoryPersistence for WriteProtectMechanism {
    fn name(&self) -> &'static str {
        "WriteProtect"
    }

    fn begin_interval(&mut self, machine: &mut Machine, region: VirtRange) {
        self.dirty_log.clear();
        let walked = self.table.write_protect(region);
        machine.advance(walked * PER_PTE_WALK_CYCLES);
    }

    fn on_store(&mut self, machine: &mut Machine, access: &MemAccess) {
        match self.table.store_walk(access.vaddr) {
            StoreWalk::Ok(_) => {}
            StoreWalk::WriteFault => {
                self.protect_faults += 1;
                machine.advance(PROTECT_FAULT_CYCLES);
                self.table.grant_write(access.vaddr);
                self.dirty_log.push(access.vaddr.page_number());
            }
            StoreWalk::NotPresent => {
                self.demand_faults += 1;
                machine.advance(DEMAND_FAULT_CYCLES);
                self.table.map(access.vaddr.page_number(), self.next_pfn);
                self.next_pfn += 1;
                self.dirty_log.push(access.vaddr.page_number());
                let _ = self.table.store_walk(access.vaddr);
            }
        }
    }

    fn end_interval(&mut self, machine: &mut Machine, _info: IntervalInfo) -> CheckpointOutcome {
        let start = machine.now();
        // The dirty set is already known from the fault log; dedup it.
        let meta_start = machine.now();
        self.dirty_log.sort_unstable();
        self.dirty_log.dedup();
        machine.advance(self.dirty_log.len() as u64 * 4);
        let metadata_cycles = machine.now() - meta_start;

        let bytes = self.dirty_log.len() as u64 * PAGE_SIZE;
        if bytes > 0 {
            machine.bulk_copy_dram_to_nvm(bytes);
        }
        let pages = std::mem::take(&mut self.dirty_log);
        let _ = pages;

        CheckpointOutcome {
            bytes_copied: bytes,
            cycles: machine.now() - start,
            metadata_cycles,
        }
    }

    fn region_in_dram(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosper_gemos::checkpoint::CheckpointManager;
    use prosper_memsim::config::MachineConfig;
    use prosper_trace::micro::{MicroBench, MicroSpec};

    fn run(spec: MicroSpec, intervals: u64) -> (WriteProtectMechanism, u64, u64) {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mgr = CheckpointManager::new(&mut machine, 30_000);
        let mut mech = WriteProtectMechanism::new();
        let bench = MicroBench::new(spec, 7);
        let res = mgr.run_stack_only(bench, &mut mech, intervals);
        (mech, res.bytes_copied, res.total_cycles)
    }

    #[test]
    fn faults_repeat_every_interval() {
        let (mech, bytes, _) = run(MicroSpec::Stream { array_bytes: 8192 }, 4);
        // Each interval re-protects, so pages fault again.
        assert!(
            mech.protect_faults >= 3,
            "protect faults: {}",
            mech.protect_faults
        );
        assert_eq!(bytes % PAGE_SIZE, 0);
    }

    #[test]
    fn slower_than_dirtybit_due_to_faults() {
        let spec = MicroSpec::Stream { array_bytes: 16384 };
        let (_, _, wp_cycles) = run(spec, 4);
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mgr = CheckpointManager::new(&mut machine, 30_000);
        let mut db = crate::dirtybit::DirtybitMechanism::new();
        let bench = MicroBench::new(spec, 7);
        let db_res = mgr.run_stack_only(bench, &mut db, 4);
        assert!(
            wp_cycles > db_res.total_cycles,
            "write-protect {wp_cycles} > dirtybit {}",
            db_res.total_cycles
        );
    }

    #[test]
    fn copy_size_matches_dirtybit() {
        // Both track at page granularity, so copy sizes agree.
        let spec = MicroSpec::Sparse { pages: 8 };
        let (_, wp_bytes, _) = run(spec, 2);
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mgr = CheckpointManager::new(&mut machine, 30_000);
        let mut db = crate::dirtybit::DirtybitMechanism::new();
        let bench = MicroBench::new(spec, 7);
        let db_res = mgr.run_stack_only(bench, &mut db, 2);
        assert_eq!(wp_bytes, db_res.bytes_copied);
    }
}
