//! An explicit program-stack model.
//!
//! The stack grows **downward** from `stack_top`. A frame push moves SP
//! down by the frame size and writes the activation record (return
//! address, saved registers, spilled locals); a pop moves SP back up.
//! This grow/shrink pattern — and the fact that writes cluster inside
//! activation records near the SP — is exactly the usage character the
//! paper argues generic persistence mechanisms handle poorly.
//!
//! The model tracks the **minimum SP watermark** within a tracking
//! interval, which is the "maximum active stack region" the Prosper
//! hardware exports to the OS so that bitmap inspection can be bounded
//! (Section III-A).

use prosper_memsim::addr::{VirtAddr, VirtRange};
use serde::{Deserialize, Serialize};

use crate::record::{AccessKind, MemAccess, Region, TraceEvent};

/// Default top-of-stack virtual address (matches the canonical Linux
/// x86-64 user stack top used by the paper's GemOS port).
pub const DEFAULT_STACK_TOP: u64 = 0x7fff_ff00_0000;

/// Default maximum stack size (8 MiB, the common RLIMIT_STACK).
pub const DEFAULT_STACK_LIMIT: u64 = 8 * 1024 * 1024;

/// A pushed stack frame.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct Frame {
    /// SP value after this frame was pushed (frame occupies
    /// `[sp, prev_sp)`).
    sp: u64,
    /// SP value before the push (for pop).
    prev_sp: u64,
}

/// The stack model for one software thread.
///
/// # Examples
///
/// ```
/// use prosper_trace::stack::StackModel;
///
/// let mut stack = StackModel::new(0);
/// let top = stack.sp();
/// let events = stack.push_frame(64, 2); // call: ret addr + 2 saves
/// assert_eq!(events.len(), 3);
/// assert_eq!(stack.sp(), top - 64u64);
/// stack.pop_frame();
/// assert_eq!(stack.sp(), top);
/// assert_eq!(stack.min_sp_watermark(), top - 64u64);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StackModel {
    tid: u32,
    top: u64,
    limit: u64,
    sp: u64,
    frames: Vec<Frame>,
    min_sp_watermark: u64,
}

impl StackModel {
    /// Creates an empty stack for thread `tid` with the default layout.
    pub fn new(tid: u32) -> Self {
        Self::with_layout(tid, VirtAddr::new(DEFAULT_STACK_TOP), DEFAULT_STACK_LIMIT)
    }

    /// Creates an empty stack with an explicit top address and size
    /// limit.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero or larger than `top`.
    pub fn with_layout(tid: u32, top: VirtAddr, limit: u64) -> Self {
        assert!(limit > 0, "stack limit must be positive");
        assert!(limit <= top.raw(), "stack would wrap below address zero");
        Self {
            tid,
            top: top.raw(),
            limit,
            sp: top.raw(),
            frames: Vec::new(),
            min_sp_watermark: top.raw(),
        }
    }

    /// Issuing thread id.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Current stack pointer.
    pub fn sp(&self) -> VirtAddr {
        VirtAddr::new(self.sp)
    }

    /// Top-of-stack address (highest address, exclusive).
    pub fn top(&self) -> VirtAddr {
        VirtAddr::new(self.top)
    }

    /// The full reserved stack range `[top - limit, top)` — this is
    /// what the OS programs into the Prosper stack-range MSRs.
    pub fn reserved_range(&self) -> VirtRange {
        VirtRange::new(
            VirtAddr::new(self.top - self.limit),
            VirtAddr::new(self.top),
        )
    }

    /// The currently active region `[sp, top)`.
    pub fn active_range(&self) -> VirtRange {
        VirtRange::new(self.sp(), self.top())
    }

    /// Lowest SP observed since the last [`Self::reset_watermark`] —
    /// the maximum active stack region of the current interval.
    pub fn min_sp_watermark(&self) -> VirtAddr {
        VirtAddr::new(self.min_sp_watermark)
    }

    /// Resets the watermark to the current SP (called by the OS at the
    /// start of each tracking interval).
    pub fn reset_watermark(&mut self) {
        self.min_sp_watermark = self.sp;
    }

    /// Current call depth in frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Bytes of stack currently in use.
    pub fn used_bytes(&self) -> u64 {
        self.top - self.sp
    }

    fn access(&self, kind: AccessKind, vaddr: u64, size: u32) -> MemAccess {
        MemAccess {
            tid: self.tid,
            kind,
            vaddr: VirtAddr::new(vaddr),
            size,
            region: Region::Stack,
            sp: VirtAddr::new(self.sp),
        }
    }

    /// Pushes a frame of `frame_bytes` (8-byte aligned internally) and
    /// emits the activation-record writes: the return address plus
    /// `saved_words` 8-byte saves at the top of the new frame.
    ///
    /// Returns the emitted events.
    ///
    /// # Panics
    ///
    /// Panics if the push would exceed the stack limit.
    pub fn push_frame(&mut self, frame_bytes: u64, saved_words: u32) -> Vec<TraceEvent> {
        let frame_bytes = frame_bytes.max(16).next_multiple_of(8);
        let prev_sp = self.sp;
        let new_sp = self
            .sp
            .checked_sub(frame_bytes)
            .expect("stack pointer underflow");
        assert!(
            self.top - new_sp <= self.limit,
            "stack overflow: frame of {frame_bytes} bytes exceeds limit {}",
            self.limit
        );
        self.sp = new_sp;
        self.min_sp_watermark = self.min_sp_watermark.min(new_sp);
        self.frames.push(Frame {
            sp: new_sp,
            prev_sp,
        });

        let mut ev = Vec::with_capacity(saved_words as usize + 1);
        // `call` pushes the return address at the top of the frame.
        ev.push(TraceEvent::Access(self.access(
            AccessKind::Store,
            prev_sp - 8,
            8,
        )));
        // Prologue saves registers / spills below it.
        for w in 0..u64::from(saved_words) {
            let addr = prev_sp - 16 - w * 8;
            if addr >= new_sp {
                ev.push(TraceEvent::Access(self.access(AccessKind::Store, addr, 8)));
            }
        }
        ev
    }

    /// Pops the top frame, emitting the return-address load (`ret`).
    ///
    /// # Panics
    ///
    /// Panics if no frame is pushed.
    pub fn pop_frame(&mut self) -> Vec<TraceEvent> {
        let frame = self.frames.pop().expect("pop on empty stack");
        debug_assert_eq!(frame.sp, self.sp);
        let ret_load = self.access(AccessKind::Load, frame.prev_sp - 8, 8);
        self.sp = frame.prev_sp;
        vec![TraceEvent::Access(ret_load)]
    }

    /// Emits a write of `size` bytes at `offset` bytes into the current
    /// frame (offset 0 = lowest frame address, i.e. at SP).
    ///
    /// # Panics
    ///
    /// Panics if no frame is pushed or the write leaves the frame.
    pub fn write_local(&mut self, offset: u64, size: u32) -> TraceEvent {
        let frame = *self.frames.last().expect("no active frame");
        let addr = frame.sp + offset;
        assert!(
            addr + u64::from(size) <= frame.prev_sp,
            "local write escapes the frame"
        );
        TraceEvent::Access(self.access(AccessKind::Store, addr, size))
    }

    /// Emits a read of `size` bytes at `offset` bytes into the current
    /// frame.
    ///
    /// # Panics
    ///
    /// Panics if no frame is pushed or the read leaves the frame.
    pub fn read_local(&mut self, offset: u64, size: u32) -> TraceEvent {
        let frame = *self.frames.last().expect("no active frame");
        let addr = frame.sp + offset;
        assert!(
            addr + u64::from(size) <= frame.prev_sp,
            "local read escapes the frame"
        );
        TraceEvent::Access(self.access(AccessKind::Load, addr, size))
    }

    /// Size in bytes of the current frame.
    ///
    /// # Panics
    ///
    /// Panics if no frame is pushed.
    pub fn frame_bytes(&self) -> u64 {
        let frame = self.frames.last().expect("no active frame");
        frame.prev_sp - frame.sp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_moves_sp_down_and_pop_restores() {
        let mut s = StackModel::new(0);
        let top = s.sp();
        s.push_frame(64, 2);
        assert_eq!(s.sp(), top - 64u64);
        assert_eq!(s.depth(), 1);
        assert_eq!(s.used_bytes(), 64);
        s.pop_frame();
        assert_eq!(s.sp(), top);
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn push_emits_activation_record_writes() {
        let mut s = StackModel::new(7);
        let ev = s.push_frame(64, 3);
        assert_eq!(ev.len(), 4, "return address + 3 saves");
        for e in &ev {
            let a = e.as_access().unwrap();
            assert!(a.is_stack_store());
            assert_eq!(a.tid, 7);
            assert!(a.vaddr >= s.sp());
        }
    }

    #[test]
    fn pop_emits_return_load() {
        let mut s = StackModel::new(0);
        s.push_frame(64, 0);
        let ev = s.pop_frame();
        assert_eq!(ev.len(), 1);
        let a = ev[0].as_access().unwrap();
        assert_eq!(a.kind, AccessKind::Load);
        assert_eq!(a.region, Region::Stack);
    }

    #[test]
    fn watermark_tracks_deepest_sp() {
        let mut s = StackModel::new(0);
        let top = s.top();
        s.push_frame(128, 0);
        s.push_frame(128, 0);
        s.pop_frame();
        s.pop_frame();
        assert_eq!(s.min_sp_watermark(), top - 256u64);
        assert_eq!(s.sp(), top);
        s.reset_watermark();
        assert_eq!(s.min_sp_watermark(), top);
    }

    #[test]
    fn local_accesses_stay_in_frame() {
        let mut s = StackModel::new(0);
        s.push_frame(256, 0);
        let w = s.write_local(0, 8);
        let a = w.as_access().unwrap();
        assert_eq!(a.vaddr, s.sp());
        let r = s.read_local(128, 8);
        assert_eq!(r.as_access().unwrap().kind, AccessKind::Load);
        assert_eq!(s.frame_bytes(), 256);
    }

    #[test]
    #[should_panic(expected = "escapes the frame")]
    fn local_write_out_of_frame_panics() {
        let mut s = StackModel::new(0);
        s.push_frame(64, 0);
        s.write_local(64, 8);
    }

    #[test]
    #[should_panic(expected = "pop on empty stack")]
    fn pop_empty_panics() {
        StackModel::new(0).pop_frame();
    }

    #[test]
    #[should_panic(expected = "stack overflow")]
    fn overflow_detected() {
        let mut s = StackModel::with_layout(0, VirtAddr::new(0x1_0000), 4096);
        s.push_frame(8192, 0);
    }

    #[test]
    fn reserved_and_active_ranges() {
        let mut s = StackModel::with_layout(0, VirtAddr::new(0x10_0000), 0x1000);
        assert_eq!(s.reserved_range().len(), 0x1000);
        assert!(s.active_range().is_empty());
        s.push_frame(64, 0);
        assert_eq!(s.active_range().len(), 64);
        assert!(s.active_range().contains(s.sp()));
    }

    #[test]
    fn frame_alignment_rounds_up() {
        let mut s = StackModel::new(0);
        s.push_frame(9, 0);
        assert_eq!(s.frame_bytes(), 16);
        s.pop_frame();
        s.push_frame(17, 0);
        assert_eq!(s.frame_bytes(), 24);
    }
}
