//! The Table III micro-benchmarks.
//!
//! | Category | Name | Description (from the paper) |
//! |---|---|---|
//! | Access pattern | `Random` | Write to random elements of an array allocated in the stack |
//! | Access pattern | `Stream` | Write to all elements of an array allocated on stack sequentially |
//! | Access pattern | `Sparse` | Write to 4 KiB-spaced elements of stack memory across recursive invocations |
//! | Function invocation | `Quicksort` | Sort elements of an array allocated in the heap |
//! | Function invocation | `Recursive` | Recursive function invocation with parameterised call depth |
//! | Access intensity | `Normal` | Normally distributed stack writes between computation operations |
//! | Access intensity | `Poisson` | Poisson distributed stack writes between computation operations |
//!
//! `Sparse`, `Random`, and `Stream` explore the best, average, and worst
//! case for Prosper respectively; `Normal` uses µ=63, σ=20 and `Poisson`
//! uses λ=63, with a compute block of one thousand register increments
//! between write bursts, exactly as Section IV-A specifies.
//!
//! Every micro-benchmark is an infinite, deterministic (seeded) stream
//! of [`TraceEvent`]s produced through a real [`StackModel`], so SP
//! movement and activation records are faithful.

use std::collections::VecDeque;

use prosper_memsim::addr::VirtAddr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal, Poisson};

use crate::record::{AccessKind, MemAccess, Region, TraceEvent};
use crate::source::TraceSource;
use crate::stack::StackModel;

/// Cycles consumed by the compute block between write bursts in the
/// access-intensity micro-benchmarks (one thousand register
/// increments).
pub const COMPUTE_BLOCK_CYCLES: u64 = 1000;

/// Identifier for a Table III micro-benchmark, including parameters.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum MicroSpec {
    /// Random writes into a stack array of the given size.
    Random {
        /// Stack array size in bytes.
        array_bytes: u64,
    },
    /// Sequential writes over the whole stack array.
    Stream {
        /// Stack array size in bytes.
        array_bytes: u64,
    },
    /// 4-byte writes, one per 4 KiB page, across recursive invocations.
    Sparse {
        /// Number of 4 KiB frames (pages) touched per recursion sweep.
        pages: u32,
    },
    /// Quicksort over a heap array (stack carries the recursion).
    Quicksort {
        /// Number of 8-byte elements sorted.
        elements: u32,
    },
    /// Repeated recursion to a parameterised depth.
    Recursive {
        /// Call depth per sweep.
        depth: u32,
    },
    /// Normally distributed write-burst lengths (µ=63, σ=20).
    Normal {
        /// Stack array size in bytes the bursts write into.
        array_bytes: u64,
    },
    /// Poisson distributed write-burst lengths (λ=63).
    Poisson {
        /// Stack array size in bytes the bursts write into.
        array_bytes: u64,
    },
}

impl MicroSpec {
    /// The paper's display name for the micro-benchmark.
    pub fn name(&self) -> &'static str {
        match self {
            MicroSpec::Random { .. } => "Random",
            MicroSpec::Stream { .. } => "Stream",
            MicroSpec::Sparse { .. } => "Sparse",
            MicroSpec::Quicksort { .. } => "Quicksort",
            MicroSpec::Recursive { .. } => "Recursive",
            MicroSpec::Normal { .. } => "Normal",
            MicroSpec::Poisson { .. } => "Poisson",
        }
    }

    /// Default parameterisation used by the figures (64 KiB arrays,
    /// 32-page sparse sweeps, 4096-element quicksort, depth-8
    /// recursion).
    pub fn all_default() -> Vec<MicroSpec> {
        vec![
            MicroSpec::Random {
                array_bytes: 64 * 1024,
            },
            MicroSpec::Stream {
                array_bytes: 64 * 1024,
            },
            MicroSpec::Sparse { pages: 32 },
            MicroSpec::Quicksort { elements: 4096 },
            MicroSpec::Recursive { depth: 8 },
            MicroSpec::Normal {
                array_bytes: 64 * 1024,
            },
            MicroSpec::Poisson {
                array_bytes: 64 * 1024,
            },
        ]
    }
}

/// A running micro-benchmark emitting an infinite trace.
#[derive(Debug)]
pub struct MicroBench {
    spec: MicroSpec,
    stack: StackModel,
    rng: StdRng,
    queue: VecDeque<TraceEvent>,
    /// Streaming cursor (Stream/Normal/Poisson).
    cursor: u64,
    /// Heap base used by Quicksort.
    heap_base: u64,
}

/// Heap segment base address used by micro-benchmarks that touch the
/// heap (Quicksort's element array).
const HEAP_BASE: u64 = 0x5555_0000_0000;

impl MicroBench {
    /// Instantiates a micro-benchmark with a deterministic seed.
    pub fn new(spec: MicroSpec, seed: u64) -> Self {
        let mut bench = Self {
            spec,
            stack: StackModel::new(0),
            rng: StdRng::seed_from_u64(seed),
            queue: VecDeque::new(),
            cursor: 0,
            heap_base: HEAP_BASE,
        };
        bench.setup();
        bench
    }

    /// The benchmark's specification.
    pub fn spec(&self) -> MicroSpec {
        self.spec
    }

    fn setup(&mut self) {
        match self.spec {
            MicroSpec::Random { array_bytes }
            | MicroSpec::Stream { array_bytes }
            | MicroSpec::Normal { array_bytes }
            | MicroSpec::Poisson { array_bytes } => {
                // main() owns the array for the whole run.
                let ev = self.stack.push_frame(array_bytes + 64, 2);
                self.queue.extend(ev);
            }
            MicroSpec::Sparse { .. } | MicroSpec::Recursive { .. } => {
                let ev = self.stack.push_frame(64, 2);
                self.queue.extend(ev);
            }
            MicroSpec::Quicksort { .. } => {
                let ev = self.stack.push_frame(64, 2);
                self.queue.extend(ev);
            }
        }
    }

    fn heap_access(&self, kind: AccessKind, offset: u64, size: u32) -> TraceEvent {
        TraceEvent::Access(MemAccess {
            tid: self.stack.tid(),
            kind,
            vaddr: VirtAddr::new(self.heap_base + offset),
            size,
            region: Region::Heap,
            sp: self.stack.sp(),
        })
    }

    /// Refills the queue with the next phase of the benchmark.
    fn refill(&mut self) {
        match self.spec {
            MicroSpec::Random { array_bytes } => {
                // A burst of writes to random 8-byte elements, then a
                // short compute gap.
                for _ in 0..64 {
                    let slot = self.rng.gen_range(0..array_bytes / 8);
                    self.queue.push_back(self.stack.write_local(slot * 8, 8));
                }
                self.queue.push_back(TraceEvent::Compute(64));
            }
            MicroSpec::Stream { array_bytes } => {
                let slots = array_bytes / 8;
                for _ in 0..64 {
                    let slot = self.cursor % slots;
                    self.cursor += 1;
                    self.queue.push_back(self.stack.write_local(slot * 8, 8));
                }
                self.queue.push_back(TraceEvent::Compute(64));
            }
            MicroSpec::Sparse { pages } => {
                // Recursive descent: each call consumes a 4 KiB frame
                // and dirties 4 bytes of it, then everything returns.
                for _ in 0..pages {
                    let ev = self.stack.push_frame(4096 - 32, 1);
                    self.queue.extend(ev);
                    self.queue.push_back(self.stack.write_local(8, 4));
                    self.queue.push_back(TraceEvent::Compute(32));
                }
                for _ in 0..pages {
                    let ev = self.stack.pop_frame();
                    self.queue.extend(ev);
                }
                self.queue.push_back(TraceEvent::Compute(256));
            }
            MicroSpec::Quicksort { elements } => {
                self.refill_quicksort(elements);
            }
            MicroSpec::Recursive { depth } => {
                // The recursive function's frame size depends on its
                // argument (a stack-allocated scratch array), so
                // consecutive sweeps shift the frame addresses and do
                // not coalesce across a long interval — the behaviour
                // behind Figure 11's "Recursive checkpoint size grows
                // with the interval" observation.
                let wobble = 8 * (self.cursor % 24);
                self.cursor += 1;
                for _ in 0..depth {
                    let ev = self.stack.push_frame(96 + wobble, 3);
                    self.queue.extend(ev);
                    self.queue.push_back(self.stack.write_local(16, 8));
                    self.queue.push_back(self.stack.write_local(24, 8));
                    self.queue.push_back(TraceEvent::Compute(48));
                }
                for _ in 0..depth {
                    let ev = self.stack.pop_frame();
                    self.queue.extend(ev);
                }
                // Compute lull between sweeps: result processing. Its
                // length varies, so short (1 ms-scale) intervals
                // sometimes contain no stack modification at all and
                // pay only the fixed checkpoint costs (the paper's
                // per-byte-time argument against tiny intervals).
                let lull = 2_000 + (self.cursor % 7) * 2_500;
                self.queue.push_back(TraceEvent::Compute(lull));
            }
            MicroSpec::Normal { array_bytes } => {
                let dist = Normal::new(63.0f64, 20.0).expect("valid normal parameters");
                let n = dist.sample(&mut self.rng).round().max(0.0) as u64;
                self.burst_writes(n, array_bytes);
                self.queue
                    .push_back(TraceEvent::Compute(COMPUTE_BLOCK_CYCLES));
            }
            MicroSpec::Poisson { array_bytes } => {
                let dist = Poisson::new(63.0).expect("valid poisson parameter");
                let n = dist.sample(&mut self.rng) as u64;
                self.burst_writes(n, array_bytes);
                self.queue
                    .push_back(TraceEvent::Compute(COMPUTE_BLOCK_CYCLES));
            }
        }
    }

    fn burst_writes(&mut self, n: u64, array_bytes: u64) {
        let slots = array_bytes / 8;
        for _ in 0..n {
            let slot = self.cursor % slots;
            self.cursor += 1;
            self.queue.push_back(self.stack.write_local(slot * 8, 8));
        }
    }

    /// One full quicksort over the heap array, emitting its recursion
    /// as real frame pushes/pops and its partition phase as heap
    /// traffic. The recursion structure is the real quicksort recursion
    /// tree on a freshly shuffled array.
    fn refill_quicksort(&mut self, elements: u32) {
        // Build a shuffled array of indices to obtain a realistic
        // recursion tree (we sort the values, tracking comparisons).
        let n = elements as usize;
        let mut vals: Vec<u32> = (0..elements).collect();
        // Fisher-Yates with our seeded RNG.
        for i in (1..n).rev() {
            let j = self.rng.gen_range(0..=i);
            vals.swap(i, j);
        }
        // Iterative quicksort mirroring the recursive call structure:
        // each "call" pushes a stack frame; partition emits heap
        // accesses.
        enum Op {
            Call(usize, usize),
            Ret,
        }
        let mut ops = vec![Op::Call(0, n)];
        while let Some(op) = ops.pop() {
            match op {
                Op::Call(lo, hi) => {
                    let ev = self.stack.push_frame(64, 2);
                    self.queue.extend(ev);
                    if hi - lo <= 1 {
                        ops.push(Op::Ret);
                        continue;
                    }
                    // Lomuto partition on vals[lo..hi].
                    let pivot = vals[hi - 1];
                    self.queue.push_back(self.heap_access(
                        AccessKind::Load,
                        (hi as u64 - 1) * 8,
                        8,
                    ));
                    let mut i = lo;
                    for j in lo..hi - 1 {
                        self.queue
                            .push_back(self.heap_access(AccessKind::Load, j as u64 * 8, 8));
                        if vals[j] <= pivot {
                            vals.swap(i, j);
                            self.queue.push_back(self.heap_access(
                                AccessKind::Store,
                                i as u64 * 8,
                                8,
                            ));
                            self.queue.push_back(self.heap_access(
                                AccessKind::Store,
                                j as u64 * 8,
                                8,
                            ));
                            i += 1;
                        }
                    }
                    vals.swap(i, hi - 1);
                    self.queue
                        .push_back(self.heap_access(AccessKind::Store, i as u64 * 8, 8));
                    // Local loop variables live in the frame.
                    self.queue.push_back(self.stack.write_local(16, 8));
                    self.queue.push_back(self.stack.write_local(24, 8));
                    // Recurse: push Ret first so calls run before it.
                    ops.push(Op::Ret);
                    ops.push(Op::Call(i + 1, hi));
                    ops.push(Op::Call(lo, i));
                }
                Op::Ret => {
                    let ev = self.stack.pop_frame();
                    self.queue.extend(ev);
                }
            }
        }
        debug_assert!(vals.windows(2).all(|w| w[0] <= w[1]), "quicksort sorted");
        self.queue.push_back(TraceEvent::Compute(512));
    }
}

impl TraceSource for MicroBench {
    fn next_event(&mut self) -> TraceEvent {
        loop {
            if let Some(ev) = self.queue.pop_front() {
                return ev;
            }
            self.refill();
        }
    }

    fn name(&self) -> &'static str {
        self.spec.name()
    }

    fn stack(&self) -> &StackModel {
        &self.stack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Region;

    fn collect(spec: MicroSpec, n: usize) -> Vec<TraceEvent> {
        let mut b = MicroBench::new(spec, 1);
        (0..n).map(|_| b.next_event()).collect()
    }

    fn stack_stores(events: &[TraceEvent]) -> Vec<&MemAccess> {
        events
            .iter()
            .filter_map(|e| e.as_access())
            .filter(|a| a.is_stack_store())
            .collect()
    }

    #[test]
    fn random_writes_spread_over_array() {
        let ev = collect(MicroSpec::Random { array_bytes: 4096 }, 2000);
        let stores = stack_stores(&ev);
        assert!(stores.len() > 1000);
        let distinct: std::collections::HashSet<u64> =
            stores.iter().map(|a| a.vaddr.raw()).collect();
        assert!(distinct.len() > 100, "random spreads across slots");
    }

    #[test]
    fn stream_writes_are_sequential() {
        let ev = collect(MicroSpec::Stream { array_bytes: 4096 }, 200);
        let stores = stack_stores(&ev);
        // After the setup frame, consecutive stream writes advance by 8.
        let tail = &stores[stores.len() - 10..];
        for pair in tail.windows(2) {
            let delta = pair[1].vaddr.raw() as i64 - pair[0].vaddr.raw() as i64;
            assert!(delta == 8 || delta < 0, "sequential or wrapped: {delta}");
        }
    }

    #[test]
    fn sparse_touches_one_word_per_page() {
        let ev = collect(MicroSpec::Sparse { pages: 8 }, 400);
        let stores = stack_stores(&ev);
        let four_byte: Vec<_> = stores.iter().filter(|a| a.size == 4).collect();
        assert!(!four_byte.is_empty());
        // The 4-byte writes land on distinct 4 KiB pages.
        let pages: std::collections::HashSet<u64> =
            four_byte.iter().map(|a| a.vaddr.page_number()).collect();
        assert!(
            pages.len() >= 4,
            "writes hit distinct pages: {}",
            pages.len()
        );
    }

    #[test]
    fn quicksort_emits_heap_traffic_and_recursion() {
        let ev = collect(MicroSpec::Quicksort { elements: 64 }, 3000);
        let heap = ev
            .iter()
            .filter_map(|e| e.as_access())
            .filter(|a| a.region == Region::Heap)
            .count();
        assert!(heap > 100, "partition generates heap traffic");
        assert!(!stack_stores(&ev).is_empty(), "recursion writes the stack");
    }

    #[test]
    fn recursive_reaches_configured_depth() {
        let mut b = MicroBench::new(MicroSpec::Recursive { depth: 16 }, 3);
        let top = b.stack().top().raw();
        let mut deepest = 0;
        for _ in 0..2000 {
            if let Some(a) = b.next_event().as_access() {
                deepest = deepest.max(top - a.sp.raw());
            }
        }
        // 16 frames of 96 B (+ base frame 64 B).
        assert!(deepest >= 16 * 96, "deepest stack use {deepest}");
    }

    #[test]
    fn normal_and_poisson_have_compute_blocks() {
        for spec in [
            MicroSpec::Normal { array_bytes: 4096 },
            MicroSpec::Poisson { array_bytes: 4096 },
        ] {
            let ev = collect(spec, 3000);
            let blocks = ev
                .iter()
                .filter(|e| matches!(e, TraceEvent::Compute(c) if *c == COMPUTE_BLOCK_CYCLES))
                .count();
            assert!(blocks > 5, "{:?} produced {blocks} compute blocks", spec);
            let stores = stack_stores(&ev).len();
            // Mean burst is 63 writes per compute block.
            let per_block = stores as f64 / blocks as f64;
            assert!(
                (30.0..110.0).contains(&per_block),
                "{:?}: {per_block} writes/block",
                spec
            );
        }
    }

    #[test]
    fn determinism_across_same_seed() {
        let a = collect(MicroSpec::Random { array_bytes: 4096 }, 500);
        let b = collect(MicroSpec::Random { array_bytes: 4096 }, 500);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = collect(MicroSpec::Random { array_bytes: 4096 }, 500);
        let mut bench = MicroBench::new(MicroSpec::Random { array_bytes: 4096 }, 99);
        let b: Vec<TraceEvent> = (0..500).map(|_| bench.next_event()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn all_default_covers_table_iii() {
        let names: Vec<&str> = MicroSpec::all_default().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "Random",
                "Stream",
                "Sparse",
                "Quicksort",
                "Recursive",
                "Normal",
                "Poisson"
            ]
        );
    }
}
