//! SniP-style trace analysis helpers.
//!
//! The paper's motivation section post-processes Pin/SniP stack traces
//! to derive: the stack share of memory operations (Fig. 1), writes
//! beyond the interval-final SP (Fig. 2), and checkpoint copy sizes at
//! different tracking granularities (Fig. 4). This module packages
//! those analyses over any [`TraceSource`], so the figure harnesses
//! and tests share one implementation.

use prosper_memsim::Cycles;
use serde::{Deserialize, Serialize};

use crate::interval::IntervalCollector;
use crate::record::{AccessKind, Region, TraceEvent};
use crate::source::TraceSource;

/// Aggregate memory-operation mix of a trace window.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct OperationMix {
    /// Loads from the stack.
    pub stack_loads: u64,
    /// Stores to the stack.
    pub stack_stores: u64,
    /// Loads from the heap.
    pub heap_loads: u64,
    /// Stores to the heap.
    pub heap_stores: u64,
    /// Everything else.
    pub other: u64,
}

impl OperationMix {
    /// Total memory operations.
    pub fn total(&self) -> u64 {
        self.stack_loads + self.stack_stores + self.heap_loads + self.heap_stores + self.other
    }

    /// Fraction of operations hitting the stack (Fig. 1's y-axis).
    pub fn stack_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.stack_loads + self.stack_stores) as f64 / t as f64
        }
    }

    /// Fraction of stack operations that are stores.
    pub fn stack_write_share(&self) -> f64 {
        let s = self.stack_loads + self.stack_stores;
        if s == 0 {
            0.0
        } else {
            self.stack_stores as f64 / s as f64
        }
    }
}

/// Computes the operation mix over `ops` memory operations of a
/// source.
pub fn operation_mix<S: TraceSource>(source: &mut S, ops: u64) -> OperationMix {
    let mut mix = OperationMix::default();
    let mut seen = 0;
    while seen < ops {
        if let TraceEvent::Access(a) = source.next_event() {
            seen += 1;
            match (a.region, a.kind) {
                (Region::Stack, AccessKind::Load) => mix.stack_loads += 1,
                (Region::Stack, AccessKind::Store) => mix.stack_stores += 1,
                (Region::Heap, AccessKind::Load) => mix.heap_loads += 1,
                (Region::Heap, AccessKind::Store) => mix.heap_stores += 1,
                (Region::Other, _) => mix.other += 1,
            }
        }
    }
    mix
}

/// Per-interval copy-size comparison across tracking granularities
/// (the Fig. 4 analysis generalised to any granularity list).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CopySizeProfile {
    /// The granularities analysed, in the order given.
    pub granularities: Vec<u64>,
    /// Mean per-interval copy bytes for each granularity.
    pub mean_bytes: Vec<f64>,
    /// Intervals analysed.
    pub intervals: u64,
}

impl CopySizeProfile {
    /// Reduction factor of granularity `fine` relative to `coarse`
    /// (both must be in the profile).
    ///
    /// # Panics
    ///
    /// Panics if either granularity was not analysed.
    pub fn reduction(&self, coarse: u64, fine: u64) -> f64 {
        let idx = |g: u64| {
            self.granularities
                .iter()
                .position(|&x| x == g)
                .unwrap_or_else(|| panic!("granularity {g} not analysed"))
        };
        self.mean_bytes[idx(coarse)] / self.mean_bytes[idx(fine)].max(1.0)
    }
}

/// Runs the copy-size analysis over `intervals` intervals.
pub fn copy_size_profile<S: TraceSource>(
    source: S,
    granularities: &[u64],
    interval_budget: Cycles,
    intervals: u64,
) -> CopySizeProfile {
    let mut collector = IntervalCollector::new(source, interval_budget);
    let mut sums = vec![0u64; granularities.len()];
    for _ in 0..intervals {
        let iv = collector.next_interval();
        for (i, &g) in granularities.iter().enumerate() {
            sums[i] += iv.checkpoint_bytes(g);
        }
    }
    CopySizeProfile {
        granularities: granularities.to_vec(),
        mean_bytes: sums
            .into_iter()
            .map(|s| s as f64 / intervals.max(1) as f64)
            .collect(),
        intervals,
    }
}

/// SP-trajectory statistics over a trace window: how deep the stack
/// grows and how often it moves (the grow/shrink usage pattern of
/// Section I).
#[derive(Clone, Copy, Default, Debug, Serialize, Deserialize)]
pub struct SpTrajectory {
    /// Deepest stack use observed in bytes (top − min SP).
    pub max_depth_bytes: u64,
    /// Number of SP changes observed between consecutive accesses.
    pub sp_moves: u64,
    /// Accesses sampled.
    pub samples: u64,
}

/// Computes SP-trajectory statistics over `ops` memory operations.
pub fn sp_trajectory<S: TraceSource>(source: &mut S, ops: u64) -> SpTrajectory {
    let top = source.stack().top();
    let mut t = SpTrajectory::default();
    let mut last_sp = None;
    let mut seen = 0;
    while seen < ops {
        if let TraceEvent::Access(a) = source.next_event() {
            seen += 1;
            t.samples += 1;
            t.max_depth_bytes = t.max_depth_bytes.max(top - a.sp);
            if let Some(prev) = last_sp {
                if prev != a.sp {
                    t.sp_moves += 1;
                }
            }
            last_sp = Some(a.sp);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::{MicroBench, MicroSpec};
    use crate::workloads::{Workload, WorkloadProfile};

    #[test]
    fn mix_partitions_everything() {
        let mut w = Workload::new(WorkloadProfile::gapbs_pr(), 1);
        let mix = operation_mix(&mut w, 10_000);
        assert_eq!(mix.total(), 10_000);
        assert!(mix.stack_fraction() > 0.5);
        assert!(mix.stack_write_share() > 0.3);
    }

    #[test]
    fn empty_mix_is_zero() {
        let m = OperationMix::default();
        assert_eq!(m.total(), 0);
        assert_eq!(m.stack_fraction(), 0.0);
        assert_eq!(m.stack_write_share(), 0.0);
    }

    #[test]
    fn copy_profile_monotone() {
        let b = MicroBench::new(MicroSpec::Sparse { pages: 12 }, 2);
        let p = copy_size_profile(b, &[8, 64, 4096], 20_000, 4);
        assert_eq!(p.intervals, 4);
        assert!(p.mean_bytes[0] <= p.mean_bytes[1]);
        assert!(p.mean_bytes[1] <= p.mean_bytes[2]);
        assert!(p.reduction(4096, 8) > 1.0);
    }

    #[test]
    #[should_panic(expected = "not analysed")]
    fn unknown_granularity_panics() {
        let b = MicroBench::new(MicroSpec::Recursive { depth: 2 }, 2);
        let p = copy_size_profile(b, &[8], 5_000, 1);
        p.reduction(4096, 8);
    }

    #[test]
    fn trajectory_sees_recursion_depth() {
        let mut b = MicroBench::new(MicroSpec::Recursive { depth: 12 }, 2);
        let t = sp_trajectory(&mut b, 5_000);
        assert!(t.max_depth_bytes >= 12 * 96, "depth {}", t.max_depth_bytes);
        assert!(t.sp_moves > 0);
        assert_eq!(t.samples, 5_000);
    }

    #[test]
    fn ycsb_moves_sp_more_than_stream() {
        let mut y = Workload::new(WorkloadProfile::ycsb_mem(), 4);
        let mut s = MicroBench::new(
            MicroSpec::Stream {
                array_bytes: 32 * 1024,
            },
            4,
        );
        let ty = sp_trajectory(&mut y, 20_000);
        let ts = sp_trajectory(&mut s, 20_000);
        assert!(ty.sp_moves > ts.sp_moves);
    }
}
