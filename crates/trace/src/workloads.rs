//! Synthetic stand-ins for the paper's application benchmarks.
//!
//! The paper traces real applications (GAPBS PageRank, Graph500 SSSP,
//! Memcached under YCSB, and four SPEC CPU 2017 benchmarks) with
//! Pin/SniP. Those traces are not available, so each benchmark is
//! replaced by a parameterised random walk over call/return, stack
//! write-burst, heap access, and compute actions, executed on a real
//! [`StackModel`]. Profiles are tuned to the stack characteristics the
//! paper reports:
//!
//! * **Fig. 1** — fraction of memory operations hitting the stack:
//!   Gapbs_pr ≈ 70 %, G500_sssp ≈ 45 %, Ycsb_mem ≈ 15 %.
//! * **Fig. 2** — Ycsb_mem performs > 36 % of its stack writes beyond
//!   the interval-final SP (high call/return churn).
//! * **Fig. 13** — SSSP's stack writes are spatially local (bitmap
//!   words fill up), while mcf's are scattered (words accumulate few
//!   bits), reversing the HWM trend.

use prosper_memsim::addr::VirtAddr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use crate::record::{AccessKind, MemAccess, Region, TraceEvent};
use crate::source::TraceSource;
use crate::stack::StackModel;

/// Heap segment base for workload heap traffic.
const HEAP_BASE: u64 = 0x5555_0000_0000;

/// Tunable profile for a synthetic workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Display name (matches the paper's figures).
    pub name: &'static str,
    /// Probability that a memory action targets the stack (Fig. 1).
    pub stack_fraction: f64,
    /// Probability that a stack access is a store (stacks are
    /// write-intensive; activation records are written on call).
    pub stack_write_fraction: f64,
    /// Probability that a heap access is a store.
    pub heap_write_fraction: f64,
    /// Per-step probability of a function call (frame push).
    pub call_rate: f64,
    /// Per-step probability of a return (frame pop), applied when the
    /// call depth exceeds `min_depth`.
    pub return_rate: f64,
    /// Typical frame size in bytes (uniform in `[frame_bytes/2,
    /// frame_bytes*3/2]`).
    pub frame_bytes: u64,
    /// Call depth the workload idles around.
    pub min_depth: usize,
    /// Maximum call depth.
    pub max_depth: usize,
    /// Spatial locality of stack writes in `[0, 1]`: with this
    /// probability a stack write continues sequentially after the
    /// previous one; otherwise it picks a scattered target in the
    /// active region. High values fill dirty-bitmap words densely
    /// (SSSP-like); low values scatter single bits (mcf-like).
    pub stack_locality: f64,
    /// Size in bytes of the hot window just above SP that sequential
    /// writes cycle through (activation-record locality). Real stacks
    /// rewrite a small cluster of near-SP addresses heavily while the
    /// SP excursion touches many pages lightly — this is what gives
    /// page-granularity tracking its large copy-size amplification
    /// (Fig. 4).
    pub seq_span: u64,
    /// Scatter shape for non-sequential stack writes: `0` means
    /// uniform over the whole active region (mcf-like, low bits per
    /// bitmap word); a positive value confines each scattered write to
    /// the first `scatter_span` bytes above a random frame boundary
    /// (callee-save/spill area of a frame in the call chain).
    pub scatter_span: u64,
    /// Number of accesses per burst between compute gaps.
    pub burst_len: u32,
    /// Heap working-set size in bytes.
    pub heap_bytes: u64,
    /// Fraction of heap accesses that hit a small hot set.
    pub heap_hot_fraction: f64,
    /// Compute cycles between bursts (memory intensity knob).
    pub compute_gap: u64,
}

impl WorkloadProfile {
    /// GAPBS PageRank stand-in: ~70 % stack operations, spatially
    /// local stack writes, moderate call churn.
    pub fn gapbs_pr() -> Self {
        Self {
            name: "Gapbs_pr",
            stack_fraction: 0.70,
            stack_write_fraction: 0.55,
            heap_write_fraction: 0.35,
            call_rate: 0.04,
            return_rate: 0.04,
            frame_bytes: 1536,
            min_depth: 4,
            max_depth: 24,
            stack_locality: 0.85,
            seq_span: 192,
            scatter_span: 64,
            burst_len: 48,
            heap_bytes: 64 * 1024 * 1024,
            heap_hot_fraction: 0.6,
            compute_gap: 40,
        }
    }

    /// Graph500 SSSP stand-in: ~45 % stack operations with strong
    /// spatial locality (Fig. 13: loads/stores fall as HWM rises).
    pub fn g500_sssp() -> Self {
        Self {
            name: "G500_sssp",
            stack_fraction: 0.45,
            stack_write_fraction: 0.55,
            heap_write_fraction: 0.40,
            call_rate: 0.05,
            return_rate: 0.05,
            frame_bytes: 1024,
            min_depth: 3,
            max_depth: 20,
            stack_locality: 0.93,
            seq_span: 448,
            scatter_span: 64,
            burst_len: 40,
            heap_bytes: 128 * 1024 * 1024,
            heap_hot_fraction: 0.4,
            compute_gap: 60,
        }
    }

    /// Memcached-under-YCSB stand-in: ~15 % stack operations but very
    /// high call/return churn, so a large share of stack writes land
    /// beyond the interval-final SP (Fig. 2: > 36 %).
    pub fn ycsb_mem() -> Self {
        Self {
            name: "Ycsb_mem",
            stack_fraction: 0.10,
            stack_write_fraction: 0.60,
            heap_write_fraction: 0.45,
            call_rate: 0.02,
            return_rate: 0.12,
            frame_bytes: 768,
            min_depth: 2,
            max_depth: 20,
            stack_locality: 0.75,
            seq_span: 224,
            scatter_span: 64,
            burst_len: 24,
            heap_bytes: 256 * 1024 * 1024,
            heap_hot_fraction: 0.3,
            compute_gap: 90,
        }
    }

    /// SPEC CPU 2017 605.mcf_s stand-in: scattered stack writes over a
    /// wide active region (Fig. 13: loads/stores *rise* with HWM).
    pub fn mcf() -> Self {
        Self {
            name: "605.mcf_s",
            stack_fraction: 0.30,
            stack_write_fraction: 0.50,
            heap_write_fraction: 0.40,
            call_rate: 0.02,
            return_rate: 0.03,
            frame_bytes: 2048,
            min_depth: 3,
            max_depth: 12,
            stack_locality: 0.08,
            seq_span: 256,
            scatter_span: 0,
            burst_len: 32,
            heap_bytes: 512 * 1024 * 1024,
            heap_hot_fraction: 0.2,
            compute_gap: 70,
        }
    }

    /// SPEC CPU 2017 620.omnetpp_s stand-in: event-driven simulator,
    /// moderate stack share and churn.
    pub fn omnetpp() -> Self {
        Self {
            name: "620.omnetpp_s",
            stack_fraction: 0.40,
            stack_write_fraction: 0.55,
            heap_write_fraction: 0.45,
            call_rate: 0.10,
            return_rate: 0.10,
            frame_bytes: 512,
            min_depth: 4,
            max_depth: 26,
            stack_locality: 0.70,
            seq_span: 192,
            scatter_span: 64,
            burst_len: 32,
            heap_bytes: 128 * 1024 * 1024,
            heap_hot_fraction: 0.5,
            compute_gap: 55,
        }
    }

    /// SPEC CPU 2017 600.perlbench_s stand-in: interpreter with heavy
    /// call traffic and medium locality.
    pub fn perlbench() -> Self {
        Self {
            name: "600.perlbench_s",
            stack_fraction: 0.50,
            stack_write_fraction: 0.60,
            heap_write_fraction: 0.40,
            call_rate: 0.15,
            return_rate: 0.15,
            frame_bytes: 448,
            min_depth: 5,
            max_depth: 32,
            stack_locality: 0.75,
            seq_span: 192,
            scatter_span: 64,
            burst_len: 36,
            heap_bytes: 64 * 1024 * 1024,
            heap_hot_fraction: 0.55,
            compute_gap: 45,
        }
    }

    /// SPEC CPU 2017 641.leela_s stand-in: MCTS with deep recursion
    /// and good locality.
    pub fn leela() -> Self {
        Self {
            name: "641.leela_s",
            stack_fraction: 0.55,
            stack_write_fraction: 0.55,
            heap_write_fraction: 0.35,
            call_rate: 0.12,
            return_rate: 0.12,
            frame_bytes: 384,
            min_depth: 6,
            max_depth: 40,
            stack_locality: 0.82,
            seq_span: 160,
            scatter_span: 48,
            burst_len: 40,
            heap_bytes: 32 * 1024 * 1024,
            heap_hot_fraction: 0.65,
            compute_gap: 50,
        }
    }

    /// The three motivation/evaluation application workloads
    /// (Figures 1–4, 8, 9).
    pub fn applications() -> Vec<WorkloadProfile> {
        vec![Self::gapbs_pr(), Self::g500_sssp(), Self::ycsb_mem()]
    }

    /// The Figure 12 benchmark set (SPEC + graph workloads).
    pub fn tracking_overhead_set() -> Vec<WorkloadProfile> {
        vec![
            Self::mcf(),
            Self::omnetpp(),
            Self::perlbench(),
            Self::leela(),
            Self::g500_sssp(),
            Self::gapbs_pr(),
        ]
    }
}

/// A running synthetic workload.
///
/// # Examples
///
/// ```
/// use prosper_trace::workloads::{Workload, WorkloadProfile};
/// use prosper_trace::source::TraceSource;
///
/// let mut w = Workload::new(WorkloadProfile::g500_sssp(), 7);
/// let stack_range = w.stack().reserved_range();
/// for _ in 0..100 {
///     if let Some(a) = w.next_event().as_access() {
///         if a.region == prosper_trace::record::Region::Stack {
///             assert!(stack_range.overlaps_access(a.vaddr, a.size as u64));
///         }
///     }
/// }
/// ```
#[derive(Debug)]
pub struct Workload {
    profile: WorkloadProfile,
    stack: StackModel,
    rng: StdRng,
    queue: VecDeque<TraceEvent>,
    /// Sequential-write cursor within the active stack region.
    stack_cursor: u64,
    /// Sequential scan cursor in the heap.
    heap_cursor: u64,
}

impl Workload {
    /// Instantiates the workload with a deterministic seed.
    pub fn new(profile: WorkloadProfile, seed: u64) -> Self {
        Self::with_stack(profile, seed, StackModel::new(0))
    }

    /// Instantiates the workload over a caller-provided stack model
    /// (distinct threads/processes need distinct stack ranges when
    /// they share one tracker multiplexer).
    pub fn with_stack(profile: WorkloadProfile, seed: u64, mut stack: StackModel) -> Self {
        let mut queue = VecDeque::new();
        // Establish the idle call depth.
        for _ in 0..profile.min_depth.max(1) {
            queue.extend(stack.push_frame(profile.frame_bytes, 2));
        }
        let stack_cursor = stack.sp().raw();
        Self {
            profile,
            stack,
            rng: StdRng::seed_from_u64(seed),
            queue,
            stack_cursor,
            heap_cursor: 0,
        }
    }

    /// The profile driving this workload.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    fn stack_access(&mut self) -> TraceEvent {
        let p = &self.profile;
        let active = self.stack.active_range();
        debug_assert!(!active.is_empty(), "idle depth keeps frames pushed");
        let lo = active.start().raw();
        let hi = active.end().raw() - 8;
        let sequential = self.rng.gen_bool(p.stack_locality);
        let addr = if sequential {
            // Activation-record locality: cycle through a small hot
            // window just above SP.
            let span_hi = (lo + p.seq_span.max(16)).min(hi);
            self.stack_cursor += 8;
            if self.stack_cursor < lo || self.stack_cursor > span_hi {
                self.stack_cursor = lo;
            }
            self.stack_cursor
        } else if p.scatter_span == 0 {
            // Uniform scatter over the whole active region (mcf-like).
            lo + self.rng.gen_range(0..=(hi - lo) / 8) * 8
        } else {
            // Frame-top scatter: a random frame in the call chain gets
            // a write within its callee-save/spill area. The frame
            // grid is anchored at the stack top so the same addresses
            // are revisited whatever the current SP.
            let top = active.end().raw();
            let frames = ((top - lo) / p.frame_bytes).max(1);
            let frame_base = top - self.rng.gen_range(1..=frames) * p.frame_bytes;
            let offset = self.rng.gen_range(0..p.scatter_span.max(8) / 8) * 8;
            (frame_base + offset).clamp(lo, hi)
        };
        let kind = if self.rng.gen_bool(p.stack_write_fraction) {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        TraceEvent::Access(MemAccess {
            tid: self.stack.tid(),
            kind,
            vaddr: VirtAddr::new(addr),
            size: 8,
            region: Region::Stack,
            sp: self.stack.sp(),
        })
    }

    fn heap_access(&mut self) -> TraceEvent {
        let p = &self.profile;
        let hot_bytes = (p.heap_bytes as f64 * 0.01).max(4096.0) as u64;
        let addr = if self.rng.gen_bool(p.heap_hot_fraction) {
            HEAP_BASE + self.rng.gen_range(0..hot_bytes / 8) * 8
        } else {
            self.heap_cursor = (self.heap_cursor + 64) % p.heap_bytes;
            HEAP_BASE + self.heap_cursor
        };
        let kind = if self.rng.gen_bool(p.heap_write_fraction) {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        TraceEvent::Access(MemAccess {
            tid: self.stack.tid(),
            kind,
            vaddr: VirtAddr::new(addr),
            size: 8,
            region: Region::Heap,
            sp: self.stack.sp(),
        })
    }

    /// Deterministic per-depth frame geometry: real programs call the
    /// same functions at the same depths, so SP revisits the same
    /// addresses and activation-record writes coalesce across calls —
    /// the effect behind the paper's huge page-vs-byte copy-size gap
    /// (Fig. 4).
    fn frame_geometry(&self, depth: usize) -> (u64, u32) {
        let p = &self.profile;
        let mix = (depth as u64).wrapping_mul(0x9e37_79b9).rotate_left(13);
        let bytes = p.frame_bytes / 2 + (mix % (p.frame_bytes + 1));
        let saves = 1 + (mix % 4) as u32;
        (bytes, saves)
    }

    /// Pushes one frame at the current depth with its activation
    /// record and fixed-offset local initialisation.
    fn call(&mut self) {
        let (bytes, saves) = self.frame_geometry(self.stack.depth());
        let ev = self.stack.push_frame(bytes, saves);
        self.queue.extend(ev);
        let locals = 2 + (saves as u64 % 4);
        for w in 0..locals {
            self.queue.push_back(self.stack.write_local(16 + w * 8, 8));
        }
    }

    fn refill(&mut self) {
        let p = self.profile.clone();
        // Deep excursion: dive through the call graph writing only
        // activation records and a few locals per frame — many pages
        // touched, few bytes per page dirtied — then unwind back to
        // the idle depth. This grow/shrink pattern is the stack-usage
        // character Section I of the paper highlights.
        if self.rng.gen_bool(p.call_rate) {
            let headroom = p.max_depth.saturating_sub(self.stack.depth()).max(1);
            let d = self.rng.gen_range(1..=headroom);
            for _ in 0..d {
                self.call();
                self.queue.push_back(TraceEvent::Compute(16));
            }
            while self.stack.depth() > p.min_depth.max(1) {
                let ev = self.stack.pop_frame();
                self.queue.extend(ev);
            }
        }
        // Shallow call/return churn (request handling): a quick
        // call-work-return at the idle depth.
        if self.rng.gen_bool(p.return_rate) {
            self.call();
            for _ in 0..4 {
                let ev = self.stack_access();
                self.queue.push_back(ev);
            }
            let ev = self.stack.pop_frame();
            self.queue.extend(ev);
        }
        // Burst of memory accesses at the idle depth.
        for _ in 0..p.burst_len {
            let ev = if self.rng.gen_bool(p.stack_fraction) {
                self.stack_access()
            } else {
                self.heap_access()
            };
            self.queue.push_back(ev);
        }
        self.queue.push_back(TraceEvent::Compute(p.compute_gap));
    }
}

impl TraceSource for Workload {
    fn next_event(&mut self) -> TraceEvent {
        loop {
            if let Some(ev) = self.queue.pop_front() {
                return ev;
            }
            self.refill();
        }
    }

    fn name(&self) -> &'static str {
        self.profile.name
    }

    fn stack(&self) -> &StackModel {
        &self.stack
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region_fractions(profile: WorkloadProfile, n: usize) -> (f64, f64) {
        let mut w = Workload::new(profile, 11);
        let mut stack = 0usize;
        let mut total = 0usize;
        for _ in 0..n {
            if let TraceEvent::Access(a) = w.next_event() {
                total += 1;
                if a.region == Region::Stack {
                    stack += 1;
                }
            }
        }
        (stack as f64 / total as f64, total as f64)
    }

    #[test]
    fn gapbs_is_stack_heavy() {
        let (frac, _) = region_fractions(WorkloadProfile::gapbs_pr(), 50_000);
        assert!(frac > 0.6, "Gapbs stack fraction {frac} (paper: ~70%)");
    }

    #[test]
    fn ycsb_is_stack_light() {
        let (frac, _) = region_fractions(WorkloadProfile::ycsb_mem(), 50_000);
        assert!(frac < 0.35, "Ycsb stack fraction {frac} (paper: ~15%)");
    }

    #[test]
    fn fig1_ordering_holds() {
        let (g, _) = region_fractions(WorkloadProfile::gapbs_pr(), 30_000);
        let (s, _) = region_fractions(WorkloadProfile::g500_sssp(), 30_000);
        let (y, _) = region_fractions(WorkloadProfile::ycsb_mem(), 30_000);
        assert!(g > s && s > y, "Fig.1 ordering: {g} > {s} > {y}");
    }

    #[test]
    fn stack_accesses_stay_in_reserved_range() {
        let mut w = Workload::new(WorkloadProfile::mcf(), 3);
        let reserved = w.stack().reserved_range();
        for _ in 0..20_000 {
            if let TraceEvent::Access(a) = w.next_event() {
                if a.region == Region::Stack {
                    assert!(
                        reserved.overlaps_access(a.vaddr, u64::from(a.size)),
                        "stack access {a:?} outside reserved range"
                    );
                }
            }
        }
    }

    #[test]
    fn sp_moves_with_call_churn() {
        let mut w = Workload::new(WorkloadProfile::ycsb_mem(), 5);
        let mut sps = std::collections::HashSet::new();
        for _ in 0..20_000 {
            if let TraceEvent::Access(a) = w.next_event() {
                sps.insert(a.sp.raw());
            }
        }
        assert!(sps.len() >= 10, "Ycsb SP takes many values: {}", sps.len());
    }

    #[test]
    fn mcf_scatters_more_than_sssp() {
        // Distinct 32-granule (256 B) bitmap words touched per stack
        // store: mcf should touch far more words per store than sssp.
        let words_per_store = |profile: WorkloadProfile| {
            let mut w = Workload::new(profile, 7);
            let mut words = std::collections::HashSet::new();
            let mut stores = 0u64;
            for _ in 0..40_000 {
                if let TraceEvent::Access(a) = w.next_event() {
                    if a.is_stack_store() {
                        stores += 1;
                        words.insert(a.vaddr.raw() / 256);
                    }
                }
            }
            words.len() as f64 / stores as f64
        };
        let mcf = words_per_store(WorkloadProfile::mcf());
        let sssp = words_per_store(WorkloadProfile::g500_sssp());
        assert!(mcf > sssp * 2.0, "mcf {mcf} vs sssp {sssp}");
    }

    #[test]
    fn deterministic_with_seed() {
        let mut a = Workload::new(WorkloadProfile::omnetpp(), 9);
        let mut b = Workload::new(WorkloadProfile::omnetpp(), 9);
        for _ in 0..5_000 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn frame_geometry_is_deterministic_per_depth() {
        // Same depth => same frame layout, the property that lets
        // activation-record writes coalesce across calls (Fig. 4).
        let w = Workload::new(WorkloadProfile::gapbs_pr(), 1);
        for depth in 0..32 {
            assert_eq!(w.frame_geometry(depth), w.frame_geometry(depth));
            let (bytes, saves) = w.frame_geometry(depth);
            let p = w.profile();
            assert!(bytes >= p.frame_bytes / 2);
            assert!(bytes <= p.frame_bytes / 2 + p.frame_bytes);
            assert!((1..=4).contains(&saves));
        }
        // And the layouts differ across depths (not one constant).
        let distinct: std::collections::HashSet<u64> =
            (0..32).map(|d| w.frame_geometry(d).0).collect();
        assert!(distinct.len() > 8);
    }

    #[test]
    fn excursions_return_to_idle_depth() {
        let mut w = Workload::new(WorkloadProfile::leela(), 8);
        let idle = w.profile().min_depth;
        // Drain many refills; after consuming the queue entirely the
        // stack must always sit at (or near) the idle depth.
        for _ in 0..50_000 {
            w.next_event();
        }
        assert!(
            w.stack().depth() <= idle + 1,
            "depth {} vs idle {idle}",
            w.stack().depth()
        );
    }

    #[test]
    fn application_and_spec_sets() {
        assert_eq!(WorkloadProfile::applications().len(), 3);
        let set = WorkloadProfile::tracking_overhead_set();
        assert_eq!(set.len(), 6);
        assert!(set.iter().any(|p| p.name.contains("mcf")));
    }
}
