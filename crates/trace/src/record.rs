//! Trace record types shared by all generators and consumers.

use prosper_memsim::addr::VirtAddr;
use prosper_memsim::Cycles;
use serde::{Deserialize, Serialize};

/// Whether an access reads or writes memory.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load.
    Load,
    /// A store.
    Store,
}

/// Which logical memory segment an access targets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Region {
    /// The program stack (the segment Prosper tracks).
    Stack,
    /// The heap.
    Heap,
    /// Globals / other mapped memory.
    Other,
}

/// A single memory access in a trace.
///
/// Each access carries the **stack-pointer value at the time of the
/// access**: SP awareness (Section II-A of the paper) and the
/// writes-beyond-final-SP analysis (Figure 2) both need to relate
/// accesses to the SP trajectory.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MemAccess {
    /// Issuing software thread.
    pub tid: u32,
    /// Load or store.
    pub kind: AccessKind,
    /// Target virtual address.
    pub vaddr: VirtAddr,
    /// Access size in bytes (1–64 for demand accesses).
    pub size: u32,
    /// Memory segment classification.
    pub region: Region,
    /// Stack-pointer value when the access issued (stack grows down,
    /// so the active stack region is `[sp, stack_top)`).
    pub sp: VirtAddr,
}

impl MemAccess {
    /// `true` for stores into the stack region — the *stores of
    /// interest* the Prosper hardware filters.
    pub fn is_stack_store(&self) -> bool {
        self.kind == AccessKind::Store && self.region == Region::Stack
    }

    /// `true` if the access lies below (outside) the active region
    /// defined by stack pointer `sp` — i.e. at an address lower than
    /// `sp` for a downward-growing stack.
    pub fn is_beyond_sp(&self, sp: VirtAddr) -> bool {
        self.vaddr < sp
    }
}

/// One event in a generated trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A memory access.
    Access(MemAccess),
    /// A block of pure compute consuming the given number of cycles.
    Compute(Cycles),
}

impl TraceEvent {
    /// Returns the access if this event is one.
    pub fn as_access(&self) -> Option<&MemAccess> {
        match self {
            TraceEvent::Access(a) => Some(a),
            TraceEvent::Compute(_) => None,
        }
    }

    /// Nominal cycle cost of the event for interval budgeting (memory
    /// accesses are budgeted at one issue slot; their true latency is
    /// decided by the machine model).
    pub fn budget_cycles(&self) -> Cycles {
        match self {
            TraceEvent::Access(_) => 1,
            TraceEvent::Compute(c) => *c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(kind: AccessKind, region: Region, addr: u64, sp: u64) -> MemAccess {
        MemAccess {
            tid: 0,
            kind,
            vaddr: VirtAddr::new(addr),
            size: 8,
            region,
            sp: VirtAddr::new(sp),
        }
    }

    #[test]
    fn stack_store_classification() {
        assert!(acc(AccessKind::Store, Region::Stack, 100, 100).is_stack_store());
        assert!(!acc(AccessKind::Load, Region::Stack, 100, 100).is_stack_store());
        assert!(!acc(AccessKind::Store, Region::Heap, 100, 100).is_stack_store());
    }

    #[test]
    fn beyond_sp_means_below_sp() {
        let a = acc(AccessKind::Store, Region::Stack, 0x1000, 0x1100);
        assert!(a.is_beyond_sp(VirtAddr::new(0x1100)));
        assert!(!a.is_beyond_sp(VirtAddr::new(0x1000)));
        assert!(!a.is_beyond_sp(VirtAddr::new(0x0800)));
    }

    #[test]
    fn event_budget() {
        let a = acc(AccessKind::Load, Region::Heap, 0, 0);
        assert_eq!(TraceEvent::Access(a).budget_cycles(), 1);
        assert_eq!(TraceEvent::Compute(500).budget_cycles(), 500);
        assert!(TraceEvent::Access(a).as_access().is_some());
        assert!(TraceEvent::Compute(1).as_access().is_none());
    }
}
