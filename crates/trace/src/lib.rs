//! # prosper-trace
//!
//! Workload and micro-benchmark memory-trace generation for the Prosper
//! reproduction.
//!
//! The paper drives its experiments with (a) Pin/SniP traces of real
//! applications (Gapbs_pr, G500_sssp, Ycsb_mem, SPEC CPU 2017) and (b)
//! the Table III micro-benchmarks. Neither the proprietary traces nor
//! the original binaries are available here, so this crate provides:
//!
//! * an explicit **program-stack model** ([`stack::StackModel`]) with
//!   frames, downward growth, SP tracking, and activation-record write
//!   semantics;
//! * the **Table III micro-benchmarks** ([`micro`]) implemented
//!   faithfully from their descriptions (Random, Stream, Sparse,
//!   Quicksort, Recursive, Normal, Poisson);
//! * **synthetic stand-ins** for the application benchmarks
//!   ([`workloads`]) parameterised to match each workload's published
//!   stack characteristics (stack-operation fraction from Fig. 1,
//!   writes-beyond-final-SP from Fig. 2, stack spatial-locality classes
//!   from Fig. 13);
//! * **consistency-interval** splitting ([`interval`]) used by every
//!   checkpoint experiment.
//!
//! All generators are deterministic given a seed.
//!
//! # Example
//!
//! ```
//! use prosper_trace::workloads::{Workload, WorkloadProfile};
//! use prosper_trace::record::TraceEvent;
//! use prosper_trace::source::TraceSource;
//!
//! let mut w = Workload::new(WorkloadProfile::gapbs_pr(), 42);
//! match w.next_event() {
//!     TraceEvent::Access(a) => assert!(a.size > 0),
//!     TraceEvent::Compute(c) => assert!(c > 0),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod interval;
pub mod micro;
pub mod record;
pub mod source;
pub mod stack;
pub mod tracefile;
pub mod workloads;

pub use record::{AccessKind, MemAccess, Region, TraceEvent};
pub use source::TraceSource;
pub use workloads::{Workload, WorkloadProfile};
