//! Trace recording and replay from files.
//!
//! The paper's artifact ships memory traces of the benchmark
//! applications on disk images; experiments replay them. This module
//! mirrors that workflow: record any [`TraceSource`] window into a
//! [`TraceFile`] (JSON-serialisable), and replay it later as a
//! [`TraceSource`] — byte-identical across machines and runs.

use serde::{Deserialize, Serialize};

use crate::record::TraceEvent;
use crate::source::TraceSource;
use crate::stack::StackModel;

/// A recorded, replayable trace window.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct TraceFile {
    /// Name of the benchmark the trace was recorded from.
    pub benchmark: String,
    /// Seed the generator ran with (provenance).
    pub seed: u64,
    /// The recorded events.
    pub events: Vec<TraceEvent>,
    /// Stack layout of the recorded thread: `(tid, top, limit)`.
    pub stack_layout: (u32, u64, u64),
}

impl TraceFile {
    /// Records `n_events` events from a live source.
    pub fn record<S: TraceSource>(source: &mut S, seed: u64, n_events: usize) -> Self {
        let stack = source.stack();
        let layout = (stack.tid(), stack.top().raw(), stack.reserved_range().len());
        let benchmark = source.name().to_string();
        let events = (0..n_events).map(|_| source.next_event()).collect();
        Self {
            benchmark,
            seed,
            events,
            stack_layout: layout,
        }
    }

    /// Serialises to JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error on failure (effectively
    /// unreachable for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserialises from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Builds a replaying source over the recorded events. The replay
    /// loops when the recording is exhausted (sources are infinite).
    pub fn replayer(&self) -> TraceReplayer<'_> {
        let (tid, top, limit) = self.stack_layout;
        TraceReplayer {
            file: self,
            cursor: 0,
            stack: StackModel::with_layout(tid, prosper_memsim::addr::VirtAddr::new(top), limit),
        }
    }
}

/// Replays a [`TraceFile`] as a [`TraceSource`].
///
/// The internal stack model mirrors the recorded layout so consumers
/// can query ranges; the *SP trajectory* comes from the recorded
/// events themselves (each access carries its SP).
#[derive(Debug)]
pub struct TraceReplayer<'a> {
    file: &'a TraceFile,
    cursor: usize,
    stack: StackModel,
}

impl TraceReplayer<'_> {
    /// Number of events replayed so far (monotonic, counts loops).
    pub fn position(&self) -> usize {
        self.cursor
    }
}

impl TraceSource for TraceReplayer<'_> {
    fn next_event(&mut self) -> TraceEvent {
        let ev = self.file.events[self.cursor % self.file.events.len()];
        self.cursor += 1;
        ev
    }

    fn name(&self) -> &'static str {
        // Sources return static names; replays are identified in logs
        // by this marker plus the file's `benchmark` field.
        "replay"
    }

    fn stack(&self) -> &StackModel {
        &self.stack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::{MicroBench, MicroSpec};
    use crate::workloads::{Workload, WorkloadProfile};

    #[test]
    fn record_and_replay_are_identical() {
        let mut live = Workload::new(WorkloadProfile::gapbs_pr(), 5);
        let file = TraceFile::record(&mut live, 5, 2_000);
        assert_eq!(file.benchmark, "Gapbs_pr");
        assert_eq!(file.events.len(), 2_000);

        let mut fresh = Workload::new(WorkloadProfile::gapbs_pr(), 5);
        let mut replay = file.replayer();
        for _ in 0..2_000 {
            assert_eq!(replay.next_event(), fresh.next_event());
        }
        assert_eq!(replay.position(), 2_000);
    }

    #[test]
    fn json_roundtrip() {
        let mut live = MicroBench::new(MicroSpec::Recursive { depth: 4 }, 9);
        let file = TraceFile::record(&mut live, 9, 500);
        let json = file.to_json().unwrap();
        let back = TraceFile::from_json(&json).unwrap();
        assert_eq!(file, back);
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(TraceFile::from_json("{not json").is_err());
    }

    #[test]
    fn replay_loops_past_the_end() {
        let mut live = MicroBench::new(MicroSpec::Stream { array_bytes: 4096 }, 1);
        let file = TraceFile::record(&mut live, 1, 100);
        let mut replay = file.replayer();
        let first: Vec<TraceEvent> = (0..100).map(|_| replay.next_event()).collect();
        let second: Vec<TraceEvent> = (0..100).map(|_| replay.next_event()).collect();
        assert_eq!(first, second, "replay wraps deterministically");
        assert_eq!(replay.position(), 200);
    }

    #[test]
    fn replayer_exposes_recorded_layout() {
        let mut live = Workload::new(WorkloadProfile::ycsb_mem(), 2);
        let expected = live.stack().reserved_range();
        let file = TraceFile::record(&mut live, 2, 10);
        let replay = file.replayer();
        assert_eq!(replay.stack().reserved_range(), expected);
    }
}
