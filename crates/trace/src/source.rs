//! The [`TraceSource`] trait: an infinite, deterministic stream of
//! trace events produced over a live [`StackModel`].

use crate::record::TraceEvent;
use crate::stack::StackModel;

/// An infinite trace generator.
///
/// All workloads and micro-benchmarks implement this; experiment
/// harnesses pull events until a cycle budget is exhausted. The
/// underlying [`StackModel`] is exposed so that the OS layer can learn
/// the stack range to program into the tracker and so that analyses
/// can read the SP watermark.
pub trait TraceSource {
    /// Produces the next event. Never exhausts.
    fn next_event(&mut self) -> TraceEvent;

    /// Human-readable benchmark name (as printed in the paper's
    /// figures).
    fn name(&self) -> &'static str;

    /// The stack model of the (primary) thread.
    fn stack(&self) -> &StackModel;
}

impl<S: TraceSource + ?Sized> TraceSource for &mut S {
    fn next_event(&mut self) -> TraceEvent {
        (**self).next_event()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn stack(&self) -> &StackModel {
        (**self).stack()
    }
}

impl<S: TraceSource + ?Sized> TraceSource for Box<S> {
    fn next_event(&mut self) -> TraceEvent {
        (**self).next_event()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn stack(&self) -> &StackModel {
        (**self).stack()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AccessKind, MemAccess, Region};
    use prosper_memsim::addr::VirtAddr;

    /// Minimal source used to check object-safety and defaults.
    #[derive(Debug)]
    struct OneWord(StackModel);

    impl TraceSource for OneWord {
        fn next_event(&mut self) -> TraceEvent {
            TraceEvent::Access(MemAccess {
                tid: 0,
                kind: AccessKind::Store,
                vaddr: VirtAddr::new(0x100),
                size: 8,
                region: Region::Other,
                sp: self.0.sp(),
            })
        }

        fn name(&self) -> &'static str {
            "one-word"
        }

        fn stack(&self) -> &StackModel {
            &self.0
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let mut boxed: Box<dyn TraceSource> = Box::new(OneWord(StackModel::new(0)));
        assert_eq!(boxed.name(), "one-word");
        assert!(boxed.next_event().as_access().is_some());
        assert_eq!(boxed.stack().tid(), 0);
    }
}
