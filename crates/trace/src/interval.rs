//! Consistency-interval splitting and per-interval stack analysis.
//!
//! Checkpoint experiments operate on fixed-duration intervals (10 ms in
//! the paper, i.e. 30 M cycles at 3 GHz; our harnesses scale this down
//! — see EXPERIMENTS.md). An [`IntervalCollector`] pulls events from a
//! [`TraceSource`] until the interval's cycle budget is exhausted and
//! yields the buffered events together with the SP endpoints needed by
//! the motivation analyses (Figure 2: writes beyond the final SP) and
//! by SP-aware replay (Figure 3).

use prosper_memsim::addr::VirtAddr;
use prosper_memsim::Cycles;
use serde::{Deserialize, Serialize};

use crate::record::{AccessKind, Region, TraceEvent};
use crate::source::TraceSource;

/// One collected consistency interval.
#[derive(Clone, Debug)]
pub struct Interval {
    /// Events in issue order.
    pub events: Vec<TraceEvent>,
    /// SP at the start of the interval.
    pub start_sp: VirtAddr,
    /// SP at the end of the interval (the "final SP" of Fig. 2).
    pub final_sp: VirtAddr,
    /// Lowest SP observed during the interval (deepest stack use —
    /// the maximum active region the tracker reports to the OS).
    pub min_sp: VirtAddr,
    /// Top-of-stack address.
    pub stack_top: VirtAddr,
}

/// Summary statistics of stack activity within an interval (Fig. 2).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StackIntervalStats {
    /// Stores to the stack region.
    pub stack_writes: u64,
    /// Stack stores at addresses below the interval-final SP — work a
    /// non-SP-aware mechanism performs for state that is dead at the
    /// commit point.
    pub writes_beyond_final_sp: u64,
    /// Loads from the stack region.
    pub stack_reads: u64,
    /// All non-stack accesses.
    pub other_accesses: u64,
}

impl StackIntervalStats {
    /// Fraction of stack writes beyond the final SP.
    pub fn beyond_fraction(&self) -> f64 {
        if self.stack_writes == 0 {
            0.0
        } else {
            self.writes_beyond_final_sp as f64 / self.stack_writes as f64
        }
    }
}

impl Interval {
    /// Computes Fig.-2-style statistics for the interval.
    pub fn stack_stats(&self) -> StackIntervalStats {
        let mut s = StackIntervalStats::default();
        for ev in &self.events {
            let Some(a) = ev.as_access() else { continue };
            match (a.region, a.kind) {
                (Region::Stack, AccessKind::Store) => {
                    s.stack_writes += 1;
                    if a.vaddr < self.final_sp {
                        s.writes_beyond_final_sp += 1;
                    }
                }
                (Region::Stack, AccessKind::Load) => s.stack_reads += 1,
                _ => s.other_accesses += 1,
            }
        }
        s
    }

    /// Set of distinct dirty granules (of `granularity` bytes) written
    /// in the stack region during the interval — the ideal checkpoint
    /// content at that tracking granularity.
    pub fn dirty_stack_granules(&self, granularity: u64) -> std::collections::BTreeSet<u64> {
        assert!(granularity > 0, "granularity must be positive");
        let mut set = std::collections::BTreeSet::new();
        for ev in &self.events {
            let Some(a) = ev.as_access() else { continue };
            if !a.is_stack_store() {
                continue;
            }
            let first = a.vaddr.raw() / granularity;
            let last = (a.vaddr.raw() + u64::from(a.size) - 1) / granularity;
            for g in first..=last {
                set.insert(g);
            }
        }
        set
    }

    /// Bytes copied by a checkpoint tracking at `granularity` bytes.
    pub fn checkpoint_bytes(&self, granularity: u64) -> u64 {
        self.dirty_stack_granules(granularity).len() as u64 * granularity
    }
}

/// Pulls fixed-budget intervals from a trace source.
#[derive(Debug)]
pub struct IntervalCollector<S> {
    source: S,
    budget: Cycles,
}

impl<S: TraceSource> IntervalCollector<S> {
    /// Creates a collector with the given per-interval cycle budget.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    pub fn new(source: S, budget: Cycles) -> Self {
        assert!(budget > 0, "interval budget must be positive");
        Self { source, budget }
    }

    /// Collects the next interval.
    pub fn next_interval(&mut self) -> Interval {
        let start_sp = self.source.stack().sp();
        let stack_top = self.source.stack().top();
        let mut min_sp = start_sp;
        let mut spent: Cycles = 0;
        let mut events = Vec::new();
        while spent < self.budget {
            let ev = self.source.next_event();
            spent += ev.budget_cycles();
            if let Some(a) = ev.as_access() {
                min_sp = min_sp.min(a.sp);
            }
            events.push(ev);
        }
        Interval {
            events,
            start_sp,
            final_sp: self.source.stack().sp(),
            min_sp,
            stack_top,
        }
    }

    /// Collects `n` consecutive intervals.
    pub fn take_intervals(&mut self, n: usize) -> Vec<Interval> {
        (0..n).map(|_| self.next_interval()).collect()
    }

    /// Consumes the collector, returning the source.
    pub fn into_inner(self) -> S {
        self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::{MicroBench, MicroSpec};
    use crate::workloads::{Workload, WorkloadProfile};

    #[test]
    fn intervals_have_requested_budget() {
        let w = Workload::new(WorkloadProfile::gapbs_pr(), 1);
        let mut c = IntervalCollector::new(w, 10_000);
        let iv = c.next_interval();
        let spent: u64 = iv.events.iter().map(|e| e.budget_cycles()).sum();
        assert!(spent >= 10_000);
        assert!(spent < 12_000, "budget overshoot bounded by one event");
    }

    #[test]
    fn min_sp_below_or_equal_endpoints() {
        let w = Workload::new(WorkloadProfile::ycsb_mem(), 2);
        let mut c = IntervalCollector::new(w, 50_000);
        for _ in 0..5 {
            let iv = c.next_interval();
            assert!(iv.min_sp <= iv.start_sp);
            assert!(iv.min_sp <= iv.final_sp);
            assert!(iv.final_sp <= iv.stack_top);
        }
    }

    #[test]
    fn ycsb_writes_beyond_final_sp_are_substantial() {
        let w = Workload::new(WorkloadProfile::ycsb_mem(), 3);
        let mut c = IntervalCollector::new(w, 100_000);
        let ivs = c.take_intervals(20);
        let total: u64 = ivs.iter().map(|i| i.stack_stats().stack_writes).sum();
        let beyond: u64 = ivs
            .iter()
            .map(|i| i.stack_stats().writes_beyond_final_sp)
            .sum();
        let frac = beyond as f64 / total as f64;
        assert!(
            frac > 0.15,
            "Ycsb beyond-final-SP fraction {frac} (paper: >36%)"
        );
    }

    #[test]
    fn dirty_granules_monotone_in_granularity() {
        let b = MicroBench::new(
            MicroSpec::Random {
                array_bytes: 32 * 1024,
            },
            4,
        );
        let mut c = IntervalCollector::new(b, 20_000);
        let iv = c.next_interval();
        let g8 = iv.checkpoint_bytes(8);
        let g64 = iv.checkpoint_bytes(64);
        let g4096 = iv.checkpoint_bytes(4096);
        assert!(g8 <= g64 && g64 <= g4096, "{g8} <= {g64} <= {g4096}");
        assert!(g8 > 0);
    }

    #[test]
    fn sparse_page_vs_byte_granularity_gap_is_huge() {
        let b = MicroBench::new(MicroSpec::Sparse { pages: 16 }, 5);
        let mut c = IntervalCollector::new(b, 30_000);
        let iv = c.next_interval();
        let fine = iv.checkpoint_bytes(8);
        let page = iv.checkpoint_bytes(4096);
        assert!(
            page as f64 / fine as f64 > 20.0,
            "sparse: page {page} vs fine {fine}"
        );
    }

    #[test]
    fn stats_partition_all_accesses() {
        let w = Workload::new(WorkloadProfile::g500_sssp(), 6);
        let mut c = IntervalCollector::new(w, 20_000);
        let iv = c.next_interval();
        let s = iv.stack_stats();
        let accesses = iv.events.iter().filter(|e| e.as_access().is_some()).count() as u64;
        assert_eq!(s.stack_writes + s.stack_reads + s.other_accesses, accesses);
        assert!(s.writes_beyond_final_sp <= s.stack_writes);
    }

    #[test]
    fn beyond_fraction_handles_zero() {
        assert_eq!(StackIntervalStats::default().beyond_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "granularity must be positive")]
    fn zero_granularity_panics() {
        let b = MicroBench::new(MicroSpec::Recursive { depth: 2 }, 1);
        let mut c = IntervalCollector::new(b, 1000);
        c.next_interval().dirty_stack_granules(0);
    }
}
