//! Property-based tests of the trace generators' invariants.

use proptest::prelude::*;
use prosper_trace::interval::IntervalCollector;
use prosper_trace::micro::{MicroBench, MicroSpec};
use prosper_trace::record::{Region, TraceEvent};
use prosper_trace::source::TraceSource;
use prosper_trace::stack::StackModel;
use prosper_trace::workloads::{Workload, WorkloadProfile};

fn arb_profile() -> impl Strategy<Value = WorkloadProfile> {
    prop_oneof![
        Just(WorkloadProfile::gapbs_pr()),
        Just(WorkloadProfile::g500_sssp()),
        Just(WorkloadProfile::ycsb_mem()),
        Just(WorkloadProfile::mcf()),
        Just(WorkloadProfile::omnetpp()),
        Just(WorkloadProfile::perlbench()),
        Just(WorkloadProfile::leela()),
    ]
}

fn arb_micro() -> impl Strategy<Value = MicroSpec> {
    prop_oneof![
        Just(MicroSpec::Random { array_bytes: 8192 }),
        Just(MicroSpec::Stream { array_bytes: 8192 }),
        Just(MicroSpec::Sparse { pages: 8 }),
        Just(MicroSpec::Quicksort { elements: 128 }),
        Just(MicroSpec::Recursive { depth: 6 }),
        Just(MicroSpec::Normal { array_bytes: 8192 }),
        Just(MicroSpec::Poisson { array_bytes: 8192 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every stack access of every workload stays inside the reserved
    /// stack range, and its recorded SP matches the active region.
    #[test]
    fn workload_stack_accesses_in_range(profile in arb_profile(), seed in 0u64..1000) {
        let mut w = Workload::new(profile, seed);
        let reserved = w.stack().reserved_range();
        for _ in 0..3_000 {
            if let TraceEvent::Access(a) = w.next_event() {
                if a.region == Region::Stack {
                    prop_assert!(reserved.overlaps_access(a.vaddr, u64::from(a.size)));
                    prop_assert!(a.sp <= w.stack().top());
                }
            }
        }
    }

    /// Micro-benchmarks never violate the stack model: SP within the
    /// reserved range, all stack accesses at or above SP-of-emission's
    /// frame floor, and strictly below the stack top.
    #[test]
    fn micro_accesses_well_formed(spec in arb_micro(), seed in 0u64..1000) {
        let mut b = MicroBench::new(spec, seed);
        let top = b.stack().top();
        let reserved = b.stack().reserved_range();
        for _ in 0..3_000 {
            if let TraceEvent::Access(a) = b.next_event() {
                if a.region == Region::Stack {
                    prop_assert!(a.vaddr < top);
                    prop_assert!(reserved.contains(a.vaddr));
                }
                prop_assert!(a.size > 0 && a.size <= 64);
            }
        }
    }

    /// Interval collection: budgets are respected within one event,
    /// final SP equals the source's SP afterwards, and the dirty-set
    /// size shrinks monotonically as granularity coarsens in *granule
    /// count* (and grows in bytes).
    #[test]
    fn interval_invariants(spec in arb_micro(), seed in 0u64..100, budget in 5_000u64..40_000) {
        let b = MicroBench::new(spec, seed);
        let mut c = IntervalCollector::new(b, budget);
        let iv = c.next_interval();
        let spent: u64 = iv.events.iter().map(|e| e.budget_cycles()).sum();
        prop_assert!(spent >= budget);
        prop_assert!(iv.min_sp <= iv.start_sp && iv.min_sp <= iv.final_sp);

        let g8 = iv.dirty_stack_granules(8).len() as u64;
        let g64 = iv.dirty_stack_granules(64).len() as u64;
        prop_assert!(g64 <= g8, "coarser granularity has fewer granules");
        prop_assert!(iv.checkpoint_bytes(64) >= iv.checkpoint_bytes(8));
    }

    /// The stack model conserves SP across arbitrary push/pop
    /// sequences.
    #[test]
    fn stack_model_push_pop_conservation(sizes in prop::collection::vec(16u64..512, 1..40)) {
        let mut s = StackModel::new(0);
        let top = s.sp();
        let mut expected_depth = 0usize;
        for chunk in sizes.chunks(2) {
            for &size in chunk {
                s.push_frame(size, 1);
                expected_depth += 1;
            }
            s.pop_frame();
            expected_depth -= 1;
        }
        prop_assert_eq!(s.depth(), expected_depth);
        while s.depth() > 0 {
            s.pop_frame();
        }
        prop_assert_eq!(s.sp(), top, "fully unwound stack restores SP");
        prop_assert!(s.min_sp_watermark() <= top);
    }

    /// Same seed, same stream — for every generator.
    #[test]
    fn generators_deterministic(spec in arb_micro(), seed in 0u64..50) {
        let mut a = MicroBench::new(spec, seed);
        let mut b = MicroBench::new(spec, seed);
        for _ in 0..500 {
            prop_assert_eq!(a.next_event(), b.next_event());
        }
    }
}
