//! Quickstart: checkpoint a workload's stack with Prosper and compare
//! against page-granularity Dirtybit tracking.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use prosper_repro::baselines::DirtybitMechanism;
use prosper_repro::core::ProsperMechanism;
use prosper_repro::gemos::checkpoint::{CheckpointManager, MemoryPersistence, NoPersistence};
use prosper_repro::memsim::config::MachineConfig;
use prosper_repro::memsim::machine::Machine;
use prosper_repro::trace::workloads::{Workload, WorkloadProfile};

/// Scaled stand-in for a 10 ms consistency interval (see DESIGN.md §5).
const INTERVAL: u64 = 100_000;
const INTERVALS: u64 = 10;

fn run(label: &str, mech: &mut dyn MemoryPersistence) -> f64 {
    // A fresh Table II Setup-I machine per configuration.
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut manager = CheckpointManager::new(&mut machine, INTERVAL);
    let workload = Workload::new(WorkloadProfile::gapbs_pr(), 42);
    let result = manager.run_stack_only(workload, mech, INTERVALS);
    println!(
        "{label:>10}: {:>12} cycles total, {:>10} cycles in checkpoints, {:>8} bytes copied",
        result.total_cycles, result.checkpoint_cycles, result.bytes_copied
    );
    result.total_cycles as f64
}

fn main() {
    println!("Prosper quickstart — Gapbs_pr stack persistence\n");
    let baseline = run("none", &mut NoPersistence);
    let dirtybit = run("Dirtybit", &mut DirtybitMechanism::new());
    let prosper = run("Prosper", &mut ProsperMechanism::with_defaults());

    println!(
        "\nnormalized to no persistence: Dirtybit {:.3}x, Prosper {:.3}x",
        dirtybit / baseline,
        prosper / baseline
    );
    println!("Prosper's sub-page tracking shrinks the copy set and the checkpoint time.");
}
