//! Crash-and-resume: the property that defines process persistence.
//!
//! A recorded execution is run with periodic Prosper checkpoints; a
//! power failure is injected mid-run; the process recovers from its
//! last checkpoint (registers carry the resume position, the
//! persistent stack carries the memory) and re-executes to completion.
//! The final memory state is verified byte-for-byte against an
//! uninterrupted run — the same validation the paper performs by
//! killing gem5 and restarting GemOS.
//!
//! Run with:
//! ```sh
//! cargo run --release --example crash_resume
//! ```

use std::collections::BTreeMap;

use prosper_repro::core::recovery::PersistentProcess;
use prosper_repro::core::tracker::{DirtyTracker, TrackerConfig};
use prosper_repro::gemos::image::MemoryImage;
use prosper_repro::memsim::addr::{VirtAddr, VirtRange};
use prosper_repro::trace::record::TraceEvent;
use prosper_repro::trace::source::TraceSource;
use prosper_repro::trace::tracefile::TraceFile;
use prosper_repro::trace::workloads::{Workload, WorkloadProfile};

const EVENTS: usize = 10_000;
const CHECKPOINT_EVERY: usize = 2_500;
const CRASH_AT: usize = 6_200;

fn value_at(addr: u64, size: u32) -> Vec<u8> {
    (0..size as u64)
        .map(|i| ((addr + i) as u8) ^ 0xa5)
        .collect()
}

fn main() {
    // Record the execution once; the replay position is the "program
    // counter" a register checkpoint captures.
    let mut workload = Workload::new(WorkloadProfile::gapbs_pr(), 77);
    let range = workload.stack().reserved_range();
    let top = workload.stack().top();
    let trace = TraceFile::record(&mut workload, 77, EVENTS);

    // Reference: uninterrupted execution.
    let mut reference = MemoryImage::new();
    for ev in &trace.events {
        if let TraceEvent::Access(a) = ev {
            if a.is_stack_store() && range.contains(a.vaddr) {
                reference.write(a.vaddr, &value_at(a.vaddr.raw(), a.size));
            }
        }
    }

    // Persistent run.
    let mut process = PersistentProcess::new(&[range]);
    let mut tracker = DirtyTracker::new(TrackerConfig::default());
    tracker.configure(range, VirtAddr::new(0x1000_0000));

    let apply =
        |process: &mut PersistentProcess, tracker: &mut DirtyTracker, from: usize, to: usize| {
            for ev in &trace.events[from..to] {
                if let TraceEvent::Access(a) = ev {
                    if a.is_stack_store() {
                        tracker.observe_store(a.vaddr, u64::from(a.size));
                        process.record_store(0, a.vaddr, &value_at(a.vaddr.raw(), a.size));
                    }
                }
            }
        };
    let checkpoint = |process: &mut PersistentProcess, tracker: &mut DirtyTracker, pos: usize| {
        tracker.flush();
        let geom = tracker.geometry();
        let watermark = tracker.min_soi_watermark().unwrap_or(top);
        let (runs, _) = tracker
            .bitmap_mut()
            .inspect_and_clear(&geom, VirtRange::new(watermark, top));
        tracker.reset_watermark();
        process.regs_mut(0).rip = pos as u64;
        let mut per_thread = BTreeMap::new();
        per_thread.insert(0u32, runs);
        process.commit(&per_thread);
        println!("checkpoint at event {pos}");
    };

    let mut pos = 0;
    while pos < CRASH_AT {
        let next = (pos + CHECKPOINT_EVERY).min(CRASH_AT);
        apply(&mut process, &mut tracker, pos, next);
        pos = next;
        if pos % CHECKPOINT_EVERY == 0 {
            checkpoint(&mut process, &mut tracker, pos);
        }
    }
    println!("\n*** power failure at event {CRASH_AT} ***\n");
    process.crash();
    let mut tracker = DirtyTracker::new(TrackerConfig::default());
    tracker.configure(range, VirtAddr::new(0x1000_0000));

    let recovered = process.recover().expect("checkpoints completed");
    let mut pos = recovered.regs[0].rip as usize;
    println!(
        "recovered at checkpoint sequence {}, resuming from event {pos}",
        recovered.sequence
    );
    while pos < EVENTS {
        let next = (pos + CHECKPOINT_EVERY).min(EVENTS);
        apply(&mut process, &mut tracker, pos, next);
        pos = next;
        checkpoint(&mut process, &mut tracker, pos);
    }

    assert!(
        process.stack(0).volatile().matches(&reference, range),
        "resumed run diverged from the uninterrupted run"
    );
    println!("\nfinal state matches the uninterrupted run byte-for-byte: OK");
}
