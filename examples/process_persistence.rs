//! End-to-end process persistence: run a workload under periodic
//! checkpoints, mirror its stack writes into a crash-consistent
//! per-thread persistent stack, kill the "machine" mid-run, and
//! restore — the test the paper performs by killing gem5 and
//! restarting GemOS from the last checkpoint.
//!
//! Run with:
//! ```sh
//! cargo run --release --example process_persistence
//! ```

use prosper_repro::core::bitmap::CopyRun;
use prosper_repro::core::persist::PersistentStack;
use prosper_repro::core::tracker::{DirtyTracker, TrackerConfig};
use prosper_repro::memsim::addr::VirtAddr;
use prosper_repro::trace::interval::IntervalCollector;
use prosper_repro::trace::record::TraceEvent;
use prosper_repro::trace::source::TraceSource;
use prosper_repro::trace::workloads::{Workload, WorkloadProfile};

const INTERVAL: u64 = 50_000;

fn main() {
    let workload = Workload::new(WorkloadProfile::ycsb_mem(), 7);
    let stack_range = workload.stack().reserved_range();
    let stack_top = workload.stack().top();

    // Hardware tracker + NVM persistent stack (the data plane).
    let mut tracker = DirtyTracker::new(TrackerConfig::default());
    tracker.configure(stack_range, VirtAddr::new(0x1000_0000));
    let mut pstack = PersistentStack::new(0, stack_range);

    let mut collector = IntervalCollector::new(workload, INTERVAL);
    let mut checkpoints = 0u64;
    for interval in 0..6 {
        let iv = collector.next_interval();
        for ev in &iv.events {
            if let TraceEvent::Access(a) = ev {
                if a.is_stack_store() {
                    tracker.observe_store(a.vaddr, u64::from(a.size));
                    // Deterministic value plane: tag each byte with a
                    // function of address and interval.
                    let val = (a.vaddr.raw() as u8) ^ (interval as u8);
                    let bytes = vec![val; a.size as usize];
                    pstack.record_store(a.vaddr, &bytes);
                }
            }
        }
        // Checkpoint: quiesce, inspect the active region, two-step
        // commit of the coalesced runs.
        tracker.flush();
        assert!(tracker.quiescent());
        let geom = tracker.geometry();
        let watermark = tracker.min_soi_watermark().unwrap_or(stack_top);
        let active = prosper_repro::memsim::addr::VirtRange::new(watermark, stack_top);
        let (runs, stats) = tracker.bitmap_mut().inspect_and_clear(&geom, active);
        let runs: Vec<CopyRun> = runs;
        let bytes: u64 = runs.iter().map(|r| r.len).sum();
        pstack.checkpoint(&runs);
        tracker.reset_watermark();
        checkpoints += 1;
        println!(
            "checkpoint {checkpoints}: {} runs, {} bytes, {} bitmap words inspected",
            runs.len(),
            bytes,
            stats.words_read
        );
    }

    // Crash! DRAM contents are gone.
    println!("\n*** simulated power failure ***\n");
    let committed = pstack.committed_sequence();
    pstack.crash();
    pstack.recover_after_crash();
    println!(
        "recovered at checkpoint sequence {} (committed before crash: {committed})",
        pstack.committed_sequence()
    );
    assert_eq!(pstack.committed_sequence(), committed);

    // The recovered volatile image equals the persistent one.
    let lo = stack_top - 4096u64;
    let range = prosper_repro::memsim::addr::VirtRange::new(lo, stack_top);
    assert!(pstack.volatile().matches(pstack.persistent(), range));
    println!("recovered stack image verified over the last page: OK");
}
