//! Multi-threaded tracking: two threads with private stacks share one
//! core; the OS saves/restores the Prosper tracker state around every
//! context switch (Section III-C and the ~870-cycle measurement in
//! Section V), and a cross-stack write takes the fault path.
//!
//! Run with:
//! ```sh
//! cargo run --release --example multithreaded_tracking
//! ```

use prosper_repro::core::multithread::MultiThreadTracker;
use prosper_repro::core::tracker::TrackerConfig;
use prosper_repro::memsim::addr::{VirtAddr, VirtRange};
use prosper_repro::memsim::config::MachineConfig;
use prosper_repro::memsim::machine::Machine;

fn main() {
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mt = MultiThreadTracker::new(TrackerConfig::default());

    let stack0 = VirtRange::new(VirtAddr::new(0x7000_0000), VirtAddr::new(0x7080_0000));
    let stack1 = VirtRange::new(VirtAddr::new(0x7100_0000), VirtAddr::new(0x7180_0000));
    mt.register_thread(0, stack0, VirtAddr::new(0x1000_0000));
    mt.register_thread(1, stack1, VirtAddr::new(0x1100_0000));

    mt.schedule(&mut machine, 0);
    let mut total_switch_cycles = 0u64;
    let mut switches = 0u64;

    for round in 0..100u64 {
        let (range, _) = if round % 2 == 0 {
            (stack0, 0)
        } else {
            (stack1, 1)
        };
        // Each thread writes a spread of its own stack between timer
        // interrupts.
        for i in 0..48u64 {
            let offset = (i * 88 + round * 8) % 0x4000;
            mt.observe_store(&mut machine, range.start() + offset, 8);
        }
        let next = 1 - mt.current_thread().expect("a thread is scheduled");
        total_switch_cycles += mt.schedule(&mut machine, next);
        switches += 1;
    }

    println!(
        "{switches} context switches, mean Prosper save/restore overhead: {:.0} cycles",
        total_switch_cycles as f64 / switches as f64
    );
    println!("(the paper measures ~870 cycles on average)");

    // One inter-thread stack write: thread 0 pokes thread 1's stack.
    mt.schedule(&mut machine, 0);
    let before = machine.now();
    mt.observe_store(&mut machine, stack1.start() + 128, 8);
    println!(
        "cross-stack write fault path: {} cycles, faults taken: {}",
        machine.now() - before,
        mt.cross_stack_faults
    );
}
