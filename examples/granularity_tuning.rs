//! Granularity tuning: sweep the Prosper tracking granularity over a
//! sparse and a streaming workload, showing why the paper recommends
//! adjusting it per application (end of Section V, Figure 10).
//!
//! Run with:
//! ```sh
//! cargo run --release --example granularity_tuning
//! ```

use prosper_repro::core::tracker::TrackerConfig;
use prosper_repro::core::ProsperMechanism;
use prosper_repro::gemos::checkpoint::CheckpointManager;
use prosper_repro::memsim::config::MachineConfig;
use prosper_repro::memsim::machine::Machine;
use prosper_repro::trace::micro::{MicroBench, MicroSpec};

const INTERVAL: u64 = 60_000;
const INTERVALS: u64 = 8;

fn sweep(spec: MicroSpec) {
    println!("{}:", spec.name());
    println!("  granularity   mean ckpt size   mean ckpt cycles");
    for granularity in [8u64, 16, 32, 64, 128] {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut manager = CheckpointManager::new(&mut machine, INTERVAL);
        let mut mech =
            ProsperMechanism::new(TrackerConfig::default().with_granularity(granularity));
        let bench = MicroBench::new(spec, 1);
        let res = manager.run_stack_only(bench, &mut mech, INTERVALS);
        println!(
            "  {granularity:>8} B   {:>12.0} B   {:>14.0}",
            res.mean_checkpoint_bytes(),
            res.mean_checkpoint_cycles()
        );
    }
    println!();
}

fn main() {
    println!("Prosper tracking-granularity sweep\n");
    // Sparse: fine granularity wins dramatically (checkpoint size is
    // a handful of granules per page).
    sweep(MicroSpec::Sparse { pages: 24 });
    // Stream: every byte is dirty, so fine granularity only adds
    // bitmap-processing overhead — the paper suggests coarsening (or
    // falling back to page-level Dirtybit) for such workloads.
    sweep(MicroSpec::Stream {
        array_bytes: 48 * 1024,
    });
    println!(
        "Sparse favours 8 B tracking; Stream favours coarse tracking — \
         the OS can retune the granularity MSR per interval."
    );
}
