//! # prosper-repro
//!
//! Umbrella crate of the Prosper reproduction (HPCA 2024: *Prosper:
//! Program Stack Persistence in Hybrid Memory Systems*). It re-exports
//! the workspace crates so examples and downstream users need a single
//! dependency:
//!
//! * [`memsim`] — the hybrid DRAM+NVM memory-hierarchy simulator;
//! * [`trace`] — workload and micro-benchmark trace generators;
//! * [`gemos`] — the OS model (paging, processes, checkpoints);
//! * [`core`] — Prosper itself (tracker, bitmap, OS component,
//!   persistent stack);
//! * [`baselines`] — Dirtybit, write-protect, Romulus, SSP, and
//!   flush/undo/redo logging.
//!
//! See `examples/quickstart.rs` for a three-minute tour and DESIGN.md
//! for the system inventory.

#![forbid(unsafe_code)]
pub use prosper_baselines as baselines;
pub use prosper_core as core;
pub use prosper_gemos as gemos;
pub use prosper_memsim as memsim;
pub use prosper_trace as trace;
