//! Offline stand-in for `criterion`.
//!
//! Keeps the same surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group`, `bench_with_input`, `Bencher::iter`,
//! `Bencher::iter_with_setup`, `black_box` — but with a thin
//! wall-clock harness: a short warm-up, then a few timed samples,
//! reporting the median ns/iteration to stdout. No statistics
//! beyond that, no HTML reports, no baselines.

#![forbid(unsafe_code)]
// A bench-timing shim exists to read the host clock; exempt from the
// workspace-wide wall-clock ban (clippy.toml disallowed-methods).
#![allow(clippy::disallowed_methods)]
pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Per-sample timing floor: batches grow until one takes this long.
const MIN_SAMPLE: Duration = Duration::from_millis(10);
const WARMUP: Duration = Duration::from_millis(50);
const SAMPLES: usize = 5;

/// Collects timing for one benchmark body.
pub struct Bencher {
    /// Median nanoseconds per iteration, set by `iter`/`iter_with_setup`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine` in growing batches until samples are stable
    /// enough to report.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: run until the warm-up budget is spent.
        let warm_start = Instant::now();
        let mut iters_per_batch: u64 = 1;
        while warm_start.elapsed() < WARMUP {
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            iters_per_batch = iters_per_batch.saturating_mul(2).min(1 << 20);
        }

        // Calibrate batch size to the sample floor.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            if t.elapsed() >= MIN_SAMPLE || batch >= 1 << 30 {
                break;
            }
            batch = batch.saturating_mul(2);
        }

        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                t.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2];
    }

    /// Like [`Bencher::iter`], but re-creates the input with `setup`
    /// outside the timed region each iteration.
    pub fn iter_with_setup<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
    ) {
        // Setup dominates some benches; keep iteration counts small.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            let input = setup();
            black_box(routine(input));
        }

        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                // One timed call per sample, setup excluded.
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                t.elapsed().as_nanos() as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    let ns = b.ns_per_iter;
    let pretty = if ns >= 1_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.3} us", ns / 1_000.0)
    } else {
        format!("{ns:.1} ns")
    };
    println!("{name:<48} time: {pretty}/iter");
}

/// Top-level harness handle, mirroring criterion's `Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into(), &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
        }
    }
}

/// Named benchmark identifier: `group/function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), &mut f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.id);
        run_one(&name, &mut (|b: &mut Bencher| f(b, input)));
        self
    }

    pub fn finish(self) {}
}

/// Declares a group function that runs each target benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
