//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: `proptest! { fn x(a in
//! strat, ..) {..} }` with optional `#![proptest_config(..)]`,
//! integer-range / `Just` / `any::<T>()` / tuple strategies,
//! `prop_map`, `prop_oneof!` (weighted and unweighted),
//! `collection::vec`, and `prop_assert*`. Cases are generated from a
//! deterministic per-test RNG. **No shrinking**: a failing case
//! reports its inputs via the panic message only.

#![forbid(unsafe_code)]
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    /// Deterministic per-test-case random source.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Derives a generator from the test's name and case index,
        /// so runs are reproducible without a persistence file.
        pub fn deterministic(name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// A recipe for producing random values of one type.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Post-generation transform, from [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice among boxed strategies, from `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total: u64,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.gen_range(0..self.total);
            for (w, strat) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return strat.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights summed during construction")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    use super::strategy::{Strategy, TestRng};
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Strategy over a type's full domain; built by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The `any::<T>()` entry point.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "collection size range is empty");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// The `collection::vec(element, len)` entry point.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    pub use super::strategy::TestRng;

    /// Runner knobs. Only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u64,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 48 }
        }
    }

    impl ProptestConfig {
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases: u64::from(cases),
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(..)` works.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests. Each argument is drawn fresh per case from
/// its strategy; the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Weighted (`w => strat`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        let __arms: ::std::vec::Vec<(
            u32,
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        )> = vec![$(($weight, ::std::boxed::Box::new($strat))),+];
        $crate::strategy::Union::new(__arms)
    }};
    ($($strat:expr),+ $(,)?) => {{
        let __arms: ::std::vec::Vec<(
            u32,
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        )> = vec![$((1u32, ::std::boxed::Box::new($strat))),+];
        $crate::strategy::Union::new(__arms)
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Kind {
        A(u64),
        B,
    }

    fn arb_kind() -> impl Strategy<Value = Kind> {
        prop_oneof![
            3 => (0u64..100).prop_map(Kind::A),
            1 => Just(Kind::B),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 5u32..10, y in 0u64..=3, b in any::<bool>()) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y <= 3);
            let _ = b;
        }

        /// Vec strategy respects its size range, and tuples compose.
        #[test]
        fn vec_sizes(v in prop::collection::vec((0u8..4, any::<bool>()), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            for (n, _) in &v {
                prop_assert!(*n < 4);
            }
        }

        /// Weighted unions draw from every arm across enough cases.
        #[test]
        fn union_draws(k in prop::collection::vec(arb_kind(), 32..33)) {
            prop_assert_eq!(k.len(), 32);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::{Strategy, TestRng};
        let strat = (0u64..1_000_000, 0u64..1_000_000);
        let mut one = TestRng::deterministic("x", 3);
        let mut two = TestRng::deterministic("x", 3);
        assert_eq!(strat.generate(&mut one), strat.generate(&mut two));
        let mut other_case = TestRng::deterministic("x", 4);
        assert_ne!(strat.generate(&mut other_case), {
            let mut again = TestRng::deterministic("x", 3);
            strat.generate(&mut again)
        });
    }
}
