//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the 0.8 API this workspace uses:
//! [`Rng::gen_range`] over `Range`/`RangeInclusive` of the common
//! integer types, [`Rng::gen_bool`], and [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`]. The generator is SplitMix64 — not
//! the upstream ChaCha — so sequences differ from real `rand`, but
//! determinism per seed holds, which is all the simulator needs.

#![forbid(unsafe_code)]
/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range. Panics on an empty range,
    /// matching upstream.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless
    /// `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // 53 high bits -> uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, n)` without modulo bias, via
/// fixed-point multiplication (Lemire's method, sans rejection — the
/// residual bias is < 2^-64 per sample, irrelevant for simulation).
fn bounded(rng: &mut (impl RngCore + ?Sized), n: u64) -> u64 {
    debug_assert!(n > 0);
    (((rng.next_u64() as u128) * (n as u128)) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(bounded(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i64).wrapping_add(bounded(rng, span + 1) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator; SplitMix64 under the hood.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
            let z = rng.gen_range(-8i64..8);
            assert!((-8..8).contains(&z));
        }
        // Inclusive range hits both endpoints eventually.
        let mut saw0 = false;
        let mut saw3 = false;
        for _ in 0..10_000 {
            match rng.gen_range(0u32..=3) {
                0 => saw0 = true,
                3 => saw3 = true,
                _ => {}
            }
        }
        assert!(saw0 && saw3);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (20_000..30_000).contains(&hits),
            "p=0.25 gave {hits}/100000"
        );
    }
}
