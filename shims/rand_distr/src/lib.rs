//! Offline stand-in for `rand_distr`: just the [`Normal`] and
//! [`Poisson`] distributions the trace generators use. Normal uses
//! Box–Muller; Poisson uses Knuth's product method for small means
//! and a normal approximation for large ones.

#![forbid(unsafe_code)]
use rand::RngCore;

/// Parameter-validation error, mirroring upstream's opaque error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can sample values from an RNG.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

fn unit_open01(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    // (0, 1): add half an ulp so ln() never sees zero.
    (((rng.next_u64() >> 11) as f64) + 0.5) * (1.0 / (1u64 << 53) as f64)
}

/// Gaussian distribution with the given mean and standard deviation.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// # Errors
    ///
    /// Fails if `std_dev` is negative or either parameter is not
    /// finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() || !std_dev.is_finite() {
            return Err(Error("Normal: parameters must be finite"));
        }
        if std_dev < 0.0 {
            return Err(Error("Normal: std_dev must be non-negative"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1 = unit_open01(rng);
        let u2 = unit_open01(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Poisson distribution with the given mean.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// # Errors
    ///
    /// Fails unless `lambda` is finite and positive.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(Error("Poisson: lambda must be finite and positive"));
        }
        Ok(Poisson { lambda })
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth: count multiplications until the running product
            // drops below e^-lambda.
            let limit = (-self.lambda).exp();
            let mut product = unit_open01(rng);
            let mut count = 0u64;
            while product > limit {
                product *= unit_open01(rng);
                count += 1;
            }
            count as f64
        } else {
            // Normal approximation, adequate at this mean.
            let normal = Normal {
                mean: self.lambda,
                std_dev: self.lambda.sqrt(),
            };
            normal.sample(rng).round().max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-3.0).is_err());
    }

    #[test]
    fn normal_moments_are_close() {
        let dist = Normal::new(63.0, 20.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 63.0).abs() < 1.0, "mean {mean}");
        assert!((var.sqrt() - 20.0).abs() < 1.0, "sd {}", var.sqrt());
    }

    #[test]
    fn poisson_mean_is_close() {
        for lambda in [4.0, 63.0] {
            let dist = Poisson::new(lambda).unwrap();
            let mut rng = StdRng::seed_from_u64(11);
            let n = 50_000;
            let mean = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda * 0.05,
                "lambda {lambda} mean {mean}"
            );
            assert!((0..1000).all(|_| dist.sample(&mut rng) >= 0.0));
        }
    }
}
