//! Recursive-descent JSON parser producing a [`Value`] tree.

use serde::{Error, Number, Value};

/// Maximum nesting depth, guarding against stack overflow on
/// adversarial input.
const MAX_DEPTH: usize = 128;

/// Parses one complete JSON document.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::msg("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(Error::msg("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("nonempty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::msg("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}
