//! JSON text writer.

use serde::Value;

/// Renders a value tree as JSON text. `indent` of `Some(level)`
/// selects 2-space pretty-printing; `None` is compact.
pub fn write_value(v: &Value, indent: Option<usize>) -> String {
    let mut out = String::new();
    write_into(&mut out, v, indent);
    out
}

fn write_into(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent.map(|l| l + 1));
                write_into(out, item, indent.map(|l| l + 1));
            }
            newline_indent(out, indent);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent.map(|l| l + 1));
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_into(out, val, indent.map(|l| l + 1));
            }
            newline_indent(out, indent);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(level) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str("  ");
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
