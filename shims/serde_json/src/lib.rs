//! Offline stand-in for `serde_json`: JSON text encoding and parsing
//! over the `serde` shim's [`Value`] tree.

#![forbid(unsafe_code)]
pub use serde::{Error, Number, Value};

mod de;
mod ser;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for values built from the shim's impls; the `Result`
/// mirrors the real API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(ser::write_value(&value.to_value(), None))
}

/// Serializes a value to 2-space-indented JSON.
///
/// # Errors
///
/// Infallible for values built from the shim's impls.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(ser::write_value(&value.to_value(), Some(0)))
}

/// Converts a value into its [`Value`] tree.
///
/// # Errors
///
/// Infallible for values built from the shim's impls.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses JSON text into any [`serde::Deserialize`] type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = de::parse(s)?;
    T::from_value(&v)
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] on shape mismatch.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T, Error> {
    T::from_value(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let s = to_string(&42u64).unwrap();
        assert_eq!(s, "42");
        assert_eq!(from_str::<u64>(&s).unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
    }

    #[test]
    fn u64_precision_is_exact() {
        let big = u64::MAX - 3;
        let s = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), big);
    }

    #[test]
    fn collection_roundtrip() {
        let v = vec![(1u32, 2u64), (3, 4)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3,4]]");
        let back: Vec<(u32, u64)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn value_indexing() {
        let v: Value = from_str(r#"{"a": [1, {"b": "x"}], "c": 2.5}"#).unwrap();
        assert_eq!(v["a"][1]["b"].as_str(), Some("x"));
        assert_eq!(v["c"].as_f64(), Some(2.5));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn pretty_output_indents() {
        let v: Value = from_str(r#"{"a":[1,2]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\n\"quoted\"\tand \u{1F600} unicode \u{7}".to_string();
        let s = to_string(&original).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
    }
}
