//! Offline stand-in for `serde`.
//!
//! The real serde is a visitor-based serialization framework; this
//! shim is a JSON-value-tree equivalent that supports exactly the
//! usage patterns of this workspace:
//!
//! * `#[derive(Serialize, Deserialize)]` on plain structs and enums
//!   (unit, tuple, and struct variants; no `#[serde(...)]` attributes,
//!   no generic types);
//! * `serde_json::{to_string, to_string_pretty, from_str}` and the
//!   dynamically-typed [`Value`].
//!
//! [`Serialize`] converts a value into a [`Value`] tree;
//! [`Deserialize`] reconstructs it. The JSON text encoding itself
//! lives in the `serde_json` shim.

#![forbid(unsafe_code)]
pub use serde_derive::{Deserialize, Serialize};

mod error;
mod impls;
mod value;

pub use error::Error;
pub use value::{Number, Value};

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Builds the value-tree representation of `self`.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the tree's shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;
}
