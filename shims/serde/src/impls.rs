//! `Serialize`/`Deserialize` implementations for std types.

use crate::{Deserialize, Error, Number, Serialize, Value};
use std::collections::{BTreeMap, HashMap, VecDeque};

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::expected(stringify!($t), v.kind()))?;
                <$t>::try_from(n).map_err(Error::msg)
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::PosInt(*self as u64))
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = v
            .as_u64()
            .ok_or_else(|| Error::expected("usize", v.kind()))?;
        usize::try_from(n).map_err(Error::msg)
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::expected(stringify!($t), v.kind()))?;
                <$t>::try_from(n).map_err(Error::msg)
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        i64::from_value(v).and_then(|n| isize::try_from(n).map_err(Error::msg))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("f64", v.kind()))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", v.kind()))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::expected("char", v.kind()))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-character string", "string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", v.kind()))
    }
}

/// Lets `#[derive(Deserialize)]` compile for types with `&'static
/// str` fields (real serde defers this to the use site). Each call
/// leaks its string; fine for config-shaped data, wrong for bulk use.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v.kind()))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::expected("tuple array", v.kind()))?;
                let expected = [$( $idx ),+].len();
                if a.len() != expected {
                    return Err(Error::msg(format!("expected {expected}-tuple, got {} elements", a.len())));
                }
                Ok(($($t::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", v.kind()))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys for stable output.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", v.kind()))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(())
        } else {
            Err(Error::expected("null", v.kind()))
        }
    }
}
