//! The dynamically-typed value tree (the shim's `serde_json::Value`).

use std::fmt;
use std::ops::Index;

use crate::Error;

/// A JSON number. Integers keep full 64-bit precision (cycle counters
/// in this workspace routinely exceed 2^53, where `f64` loses exact
/// integer representation).
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A finite float.
    Float(f64),
}

impl Number {
    /// Numeric value as `f64` (lossy above 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(n) => n,
        }
    }

    /// Exact `u64` value, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) => None,
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// Exact `i64` value, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f)
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

/// A dynamically-typed JSON value.
///
/// Objects preserve insertion order (a `Vec` of pairs rather than a
/// map), which keeps serialized output stable and diffable.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (ordered key/value pairs).
    Object(Vec<(String, Value)>),
}

/// Shared sentinel for out-of-range indexing, mirroring
/// `serde_json`'s behaviour of returning `Value::Null`.
static NULL: Value = Value::Null;

impl Value {
    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object's pair list, if it is one.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Object-member lookup that errors with context; used by derived
    /// `Deserialize` impls.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when `self` is not an object or lacks the
    /// field.
    pub fn field(&self, ty: &str, name: &str) -> Result<&Value, Error> {
        self.get(name).ok_or_else(|| Error::missing_field(ty, name))
    }

    /// Short description of the value's type for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            // `{:?}` is the shortest round-trippable float encoding.
            Number::Float(x) if x.is_finite() => write!(f, "{x:?}"),
            // JSON has no NaN/inf; mirror serde_json's `null`.
            Number::Float(_) => f.write_str("null"),
        }
    }
}
