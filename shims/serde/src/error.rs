//! The single error type shared by serialization and parsing.

use std::fmt;

/// Serialization/deserialization failure with a human-readable cause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any displayable message.
    pub fn msg(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }

    /// Standard "missing field" constructor used by derived impls.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Self::msg(format!("missing field `{field}` while decoding {ty}"))
    }

    /// Standard "type mismatch" constructor used by derived impls.
    pub fn expected(what: &str, got: &str) -> Self {
        Self::msg(format!("expected {what}, got {got}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
