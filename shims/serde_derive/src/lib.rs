//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the shapes this workspace uses — non-generic structs (named, tuple,
//! unit) and enums (unit, tuple, and struct variants) without
//! `#[serde(...)]` attributes — by hand-parsing the item's token
//! stream (no `syn`/`quote`, which are unavailable offline).
//!
//! Encoding matches serde's default "externally tagged" JSON layout:
//!
//! * named struct       → object of fields
//! * newtype struct     → the inner value
//! * tuple struct       → array of fields
//! * unit enum variant  → `"Variant"`
//! * newtype variant    → `{"Variant": value}`
//! * tuple variant      → `{"Variant": [v0, v1, …]}`
//! * struct variant     → `{"Variant": {field: value, …}}`

#![forbid(unsafe_code)]
use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "obj.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut obj = ::std::vec::Vec::with_capacity({});\n{}\n::serde::Value::Object(obj)",
                fields.len(),
                pushes
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| serialize_variant_arm(&item.name, v))
                .collect();
            format!("match self {{\n{arms}\n}}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {} {{\n fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}",
        item.name
    );
    out.parse().expect("derived Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(v.field({name:?}, {f:?})?)?,\n")
                })
                .collect();
            format!("Ok({name} {{\n{inits}}})")
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", v.kind()))?;\n\
                 if arr.len() != {n} {{ return Err(::serde::Error::msg(format!(\"expected {n} elements for {name}, got {{}}\", arr.len()))); }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::UnitStruct => format!("let _ = v; Ok({name})"),
        Shape::Enum(variants) => deserialize_enum_body(name, variants),
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
    );
    out.parse().expect("derived Deserialize impl parses")
}

/// Fields of one enum variant.
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn serialize_variant_arm(ty: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.shape {
        VariantShape::Unit => {
            format!("{ty}::{vn} => ::serde::Value::String({vn:?}.to_string()),\n")
        }
        VariantShape::Tuple(1) => format!(
            "{ty}::{vn}(f0) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Serialize::to_value(f0))]),\n"
        ),
        VariantShape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let vals: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{ty}::{vn}({binds}) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Array(vec![{vals}]))]),\n",
                binds = binds.join(", "),
                vals = vals.join(", ")
            )
        }
        VariantShape::Named(fields) => {
            let binds = fields.join(", ");
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))"))
                .collect();
            format!(
                "{ty}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Object(vec![{pushes}]))]),\n",
                pushes = pushes.join(", ")
            )
        }
    }
}

fn deserialize_enum_body(ty: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            VariantShape::Unit => {
                unit_arms.push_str(&format!("{vn:?} => Ok({ty}::{vn}),\n"));
                // A unit variant can also appear in tagged form
                // ({"Variant": null}) after hand-edited input; accept it.
                tagged_arms.push_str(&format!("{vn:?} => {{ let _ = inner; Ok({ty}::{vn}) }}\n"));
            }
            VariantShape::Tuple(1) => {
                tagged_arms.push_str(&format!(
                    "{vn:?} => Ok({ty}::{vn}(::serde::Deserialize::from_value(inner)?)),\n"
                ));
            }
            VariantShape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "{vn:?} => {{\n\
                     let arr = inner.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", inner.kind()))?;\n\
                     if arr.len() != {n} {{ return Err(::serde::Error::msg(format!(\"expected {n} elements for {ty}::{vn}, got {{}}\", arr.len()))); }}\n\
                     Ok({ty}::{vn}({items}))\n}}\n",
                    items = items.join(", ")
                ));
            }
            VariantShape::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(inner.field({ty:?}, {f:?})?)?"
                        )
                    })
                    .collect();
                tagged_arms.push_str(&format!(
                    "{vn:?} => Ok({ty}::{vn} {{ {inits} }}),\n",
                    inits = inits.join(", ")
                ));
            }
        }
    }
    format!(
        "match v {{\n\
         ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
         other => Err(::serde::Error::msg(format!(\"unknown variant `{{other}}` for {ty}\"))),\n}},\n\
         ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
         let (tag, inner) = &pairs[0];\n\
         match tag.as_str() {{\n{tagged_arms}\
         other => Err(::serde::Error::msg(format!(\"unknown variant `{{other}}` for {ty}\"))),\n}}\n}},\n\
         other => Err(::serde::Error::expected(\"{ty} variant\", other.kind())),\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = ident_at(&tokens, i).expect("struct/enum keyword");
    i += 1;
    let name = ident_at(&tokens, i).expect("type name");
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types (deriving {name})");
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                shape: Shape::NamedStruct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                shape: Shape::TupleStruct(count_tuple_fields(g.stream())),
            },
            _ => Item {
                name,
                shape: Shape::UnitStruct,
            },
        },
        "enum" => {
            let g = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                _ => panic!("enum {name} has no body"),
            };
            Item {
                name,
                shape: Shape::Enum(parse_variants(g.stream())),
            }
        }
        other => panic!("cannot derive serde impls for item kind `{other}`"),
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Advances past `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` named fields, returning the names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i).expect("field name");
        i += 1;
        assert!(
            matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "expected `:` after field `{name}`"
        );
        i += 1;
        skip_type(&tokens, &mut i);
        fields.push(name);
        // Skip the separating comma, if present.
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advances past one type, stopping at a top-level `,`.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(tt) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts top-level comma-separated fields in a tuple struct/variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        fields += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i).expect("variant name");
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            while i < tokens.len()
                && !matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}
