//! Integration tests of the generalisations and extensions the paper
//! describes: tracking arbitrary (heap) ranges, the adaptive OS
//! policies, and full process restore.

use prosper_repro::core::tracker::{DirtyTracker, TrackerConfig};
use prosper_repro::core::ProsperMechanism;
use prosper_repro::gemos::checkpoint::CheckpointManager;
use prosper_repro::gemos::process::RegisterFile;
use prosper_repro::gemos::restore::ProcessCheckpointStore;
use prosper_repro::memsim::addr::{VirtAddr, VirtRange};
use prosper_repro::memsim::config::MachineConfig;
use prosper_repro::memsim::machine::Machine;
use prosper_repro::trace::micro::{MicroBench, MicroSpec};
use prosper_repro::trace::record::{Region, TraceEvent};
use prosper_repro::trace::source::TraceSource;
use prosper_repro::trace::workloads::{Workload, WorkloadProfile};

/// Section III: "Even though Prosper is proposed for tracking stack
/// modifications, its generic design can be leveraged to track
/// modifications to any virtual address range. For example... the
/// heap."
#[test]
fn prosper_tracks_a_heap_range() {
    let heap = VirtRange::new(
        VirtAddr::new(0x5555_0000_0000),
        VirtAddr::new(0x5555_0100_0000),
    );
    let mut tracker = DirtyTracker::new(TrackerConfig::default());
    tracker.configure(heap, VirtAddr::new(0x2000_0000));

    let mut w = Workload::new(WorkloadProfile::ycsb_mem(), 3);
    let mut heap_stores = 0u64;
    for _ in 0..30_000 {
        if let TraceEvent::Access(a) = w.next_event() {
            if a.region == Region::Heap && a.kind == prosper_repro::trace::AccessKind::Store {
                if heap.overlaps_access(a.vaddr, u64::from(a.size)) {
                    heap_stores += 1;
                }
                tracker.observe_store(a.vaddr, u64::from(a.size));
            }
        }
    }
    assert!(heap_stores > 100, "workload wrote the heap: {heap_stores}");
    assert_eq!(
        tracker.soi_count, heap_stores,
        "all heap stores filtered in"
    );
    tracker.flush();
    assert!(tracker.bitmap().total_set_bits() > 0);
    // Inspection bounded to the watermark works for heap ranges too.
    let lo = tracker.min_soi_watermark().unwrap();
    let geom = tracker.geometry();
    let (runs, _) = tracker
        .bitmap_mut()
        .inspect_and_clear(&geom, VirtRange::new(lo, heap.end()));
    assert!(!runs.is_empty());
    for run in runs {
        assert!(heap.contains(run.start));
    }
}

/// The adaptive-granularity mechanism converges to coarse tracking on
/// a streaming workload and stays fine on a sparse one.
#[test]
fn adaptive_granularity_tracks_workload_character() {
    let run = |spec: MicroSpec| {
        let mut machine = Machine::new(MachineConfig::setup_i());
        let mut mgr = CheckpointManager::new(&mut machine, 60_000);
        let mut mech = ProsperMechanism::with_defaults().with_adaptive_granularity();
        let bench = MicroBench::new(spec, 5);
        mgr.run_stack_only(bench, &mut mech, 8);
        mech.current_granularity()
    };
    let stream = run(MicroSpec::Stream {
        array_bytes: 64 * 1024,
    });
    let sparse = run(MicroSpec::Sparse { pages: 24 });
    assert!(stream > sparse, "Stream {stream}B vs Sparse {sparse}B");
    assert_eq!(sparse, 8, "sparse stays at the finest granularity");
}

/// The adaptive-watermark mechanism keeps its invariants end to end.
#[test]
fn adaptive_watermarks_run_end_to_end() {
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mgr = CheckpointManager::new(&mut machine, 60_000);
    let mut mech = ProsperMechanism::with_defaults().with_adaptive_watermarks();
    let w = Workload::new(WorkloadProfile::mcf(), 5);
    let res = mgr.run_stack_only(w, &mut mech, 10);
    assert_eq!(res.intervals, 10);
    let cfg = mech.tracker().config();
    assert!(cfg.lwm <= cfg.hwm);
    assert!((1..=32).contains(&cfg.hwm));
}

/// Full process state: registers checkpoint/restore with torn-write
/// fallback composed with a checkpointed run.
#[test]
fn register_state_restores_with_memory() {
    // Run real memory checkpoints and interleave register checkpoints
    // under the same sequence discipline.
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mgr = CheckpointManager::new(&mut machine, 40_000);
    let mut mech = ProsperMechanism::with_defaults();
    let w = Workload::new(WorkloadProfile::gapbs_pr(), 9);
    let res = mgr.run_stack_only(w, &mut mech, 4);
    assert_eq!(res.intervals, 4);

    let mut store = ProcessCheckpointStore::new(1);
    for seq in 1..=4u64 {
        let regs = RegisterFile {
            rip: 0x400000 + seq,
            gpr: {
                let mut g = [0u64; 16];
                g[0] = seq * 11;
                g
            },
            ..RegisterFile::default()
        };
        store.checkpoint(&[regs]);
    }
    assert_eq!(store.committed_sequence, 4);
    // A torn fifth checkpoint falls back to the fourth.
    let torn = RegisterFile {
        rip: 0xdead,
        ..RegisterFile::default()
    };
    store.thread_store_mut(0).checkpoint_torn(torn);
    let rec = store.recover().unwrap();
    assert_eq!(rec[0].rip, 0x400004);
    assert_eq!(rec[0].gpr[0], 44);
}
