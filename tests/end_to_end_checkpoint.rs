//! End-to-end integration: workloads driven through the machine model
//! with Prosper and the baselines, checking the paper's headline
//! relationships across crates.

use prosper_repro::baselines::{DirtybitMechanism, RomulusMechanism, SspMechanism};
use prosper_repro::core::tracker::TrackerConfig;
use prosper_repro::core::ProsperMechanism;
use prosper_repro::gemos::checkpoint::{
    CheckpointManager, MemoryPersistence, NoPersistence, RunResult,
};
use prosper_repro::memsim::config::MachineConfig;
use prosper_repro::memsim::machine::Machine;
use prosper_repro::trace::micro::{MicroBench, MicroSpec};
use prosper_repro::trace::source::TraceSource;
use prosper_repro::trace::workloads::{Workload, WorkloadProfile};

const INTERVAL: u64 = 60_000;
const INTERVALS: u64 = 6;

fn run_workload(profile: WorkloadProfile, mech: &mut dyn MemoryPersistence) -> RunResult {
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mgr = CheckpointManager::new(&mut machine, INTERVAL);
    let w = Workload::new(profile, 99);
    mgr.run_stack_only(w, mech, INTERVALS)
}

fn run_micro(spec: MicroSpec, mech: &mut dyn MemoryPersistence) -> RunResult {
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mgr = CheckpointManager::new(&mut machine, INTERVAL);
    let bench = MicroBench::new(spec, 99);
    mgr.run_stack_only(bench, mech, INTERVALS)
}

#[test]
fn prosper_beats_every_nvm_resident_mechanism() {
    for profile in WorkloadProfile::applications() {
        let prosper = run_workload(profile.clone(), &mut ProsperMechanism::with_defaults());
        let romulus = run_workload(profile.clone(), &mut RomulusMechanism::new());
        let ssp = run_workload(profile.clone(), &mut SspMechanism::with_10us());
        assert!(
            prosper.total_cycles < romulus.total_cycles,
            "{}: Prosper {} < Romulus {}",
            profile.name,
            prosper.total_cycles,
            romulus.total_cycles
        );
        assert!(
            prosper.total_cycles < ssp.total_cycles,
            "{}: Prosper {} < SSP-10us {}",
            profile.name,
            prosper.total_cycles,
            ssp.total_cycles
        );
    }
}

#[test]
fn prosper_copies_less_than_dirtybit_on_applications() {
    for profile in WorkloadProfile::applications() {
        let prosper = run_workload(profile.clone(), &mut ProsperMechanism::with_defaults());
        let dirtybit = run_workload(profile.clone(), &mut DirtybitMechanism::new());
        assert!(
            prosper.bytes_copied < dirtybit.bytes_copied,
            "{}: Prosper bytes {} < Dirtybit bytes {} (paper: ~4x average reduction)",
            profile.name,
            prosper.bytes_copied,
            dirtybit.bytes_copied
        );
    }
}

#[test]
fn persistence_overhead_is_never_negative() {
    for profile in WorkloadProfile::applications() {
        let baseline = run_workload(profile.clone(), &mut NoPersistence);
        let prosper = run_workload(profile.clone(), &mut ProsperMechanism::with_defaults());
        assert!(prosper.total_cycles >= baseline.total_cycles);
        assert_eq!(prosper.intervals, baseline.intervals);
        assert_eq!(prosper.stack_stores, baseline.stack_stores);
    }
}

#[test]
fn sparse_micro_prosper_vs_dirtybit_size_gap() {
    let spec = MicroSpec::Sparse { pages: 24 };
    let prosper = run_micro(spec, &mut ProsperMechanism::with_defaults());
    let dirtybit = run_micro(spec, &mut DirtybitMechanism::new());
    let reduction = dirtybit.bytes_copied as f64 / prosper.bytes_copied.max(1) as f64;
    assert!(
        reduction > 20.0,
        "sparse copy-size reduction {reduction} (paper: ~100x / 99% smaller)"
    );
    assert!(
        prosper.checkpoint_cycles < dirtybit.checkpoint_cycles,
        "sparse checkpoint time: Prosper {} < Dirtybit {} (paper: ~22x)",
        prosper.checkpoint_cycles,
        dirtybit.checkpoint_cycles
    );
}

#[test]
fn granularity_sweep_is_consistent_end_to_end() {
    let spec = MicroSpec::Random {
        array_bytes: 32 * 1024,
    };
    let mut last_bytes = 0u64;
    for granularity in [8u64, 32, 128] {
        let mut mech =
            ProsperMechanism::new(TrackerConfig::default().with_granularity(granularity));
        let res = run_micro(spec, &mut mech);
        assert!(
            res.bytes_copied >= last_bytes,
            "coarser granularity copies at least as much"
        );
        last_bytes = res.bytes_copied;
    }
}

#[test]
fn checkpoint_manager_is_deterministic() {
    let run = || {
        let mut mech = ProsperMechanism::with_defaults();
        run_workload(WorkloadProfile::g500_sssp(), &mut mech)
    };
    let a = run();
    let b = run();
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.bytes_copied, b.bytes_copied);
    assert_eq!(a.stack_stores, b.stack_stores);
}

#[test]
fn interval_count_scales_run_length() {
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mgr = CheckpointManager::new(&mut machine, INTERVAL);
    let w = Workload::new(WorkloadProfile::gapbs_pr(), 5);
    let mut mech = NoPersistence;
    let short = mgr.run_stack_only(w, &mut mech, 2);

    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mgr = CheckpointManager::new(&mut machine, INTERVAL);
    let w = Workload::new(WorkloadProfile::gapbs_pr(), 5);
    let long = mgr.run_stack_only(w, &mut mech, 8);
    assert!(long.total_cycles > short.total_cycles * 3);
}

#[test]
fn stack_region_comes_from_the_workload() {
    let w = Workload::new(WorkloadProfile::ycsb_mem(), 1);
    let range = w.stack().reserved_range();
    let mut machine = Machine::new(MachineConfig::setup_i());
    let mut mgr = CheckpointManager::new(&mut machine, INTERVAL);
    let mut mech = ProsperMechanism::with_defaults();
    mgr.run_stack_only(w, &mut mech, 2);
    assert_eq!(mech.tracker().msrs().tracked_range(), range);
}
