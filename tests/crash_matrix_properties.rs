//! Randomized crash schedules on top of the exhaustive sweep.
//!
//! The exhaustive matrix (`prosper_repro::core::faultinject`) visits
//! every boundary of one fixed workload; these properties vary the
//! workload shape and the crash placement randomly, and additionally
//! drive randomized write/commit/crash interleavings directly against
//! the two-phase whole-process commit.

use proptest::prelude::*;
use prosper_repro::core::bitmap::CopyRun;
use prosper_repro::core::faultinject::{
    enumerate_crash_sites, run_crash_attributed, run_crash_matrix, run_with_crash_at,
    CrashMatrixConfig,
};
use prosper_repro::core::recovery::PersistentProcess;
use prosper_repro::core::SpineConfig;
use prosper_repro::gemos::crash::{CrashSite, FaultInjector};
use prosper_repro::gemos::image::MemoryImage;
use prosper_repro::gemos::process::RegisterFile;
use prosper_repro::memsim::addr::{VirtAddr, VirtRange};
use std::collections::BTreeMap;

/// The acceptance-criterion sweep: every enumerated crash point of a
/// multi-thread micro workload is injected and survived.
#[test]
fn exhaustive_sweep_all_crash_points_survive() {
    let cfg = CrashMatrixConfig {
        threads: 2,
        intervals: 2,
        stores_per_interval: 6,
        ..Default::default()
    };
    let report = run_crash_matrix(&cfg);
    assert!(report.total() > 0);
    assert!(
        report.all_survived(),
        "{} of {} crash points failed, first: {:?}",
        report.failures.len(),
        report.total(),
        report.failures.first()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any workload shape, any crash placement: recovery always lands
    /// on a coherent checkpoint and the run resumes to the reference
    /// final state.
    #[test]
    fn random_crash_placement_always_recovers(
        params in (
            (1u32..4, 1u32..4, 1u32..9),
            (any::<u64>(), any::<u64>(), any::<bool>(), 0u8..3, any::<bool>()),
        )
    ) {
        let ((threads, intervals, stores_per_interval),
             (seed, pick, pipelined_epilogue, spine_mode, alloc_epilogue)) = params;
        let cfg = CrashMatrixConfig {
            threads,
            intervals,
            stores_per_interval,
            seed,
            resume_after_recovery: true,
            pipelined_epilogue,
            spine: match spine_mode {
                0 => None,
                1 => Some(SpineConfig::merge_always()),
                _ => Some(SpineConfig::lazy(64)),
            },
            alloc_epilogue,
        };
        let sites = enumerate_crash_sites(&cfg);
        prop_assert!(!sites.is_empty());
        let index = pick % sites.len() as u64;
        let outcome = run_with_crash_at(&cfg, index)
            .unwrap_or_else(|reason| panic!("crash at boundary {index}: {reason}"));
        prop_assert_eq!(outcome.fired, Some(sites[index as usize]));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random crash placements in and after the pipelined pair's
    /// overlap window (PR 7): recovery lands on exactly sequence N or
    /// N+1 — one checkpoint per durable seal, so a crash inside
    /// stage(N+1)-over-apply(N) lands on N and only the second seal
    /// moves it to N+1 — and the stall ledger still conserves across
    /// the torn pipelined commit plus its recovery.
    #[test]
    fn pipelined_overlap_crashes_recover_onto_n_or_n_plus_one(
        params in (1u32..3, 1u32..3, 1u32..7, any::<u64>(), any::<u64>())
    ) {
        let (threads, intervals, stores_per_interval, seed, pick) = params;
        let cfg = CrashMatrixConfig {
            threads,
            intervals,
            stores_per_interval,
            seed,
            resume_after_recovery: true,
            pipelined_epilogue: true,
            spine: None,
            alloc_epilogue: false,
        };
        let sites = enumerate_crash_sites(&cfg);
        let first_overlap = sites
            .iter()
            .position(|s| matches!(s, CrashSite::MidPipelineStage { .. }))
            .expect("the pair schedule crosses the overlap window");
        let index = first_overlap as u64 + pick % (sites.len() - first_overlap) as u64;
        let (outcome, run) = run_crash_attributed(&cfg, index)
            .unwrap_or_else(|reason| panic!("crash at boundary {index}: {reason}"));
        prop_assert_eq!(outcome.fired, Some(sites[index as usize]));
        // One durable checkpoint per crossed seal — nothing else.
        let seals = sites[..=index as usize]
            .iter()
            .filter(|s| **s == CrashSite::PostSeal)
            .count() as u64;
        prop_assert_eq!(outcome.recovered_sequence, seals);
        let n = u64::from(intervals) + 1;
        prop_assert!((n..=n + 1).contains(&outcome.recovered_sequence));
        if matches!(sites[index as usize], CrashSite::MidPipelineStage { .. }) {
            prop_assert_eq!(
                outcome.recovered_sequence, n,
                "staged-ahead N+1 state is unsealed: the overlap recovers onto N"
            );
        }
        run.snapshot
            .verify_conservation()
            .unwrap_or_else(|e| panic!("crash at boundary {index}: {e}"));
    }
}

const STACK_BYTES: u64 = 0x4000;

fn stack_range(tid: u32) -> VirtRange {
    let top = 0x7000_0000 + (u64::from(tid) + 1) * 0x10_0000;
    VirtRange::new(VirtAddr::new(top - STACK_BYTES), VirtAddr::new(top))
}

/// One step of the randomized process-level schedule.
#[derive(Clone, Debug)]
enum Step {
    /// Thread `tid % threads` writes `len` bytes of `value` at `offset`.
    Write {
        tid: u32,
        offset: u64,
        len: u8,
        value: u8,
    },
    /// Whole-process commit; `crash_pick` chooses a boundary index to
    /// crash at (`None` = commit runs to completion).
    Commit { crash_pick: Option<u64> },
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (any::<u32>(), 0u64..(STACK_BYTES - 64), 1u8..64, any::<u8>())
            .prop_map(|(tid, offset, len, value)| Step::Write { tid, offset, len, value }),
        2 => Just(Step::Commit { crash_pick: None }),
        2 => (0u64..48).prop_map(|n| Step::Commit { crash_pick: Some(n) }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary interleavings of per-thread writes and (possibly
    /// crashed) whole-process commits: after every step the committed
    /// view is one coherent checkpoint — every stack and register slot
    /// on the same sequence, with the image of that commit.
    #[test]
    fn random_commit_crash_schedules_stay_coherent(
        steps in prop::collection::vec(arb_step(), 1..40),
        threads in 1u32..4,
    ) {
        let ranges: Vec<VirtRange> = (0..threads).map(stack_range).collect();
        let mut p = PersistentProcess::new(&ranges);
        let full_runs: BTreeMap<u32, Vec<CopyRun>> = (0..threads)
            .map(|tid| {
                let r = stack_range(tid);
                (tid, vec![CopyRun { start: r.start(), len: r.len() }])
            })
            .collect();
        // Ground truth: live state, and state of the last effective
        // (completed or sealed) commit.
        let mut live: Vec<MemoryImage> = vec![MemoryImage::new(); threads as usize];
        let mut committed: Vec<MemoryImage> = vec![MemoryImage::new(); threads as usize];
        let mut live_regs: Vec<RegisterFile> = vec![RegisterFile::default(); threads as usize];
        let mut committed_regs: Vec<RegisterFile> = vec![RegisterFile::default(); threads as usize];
        let mut effective_commits: u64 = 0;

        for (step_no, step) in steps.iter().enumerate() {
            match step {
                Step::Write { tid, offset, len, value } => {
                    let tid = tid % threads;
                    let addr = stack_range(tid).start() + *offset;
                    let bytes = vec![*value; *len as usize];
                    p.record_store(tid, addr, &bytes);
                    live[tid as usize].write(addr, &bytes);
                    let regs = p.regs_mut(tid);
                    regs.rip = step_no as u64 + 1;
                    live_regs[tid as usize].rip = step_no as u64 + 1;
                }
                Step::Commit { crash_pick } => {
                    let mut inj = match crash_pick {
                        Some(n) => FaultInjector::at_index(*n),
                        None => FaultInjector::disabled(),
                    };
                    match p.commit_with_faults(&full_runs, &mut inj) {
                        Ok(()) => {
                            effective_commits += 1;
                            committed.clone_from(&live);
                            committed_regs.clone_from(&live_regs);
                        }
                        Err(crash) => {
                            if crash.site.is_post_seal() {
                                // The commit point passed: recovery
                                // redoes this commit.
                                effective_commits += 1;
                                committed.clone_from(&live);
                                committed_regs.clone_from(&live_regs);
                            }
                            p.crash();
                            if effective_commits == 0 {
                                prop_assert!(
                                    p.recover().is_err(),
                                    "recovered before any commit sealed"
                                );
                                p = PersistentProcess::new(&ranges);
                            } else {
                                let rec = p.recover().expect("a sealed commit must recover");
                                prop_assert_eq!(rec.sequence, effective_commits);
                            }
                            live.clone_from(&committed);
                            live_regs.clone_from(&committed_regs);
                        }
                    }
                }
            }
            // Invariants, after every step.
            let seq = p.verify_coherent().expect("no cross-component skew");
            prop_assert_eq!(seq, effective_commits);
            for tid in 0..threads {
                let range = stack_range(tid);
                prop_assert!(
                    p.stack(tid).volatile().matches(&live[tid as usize], range),
                    "thread {} volatile image diverged at {:?}",
                    tid,
                    p.stack(tid).volatile().first_mismatch(&live[tid as usize], range)
                );
                prop_assert!(
                    p.stack(tid).persistent().matches(&committed[tid as usize], range),
                    "thread {} persistent image diverged at {:?}",
                    tid,
                    p.stack(tid).persistent().first_mismatch(&committed[tid as usize], range)
                );
                prop_assert_eq!(p.regs(tid).rip, live_regs[tid as usize].rip);
            }
        }
    }
}
