//! Integration: crash consistency of the full Prosper pipeline —
//! tracker → bitmap inspection → copy runs → two-step persistent-stack
//! commit — with crashes injected at every phase, mirroring the
//! paper's "kill gem5 mid-run and restart" validation.

use prosper_repro::core::bitmap::CopyRun;
use prosper_repro::core::persist::PersistentStack;
use prosper_repro::core::tracker::{DirtyTracker, TrackerConfig};
use prosper_repro::memsim::addr::{VirtAddr, VirtRange};
use prosper_repro::trace::interval::IntervalCollector;
use prosper_repro::trace::record::TraceEvent;
use prosper_repro::trace::source::TraceSource;
use prosper_repro::trace::workloads::{Workload, WorkloadProfile};

/// Runs `intervals` tracked+checkpointed intervals of a workload,
/// mirroring store values into the persistent stack's data plane.
/// Returns (tracker, persistent stack, stack range, per-interval run
/// lists).
fn tracked_run(intervals: u64) -> (DirtyTracker, PersistentStack, VirtRange, Vec<Vec<CopyRun>>) {
    let workload = Workload::new(WorkloadProfile::perlbench(), 17);
    let range = workload.stack().reserved_range();
    let top = workload.stack().top();
    let mut tracker = DirtyTracker::new(TrackerConfig::default());
    tracker.configure(range, VirtAddr::new(0x1000_0000));
    let mut pstack = PersistentStack::new(0, range);
    let mut collector = IntervalCollector::new(workload, 40_000);
    let mut all_runs = Vec::new();

    for interval in 0..intervals {
        let iv = collector.next_interval();
        for ev in &iv.events {
            if let TraceEvent::Access(a) = ev {
                if a.is_stack_store() {
                    tracker.observe_store(a.vaddr, u64::from(a.size));
                    let val = (a.vaddr.raw() as u8).wrapping_add(interval as u8);
                    pstack.record_store(a.vaddr, &vec![val; a.size as usize]);
                }
            }
        }
        tracker.flush();
        let geom = tracker.geometry();
        let watermark = tracker.min_soi_watermark().unwrap_or(top);
        let active = VirtRange::new(watermark, top);
        let (runs, _) = tracker.bitmap_mut().inspect_and_clear(&geom, active);
        pstack.checkpoint(&runs);
        tracker.reset_watermark();
        all_runs.push(runs);
    }
    (tracker, pstack, range, all_runs)
}

#[test]
fn recovery_after_clean_checkpoints_restores_everything() {
    let (_, mut pstack, range, runs) = tracked_run(4);
    assert_eq!(pstack.committed_sequence(), 4);
    assert!(runs.iter().all(|r| !r.is_empty()), "every interval dirtied");

    let before = pstack.persistent().clone();
    pstack.crash();
    pstack.recover_after_crash();
    assert_eq!(pstack.committed_sequence(), 4);
    assert!(
        pstack.volatile().matches(&before, range),
        "recovered image equals the pre-crash persistent image"
    );
}

#[test]
fn writes_after_last_checkpoint_are_lost_but_consistent() {
    let (mut tracker, mut pstack, _range, _) = tracked_run(3);
    // Extra writes without a checkpoint.
    let addr = pstack.range().end() - 256u64;
    tracker.observe_store(addr, 8);
    pstack.record_store(addr, &[0xEE; 8]);
    let committed = pstack.committed_sequence();

    pstack.crash();
    pstack.recover_after_crash();
    assert_eq!(pstack.committed_sequence(), committed);
    assert_ne!(
        pstack.volatile().read(addr, 8),
        vec![0xEE; 8],
        "uncommitted write must not survive"
    );
}

#[test]
fn crash_between_stage_and_apply_is_idempotent() {
    let (_, mut pstack, _range, _) = tracked_run(2);
    let addr = pstack.range().end() - 512u64;
    pstack.record_store(addr, &[0x42; 16]);
    let runs = vec![CopyRun {
        start: addr,
        len: 16,
    }];
    // Seal the staging buffer, then crash before apply.
    pstack.stage(&runs);
    pstack.crash();
    pstack.recover_after_crash();
    assert_eq!(
        pstack.volatile().read(addr, 16),
        vec![0x42; 16],
        "sealed staging buffer replays on recovery"
    );
    // A second recovery changes nothing (idempotence).
    let seq = pstack.committed_sequence();
    pstack.crash();
    pstack.recover_after_crash();
    assert_eq!(pstack.committed_sequence(), seq);
    assert_eq!(pstack.volatile().read(addr, 16), vec![0x42; 16]);
}

#[test]
fn repeated_crash_recover_cycles_converge() {
    let (_, mut pstack, range, _) = tracked_run(5);
    let reference = pstack.persistent().clone();
    for _ in 0..5 {
        pstack.crash();
        pstack.recover_after_crash();
        assert!(pstack.volatile().matches(&reference, range));
    }
}

#[test]
fn tracker_runs_bound_the_data_plane() {
    // Every copy run produced by bitmap inspection must fall inside
    // the tracked range — otherwise checkpoint() would panic on the
    // persistent stack's range assertion. Run a few intervals and
    // assert the invariant explicitly.
    let (_, pstack, range, all_runs) = tracked_run(3);
    for runs in &all_runs {
        for run in runs {
            assert!(range.contains(run.start));
            assert!(run.start + run.len <= range.end());
        }
    }
    assert!(pstack.committed_sequence() == 3);
}
