//! The full process-persistence property: a run that crashes and
//! resumes from its last checkpoint ends in exactly the same state as
//! an uninterrupted run.
//!
//! The paper validates this by killing gem5 and watching the GemOS
//! process "restart from the last checkpoint successfully". Here the
//! execution is a recorded trace (the replay position plays the role
//! of the program counter, checkpointed in `rip`), the memory state is
//! the Prosper persistent stack, and the crash can land anywhere.

use std::collections::BTreeMap;

use prosper_repro::core::recovery::PersistentProcess;
use prosper_repro::core::tracker::{DirtyTracker, TrackerConfig};
use prosper_repro::gemos::image::MemoryImage;
use prosper_repro::memsim::addr::{VirtAddr, VirtRange};
use prosper_repro::trace::record::TraceEvent;
use prosper_repro::trace::source::TraceSource;
use prosper_repro::trace::tracefile::TraceFile;
use prosper_repro::trace::workloads::{Workload, WorkloadProfile};

const EVENTS: usize = 12_000;
const CHECKPOINT_EVERY: usize = 2_000;

/// Deterministic store value: a function of address and position, so
/// re-execution after resume writes the same bytes.
fn value_at(addr: u64, size: u32) -> Vec<u8> {
    (0..size as u64)
        .map(|i| ((addr + i) as u8) ^ 0x5a)
        .collect()
}

fn record_trace() -> (TraceFile, VirtRange, VirtAddr) {
    let mut w = Workload::new(WorkloadProfile::perlbench(), 31);
    let range = w.stack().reserved_range();
    let top = w.stack().top();
    (TraceFile::record(&mut w, 31, EVENTS), range, top)
}

/// Applies events `[from, to)` of the trace to a process's data plane
/// and tracker.
fn apply_events(
    file: &TraceFile,
    from: usize,
    to: usize,
    process: &mut PersistentProcess,
    tracker: &mut DirtyTracker,
) {
    for ev in &file.events[from..to] {
        if let TraceEvent::Access(a) = ev {
            if a.is_stack_store() {
                tracker.observe_store(a.vaddr, u64::from(a.size));
                process.record_store(0, a.vaddr, &value_at(a.vaddr.raw(), a.size));
            }
        }
    }
}

/// Takes a checkpoint at trace position `pos`.
fn checkpoint_at(
    pos: usize,
    top: VirtAddr,
    process: &mut PersistentProcess,
    tracker: &mut DirtyTracker,
) {
    tracker.flush();
    let geom = tracker.geometry();
    let watermark = tracker.min_soi_watermark().unwrap_or(top);
    let (runs, _) = tracker
        .bitmap_mut()
        .inspect_and_clear(&geom, VirtRange::new(watermark, top));
    tracker.reset_watermark();
    process.regs_mut(0).rip = pos as u64;
    let mut per_thread = BTreeMap::new();
    per_thread.insert(0u32, runs);
    process.commit(&per_thread);
}

/// Uninterrupted reference run: final volatile stack image.
fn reference_run(file: &TraceFile, range: VirtRange) -> MemoryImage {
    let mut img = MemoryImage::new();
    for ev in &file.events {
        if let TraceEvent::Access(a) = ev {
            if a.is_stack_store() && range.contains(a.vaddr) {
                img.write(a.vaddr, &value_at(a.vaddr.raw(), a.size));
            }
        }
    }
    img
}

fn crash_resume_run(
    file: &TraceFile,
    range: VirtRange,
    top: VirtAddr,
    crash_at: usize,
) -> MemoryImage {
    let mut process = PersistentProcess::new(&[range]);
    let mut tracker = DirtyTracker::new(TrackerConfig::default());
    tracker.configure(range, VirtAddr::new(0x1000_0000));

    // Execute until the crash point, checkpointing periodically.
    let mut pos = 0usize;
    while pos < crash_at {
        let next = (pos + CHECKPOINT_EVERY).min(crash_at);
        apply_events(file, pos, next, &mut process, &mut tracker);
        pos = next;
        if pos.is_multiple_of(CHECKPOINT_EVERY) {
            checkpoint_at(pos, top, &mut process, &mut tracker);
        }
    }

    // Power failure: volatile state and tracker contents vanish.
    process.crash();
    let mut tracker = DirtyTracker::new(TrackerConfig::default());
    tracker.configure(range, VirtAddr::new(0x1000_0000));

    // Recovery: resume from the checkpointed position; if the crash
    // preceded the first checkpoint, the process restarts from the
    // beginning (nothing was ever persisted).
    let resume_pos = match process.recover() {
        Ok(recovered) => recovered.regs[0].rip as usize,
        Err(_) => {
            process = PersistentProcess::new(&[range]);
            0
        }
    };
    assert!(resume_pos <= crash_at);
    assert_eq!(resume_pos % CHECKPOINT_EVERY, 0, "resumed at a checkpoint");

    // Re-execute from the checkpoint to the end.
    let mut pos = resume_pos;
    while pos < EVENTS {
        let next = (pos + CHECKPOINT_EVERY).min(EVENTS);
        apply_events(file, pos, next, &mut process, &mut tracker);
        pos = next;
        checkpoint_at(pos, top, &mut process, &mut tracker);
    }
    process.stack(0).volatile().clone()
}

#[test]
fn crash_and_resume_matches_uninterrupted_run() {
    let (file, range, top) = record_trace();
    let reference = reference_run(&file, range);
    for crash_at in [1_500usize, 4_000, 7_777, 11_999] {
        let resumed = crash_resume_run(&file, range, top, crash_at);
        assert!(
            resumed.matches(&reference, range),
            "crash at {crash_at}: diverged at {:?}",
            resumed.first_mismatch(&reference, range)
        );
    }
}

#[test]
fn resume_position_never_exceeds_crash_point() {
    let (file, range, top) = record_trace();
    // Crash immediately after the first checkpoint boundary.
    let resumed = crash_resume_run(&file, range, top, CHECKPOINT_EVERY + 1);
    let reference = reference_run(&file, range);
    assert!(resumed.matches(&reference, range));
}
