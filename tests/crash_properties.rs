//! Property-based crash-injection: arbitrary interleavings of writes,
//! checkpoints, and crashes must always recover to the last completed
//! (or sealed) commit.

use proptest::prelude::*;
use prosper_repro::core::bitmap::CopyRun;
use prosper_repro::core::persist::PersistentStack;
use prosper_repro::gemos::image::MemoryImage;
use prosper_repro::memsim::addr::{VirtAddr, VirtRange};

const LO: u64 = 0x7000_0000;
const HI: u64 = 0x7000_4000;

/// One step of the randomized schedule.
#[derive(Clone, Debug)]
enum Step {
    /// Write `len` bytes of `value` at `offset`.
    Write { offset: u64, len: u8, value: u8 },
    /// Checkpoint everything written so far (full-range run).
    Checkpoint,
    /// Crash before the staging buffer seals.
    CrashMidStaging,
    /// Crash between seal and apply.
    CrashAfterSeal,
    /// Crash outside any commit.
    CrashIdle,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        5 => (0u64..(HI - LO - 64), 1u8..64, any::<u8>())
            .prop_map(|(offset, len, value)| Step::Write { offset, len, value }),
        2 => Just(Step::Checkpoint),
        1 => Just(Step::CrashMidStaging),
        1 => Just(Step::CrashAfterSeal),
        1 => Just(Step::CrashIdle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the schedule, recovery always reproduces a prefix-
    /// consistent state: the image of the last commit whose staging
    /// sealed.
    #[test]
    fn recovery_is_always_prefix_consistent(steps in prop::collection::vec(arb_step(), 1..60)) {
        let range = VirtRange::new(VirtAddr::new(LO), VirtAddr::new(HI));
        let mut ps = PersistentStack::new(0, range);
        // Ground truth snapshots: live, and as of the last *effective*
        // commit (sealed staging counts — recovery replays it).
        let mut live = MemoryImage::new();
        let mut committed = MemoryImage::new();

        for step in &steps {
            match step {
                Step::Write { offset, len, value } => {
                    let addr = VirtAddr::new(LO + offset);
                    let bytes = vec![*value; *len as usize];
                    ps.record_store(addr, &bytes);
                    live.write(addr, &bytes);
                }
                Step::Checkpoint => {
                    let run = CopyRun {
                        start: range.start(),
                        len: range.len(),
                    };
                    ps.checkpoint(&[run]);
                    committed = live.clone();
                }
                Step::CrashMidStaging => {
                    // The staging buffer never seals: recovery must
                    // fall back to the previous commit.
                    let run = CopyRun {
                        start: range.start(),
                        len: range.len(),
                    };
                    ps.stage_partial(&[run]);
                    ps.crash();
                    ps.recover_after_crash();
                    live = committed.clone();
                }
                Step::CrashAfterSeal => {
                    // Seal a full-range staging buffer, then crash
                    // before apply: recovery must replay it.
                    let run = CopyRun {
                        start: range.start(),
                        len: range.len(),
                    };
                    ps.stage(&[run]);
                    committed = live.clone();
                    ps.crash();
                    ps.recover_after_crash();
                    live = committed.clone();
                }
                Step::CrashIdle => {
                    ps.crash();
                    ps.recover_after_crash();
                    live = committed.clone();
                }
            }
            // Invariant: the persistent image always equals the last
            // effective commit.
            prop_assert!(
                ps.persistent().matches(&committed, range),
                "persistent image diverged at {:?}",
                ps.persistent().first_mismatch(&committed, range)
            );
            // And the volatile image equals the live ground truth.
            prop_assert!(ps.volatile().matches(&live, range));
        }
    }
}
