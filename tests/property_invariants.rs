//! Property-based tests of the core invariants, spanning crates.

use proptest::prelude::*;
use prosper_repro::core::bitmap::{BitmapGeometry, DirtyBitmap};
use prosper_repro::core::lookup::{AllocPolicy, BitmapOp, LookupTable};
use prosper_repro::core::tracker::{DirtyTracker, TrackerConfig};
use prosper_repro::gemos::image::MemoryImage;
use prosper_repro::memsim::addr::{VirtAddr, VirtRange};
use std::collections::{BTreeSet, HashMap};

const RANGE_LO: u64 = 0x7000_0000;
const RANGE_HI: u64 = 0x7010_0000;

fn stack_range() -> VirtRange {
    VirtRange::new(VirtAddr::new(RANGE_LO), VirtAddr::new(RANGE_HI))
}

proptest! {
    /// The tracker + bitmap pipeline never loses a dirty granule: for
    /// any store sequence, after a flush, the set of granules marked
    /// in the bitmap equals the exact dirty set.
    #[test]
    fn tracker_bitmap_is_exact(
        offsets in prop::collection::vec(0u64..0x10_000, 1..200),
        granularity_pow in 0u32..5,
    ) {
        let granularity = 8u64 << granularity_pow;
        let cfg = TrackerConfig::default().with_granularity(granularity);
        let mut tracker = DirtyTracker::new(cfg);
        tracker.configure(stack_range(), VirtAddr::new(0x1000_0000));

        let mut expected: BTreeSet<u64> = BTreeSet::new();
        for &off in &offsets {
            let addr = RANGE_LO + (off & !7);
            tracker.observe_store(VirtAddr::new(addr), 8);
            let first = (addr - RANGE_LO) / granularity;
            let last = (addr + 7 - RANGE_LO) / granularity;
            for granule in first..=last {
                expected.insert(granule);
            }
        }
        tracker.flush();
        prop_assert_eq!(tracker.bitmap().total_set_bits(), expected.len() as u64);

        // Inspection must produce runs covering exactly the dirty set.
        let geom = tracker.geometry();
        let (runs, _) = tracker
            .bitmap_mut()
            .inspect_and_clear(&geom, stack_range());
        let mut covered: BTreeSet<u64> = BTreeSet::new();
        for run in &runs {
            prop_assert_eq!(run.len % granularity, 0);
            let first = (run.start.raw() - RANGE_LO) / granularity;
            for g in 0..run.len / granularity {
                prop_assert!(covered.insert(first + g), "runs never overlap");
            }
        }
        prop_assert_eq!(covered, expected);
    }

    /// Both lookup-table allocation policies produce the same final
    /// bitmap contents (they differ only in traffic timing).
    #[test]
    fn alloc_policies_agree_on_final_bitmap(
        words in prop::collection::vec((0u64..64, 0u32..32), 1..300),
    ) {
        let run = |policy: AllocPolicy| {
            let mut table = LookupTable::new(16, 24, 8, policy);
            let mut mem: HashMap<u64, u32> = HashMap::new();
            let apply = |mem: &mut HashMap<u64, u32>, ops: &[BitmapOp]| {
                for op in ops {
                    if let BitmapOp::Store(a, v) = op {
                        // Stores carry the merged value under A&A and
                        // the latest value under L&U; OR is safe for
                        // both because bits are only ever set.
                        *mem.entry(*a).or_insert(0) |= *v;
                    }
                }
            };
            for &(word, bit) in &words {
                let addr = 0x1000 + word * 4;
                let snapshot = mem.clone();
                let ops = table.record(addr, bit, &mut |a| {
                    snapshot.get(&a).copied().unwrap_or(0)
                });
                apply(&mut mem, &ops);
            }
            let snapshot = mem.clone();
            let ops = table.flush_all(&mut |a| snapshot.get(&a).copied().unwrap_or(0));
            apply(&mut mem, &ops);
            mem
        };
        let a = run(AllocPolicy::AccumulateAndApply);
        let b = run(AllocPolicy::LoadAndUpdate);
        // Compare non-zero words.
        let norm = |m: HashMap<u64, u32>| -> Vec<(u64, u32)> {
            let mut v: Vec<(u64, u32)> = m.into_iter().filter(|(_, w)| *w != 0).collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(norm(a), norm(b));
    }

    /// MemoryImage write/read round-trips arbitrary data at arbitrary
    /// (possibly chunk-straddling) addresses.
    #[test]
    fn memory_image_roundtrip(
        writes in prop::collection::vec((0u64..0x8000, prop::collection::vec(any::<u8>(), 1..128)), 1..40),
    ) {
        let mut img = MemoryImage::new();
        let mut shadow: HashMap<u64, u8> = HashMap::new();
        for (addr, data) in &writes {
            img.write(VirtAddr::new(*addr), data);
            for (i, b) in data.iter().enumerate() {
                shadow.insert(addr + i as u64, *b);
            }
        }
        for (addr, data) in &writes {
            let got = img.read(VirtAddr::new(*addr), data.len());
            for (i, got_b) in got.iter().enumerate() {
                prop_assert_eq!(*got_b, shadow[&(addr + i as u64)]);
            }
        }
    }

    /// Bitmap geometry locate/granule_start round-trips for any
    /// address and granularity.
    #[test]
    fn geometry_roundtrip(off in 0u64..0x100_000, granularity_pow in 0u32..6) {
        let granularity = 8u64 << granularity_pow;
        let geom = BitmapGeometry {
            range_start: VirtAddr::new(RANGE_LO),
            bitmap_base: VirtAddr::new(0x1000_0000),
            granularity,
        };
        let addr = VirtAddr::new(RANGE_LO + off);
        let (word, bit) = geom.locate(addr);
        prop_assert!(bit < 32);
        let back = geom.granule_start(word, bit);
        prop_assert!(back <= addr);
        prop_assert!(addr - back < granularity);
    }

    /// Inspection after merging arbitrary words clears everything in
    /// the window and nothing outside it.
    #[test]
    fn inspect_clears_only_window(
        inside in prop::collection::vec((0u64..32, 1u32..u32::MAX), 1..20),
        outside in prop::collection::vec((100u64..132, 1u32..u32::MAX), 1..20),
    ) {
        let geom = BitmapGeometry {
            range_start: VirtAddr::new(RANGE_LO),
            bitmap_base: VirtAddr::new(0x1000_0000),
            granularity: 8,
        };
        let mut bm = DirtyBitmap::new();
        for &(w, v) in &inside {
            bm.merge_word(0x1000_0000 + w * 4, v);
        }
        for &(w, v) in &outside {
            bm.merge_word(0x1000_0000 + w * 4, v);
        }
        let outside_bits: u64 = (100u64..132)
            .map(|w| u64::from(bm.read_word(0x1000_0000 + w * 4).count_ones()))
            .sum();
        // Window covers words 0..32 => granule bytes 0 .. 32*256.
        let window = VirtRange::new(
            VirtAddr::new(RANGE_LO),
            VirtAddr::new(RANGE_LO + 32 * 256),
        );
        bm.inspect_and_clear(&geom, window);
        for w in 0u64..32 {
            prop_assert_eq!(bm.read_word(0x1000_0000 + w * 4), 0);
        }
        let outside_after: u64 = (100u64..132)
            .map(|w| u64::from(bm.read_word(0x1000_0000 + w * 4).count_ones()))
            .sum();
        prop_assert_eq!(outside_after, outside_bits);
    }
}
